# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test bench experiments examples clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.cli all --out results/

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf results benchmarks/results .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
