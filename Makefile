# Convenience targets for the reproduction.

PYTHON ?= python

WORKERS ?= 4

.PHONY: install test bench experiments sweep examples clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.cli all --out results/

# Parallel, cached regeneration of the figure suite. Reruns are nearly
# free: results are cached under results/cache keyed by trace+scheme
# content, and the emitted run summary shows the hit/miss counts.
sweep:
	$(PYTHON) -m repro.experiments.cli figures --workers $(WORKERS) --out results/

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf results benchmarks/results .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
