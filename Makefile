# Convenience targets for the reproduction.

PYTHON ?= python

WORKERS ?= 4

.PHONY: install test check check-sarif lint bench bench-kernels bench-shard bench-stream bench-characterize characterize experiments sweep sweep-follow sweep-trace examples obs-demo clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

# Static analysis & invariant verification (see docs/static-analysis.md):
# automaton model check, kernel-encoding prover, predict() purity lint,
# determinism lint, spec picklability, fork/pickle-safety lint, resource
# discipline lint, registry consistency, docs accuracy. --strict
# promotes warnings to failures, matching the CI gate.
check:
	PYTHONPATH=src $(PYTHON) -m repro.check --strict

# Same gate, plus a SARIF 2.1.0 log at results/check.sarif — the file
# CI uploads as an artifact and code-scanning UIs ingest directly.
check-sarif:
	PYTHONPATH=src $(PYTHON) -m repro.check --strict --sarif results/check.sarif

# Style lint. ruff is optional locally (CI always has it); skip with a
# notice when it is not installed rather than failing the target.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping style lint (pip install ruff)"; \
	fi

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Vectorized-kernel throughput pin: asserts the fast-path backend is
# bit-identical to the interpreted engine and >=5x faster on a
# million-branch trace, and appends the measured speedups to the run
# ledger (results/ledger) for repro-obs history / export-bench.
bench-kernels:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_kernels.py --benchmark-only

# Trace-sharded execution pin: asserts simulate_sharded is
# bit-identical to the serial interpreted engine on a million-branch
# trace (context switches + per-site tracking on) and pins the
# measured speedup floor, appending the true per-scheme speedups to
# the run ledger (results/ledger) for repro-obs history / export-bench.
bench-shard:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_shard.py --benchmark-only

# Streaming-substrate throughput pin: asserts that simulating a
# million-branch mmap-backed .btrs container block-by-block (block
# 2^16) is bit-identical to the one-shot materialized pass and within
# 10% of its wall time, and appends the measured overheads to the run
# ledger (results/ledger) for repro-obs history / export-bench.
bench-stream:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_stream.py --benchmark-only

# Characterization-engine throughput pin: asserts the vectorized
# counting backend is bit-identical to the pure-python loop and >=5x
# faster on a million-branch trace, and appends the measured speedup to
# the run ledger (results/ledger) for repro-obs history / export-bench.
bench-characterize:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_characterize.py --benchmark-only

# Predictability characterization of the eqntott workload: verifies the
# python and vectorized backends agree bit-for-bit, prints the report,
# writes it to results/characterize-eqntott.json, and records it in the
# run ledger (kind "char") where repro-obs metrics exports it
# (see docs/characterization.md).
characterize:
	PYTHONPATH=src $(PYTHON) -m repro.obs characterize --workload eqntott \
		--verify --format json --out results/characterize-eqntott.json \
		--ledger results/ledger
	PYTHONPATH=src $(PYTHON) -m repro.obs metrics --ledger results/ledger \
		--kind char --out results/characterize-metrics.prom

experiments:
	$(PYTHON) -m repro.experiments.cli all --out results/

# Parallel, cached regeneration of the figure suite. Reruns are nearly
# free: results are cached under results/cache keyed by trace+scheme
# content, and the emitted run summary shows the hit/miss counts.
sweep:
	$(PYTHON) -m repro.experiments.cli figures --workers $(WORKERS) --out results/

# Live-monitored (schemes x benchmark-suite) sweep: per-worker
# heartbeats drive a --follow status line (done/total, active cells,
# aggregate branches/sec, ETA) and every cell is recorded in the
# persistent run ledger for repro-obs history/compare/regress.
sweep-follow:
	PYTHONPATH=src $(PYTHON) -m repro.obs sweep gag-8 pag-8 gshare-8 \
		--workers $(WORKERS) --follow --ledger results/ledger

# Span-traced sweep: records a cross-process span tree (sweep -> cell
# -> phase -> engine), validates it, and exports a Chrome trace-event
# JSON loadable at https://ui.perfetto.dev (see docs/observability.md).
sweep-trace:
	PYTHONPATH=src $(PYTHON) -m repro.obs sweep gag-8 pag-8 gshare-8 \
		--workers $(WORKERS) --spans results/sweep-spans.jsonl \
		--trace-out results/sweep-trace.json --ledger results/ledger
	PYTHONPATH=src $(PYTHON) -m repro.obs trace summary results/sweep-spans.jsonl

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

# Observability smoke check: run one fully-probed simulation through
# python -m repro.obs and verify the emitted RunReport is valid JSON
# with the expected schema (see docs/observability.md).
obs-demo:
	PYTHONPATH=src $(PYTHON) -m repro.obs --scheme GAg --workload eqntott \
		--format json \
	| $(PYTHON) -c "import json,sys; r=json.load(sys.stdin); \
		assert r['schema']=='repro.obs/1', r['schema']; \
		assert r['result']['conditional_branches']>0; \
		print('obs-demo ok:', r['scheme'], 'on', r['workload'], \
		      'accuracy', round(100*r['result']['correct_predictions']/r['result']['conditional_branches'],2), '%')"

clean:
	rm -rf results benchmarks/results .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
