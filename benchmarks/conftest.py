"""Shared fixtures for the reproduction benchmarks.

Each ``test_bench_*`` module regenerates one table or figure of the
paper on the full nine-benchmark suite, records the headline numbers in
``benchmark.extra_info``, and writes the rendered text to
``benchmarks/results/<id>.txt`` so the paper-shaped output is easy to
inspect after a run.
"""

from pathlib import Path

import pytest

from repro.trace.cache import default_cache
from repro.workloads.suite import SuiteConfig, build_cases

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def suite_cases():
    """The nine SPEC-analog benchmark cases (generated once)."""
    return build_cases(SuiteConfig(), cache=default_cache())


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_result(results_dir):
    """Write a figure/table rendering to the results directory."""

    def _record(result):
        identifier = getattr(result, "figure_id", None) or result.table_id
        (results_dir / f"{identifier}.txt").write_text(result.render() + "\n")
        return result

    return _record


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
