"""Shared fixtures for the reproduction benchmarks.

Each ``test_bench_*`` module regenerates one table or figure of the
paper on the full nine-benchmark suite, records the headline numbers in
``benchmark.extra_info``, and writes the rendered text to
``benchmarks/results/<id>.txt`` so the paper-shaped output is easy to
inspect after a run.
"""

from pathlib import Path

import pytest

from repro.trace.cache import default_cache
from repro.workloads.suite import SuiteConfig, build_cases

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def suite_cases():
    """The nine SPEC-analog benchmark cases (generated once)."""
    return build_cases(SuiteConfig(), cache=default_cache())


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_result(results_dir):
    """Write a figure/table rendering to the results directory."""

    def _record(result):
        identifier = getattr(result, "figure_id", None) or result.table_id
        (results_dir / f"{identifier}.txt").write_text(result.render() + "\n")
        return result

    return _record


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def pytest_sessionfinish(session, exitstatus):
    """Append the session's benchmark timings to the run ledger.

    Every ``--benchmark-only`` run leaves one ``"bench"`` entry per
    measurement in ``results/ledger/`` at the repo root, so
    ``repro-obs regress`` can flag harness slowdowns and
    ``repro-obs export-bench`` can snapshot the trajectory. Best
    effort by design: a missing plugin, an errored benchmark or an
    unwritable ledger never fails the session.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    benchmarks = getattr(bench_session, "benchmarks", None)
    if not benchmarks:
        return
    try:
        from repro.obs.ledger import RunLedger, entry_from_benchmark

        ledger = RunLedger(Path(__file__).resolve().parent.parent / "results" / "ledger")
        recorded = 0
        for bench in benchmarks:
            if getattr(bench, "has_error", False):
                continue
            stats = getattr(bench, "stats", None)
            seconds = getattr(stats, "min", None)
            if seconds is None:
                continue
            extra = dict(getattr(bench, "extra_info", None) or {})
            ledger.append(entry_from_benchmark(bench.name, float(seconds), extra))
            recorded += 1
        if recorded:
            print(f"\n# ledger: {recorded} benchmark(s) -> {ledger.directory}")
    except Exception as exc:  # pragma: no cover - telemetry must not fail the run
        print(f"\n# ledger: benchmark recording skipped ({exc!r})")
