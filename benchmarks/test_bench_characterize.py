"""Characterization-engine throughput: vectorized vs pure-python counts.

Not a paper figure — this pins the headline property of the
``repro.analysis.predictability`` engine: on a million-branch trace the
vectorized counting backend must produce **bit-identical** count tables
to the pure-python loop and be at least 5x faster. The measured speedup
lands in ``benchmark.extra_info`` and, through the session hook in
``conftest.py``, in the persistent run ledger, so ``repro-obs
export-bench`` snapshots it into ``BENCH_*.json``.
"""

import random
import time

import pytest

from repro.analysis.predictability import characterization_counts
from repro.trace.events import TraceBuilder

N_BRANCHES = 1_000_000
N_SITES = 800
MAX_K = 8
MIN_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def million_trace():
    """~1M biased conditional branches over 800 sites."""
    rng = random.Random(42)
    builder = TraceBuilder(name="bench-characterize", source="synthetic")
    sites = [0x40_0000 + 8 * i for i in range(N_SITES)]
    biases = [rng.random() for _ in range(N_SITES)]
    for _ in range(N_BRANCHES):
        index = rng.randrange(N_SITES)
        builder.conditional(sites[index], rng.random() < biases[index])
    trace = builder.build()
    trace.as_arrays()  # warm the shared list->ndarray conversion
    return trace


def test_bench_characterize_speedup(benchmark, million_trace):
    started = time.perf_counter()
    reference = characterization_counts(
        million_trace, max_k=MAX_K, backend="python"
    )
    python_s = time.perf_counter() - started

    vectorized_s = []
    fast = None
    for _ in range(3):
        t0 = time.perf_counter()
        fast = characterization_counts(
            million_trace, max_k=MAX_K, backend="vectorized"
        )
        vectorized_s.append(time.perf_counter() - t0)

    assert fast == reference  # bit-identical count tables
    speedup = python_s / min(vectorized_s)
    benchmark.extra_info["branches"] = reference.conditional
    benchmark.extra_info["sites"] = len(reference.executions)
    benchmark.extra_info["max_k"] = MAX_K
    benchmark.extra_info["python_s"] = round(python_s, 3)
    benchmark.extra_info["vectorized_s"] = round(min(vectorized_s), 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["backend"] = "vectorized"
    assert speedup >= MIN_SPEEDUP, (
        f"characterize: vectorized backend only {speedup:.1f}x faster "
        f"(python {python_s:.2f}s, vectorized {min(vectorized_s):.2f}s)"
    )
    # The ledger records the vectorized wall time as the measurement.
    benchmark.pedantic(
        lambda: characterization_counts(
            million_trace, max_k=MAX_K, backend="vectorized"
        ),
        rounds=1,
        iterations=1,
    )
