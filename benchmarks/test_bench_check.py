"""Runtime budget for the kernel-encoding prover.

Not a paper figure — this pins the cost of the ``kernels`` analyzer so
the nine-analyzer strict gate stays cheap enough to run on every CI
push. The prover is *exhaustive* (every registered automaton, every
byte of the encoding domain, the full 256^3 associativity cube), so its
runtime is the natural regression canary for anyone who widens the
corpus or un-memoizes the monoid proof: a cold pass measures ~0.3s
today and must stay under 2s.

Measured cold — the associativity memo and the per-spec ops cache are
cleared first — so the pinned number covers the worst case a fresh CI
process pays, not a warm in-process rerun.
"""

import time

from conftest import run_once

from repro.check.kernels import _PROVEN_ASSOCIATIVE, check_kernels

MAX_COLD_SECONDS = 2.0


def test_bench_prover_cold_pass(benchmark):
    def cold_pass():
        from repro.sim.kernels import _OPS_CACHE

        _OPS_CACHE.clear()
        _PROVEN_ASSOCIATIVE.clear()
        started = time.perf_counter()
        findings, examined = check_kernels()
        elapsed = time.perf_counter() - started
        return findings, examined, elapsed

    findings, examined, elapsed = run_once(benchmark, cold_pass)
    assert findings == []
    assert examined >= 14
    benchmark.extra_info["automata_examined"] = examined
    benchmark.extra_info["cold_seconds"] = round(elapsed, 4)
    benchmark.extra_info["budget_seconds"] = MAX_COLD_SECONDS
    assert elapsed < MAX_COLD_SECONDS, (
        f"exhaustive prover pass took {elapsed:.2f}s; the CI gate budget "
        f"is {MAX_COLD_SECONDS}s — did the associativity memo stop working?"
    )
