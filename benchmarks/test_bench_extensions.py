"""Extension bench: the paper's "future work" frontier.

The paper closes by saying 97 % is not good enough. This bench runs
the predictors history produced next — gshare, gselect and the
local/global tournament — against the paper's best (PAg-12) on the
analog suite, and checks the tournament is at least competitive with
its own best component (the reason choosers exist).
"""

from conftest import run_once

from repro.core.twolevel import GsharePredictor, make_pag
from repro.predictors.extensions import GselectPredictor, tournament_pag_gshare
from repro.sim.runner import run_matrix


def test_bench_future_work_predictors(benchmark, suite_cases):
    builders = {
        "PAg-12": lambda t: make_pag(12),
        "gshare-14": lambda t: GsharePredictor(14),
        "gselect-7+7": lambda t: GselectPredictor(history_bits=7, address_bits=7),
        "tournament": lambda t: tournament_pag_gshare(12, 14, 12),
    }

    matrix = run_once(benchmark, lambda: run_matrix(builders, suite_cases))
    gmeans = {scheme: matrix.gmean(scheme) for scheme in matrix.schemes}
    benchmark.extra_info["tot_gmeans"] = {k: round(v, 4) for k, v in gmeans.items()}

    # The tournament must not lose to its own components (that is its
    # entire job), modulo chooser-training noise.
    assert gmeans["tournament"] >= max(gmeans["PAg-12"], gmeans["gshare-14"]) - 0.005
    # Every extension is at least in the two-level class — far above
    # the paper's non-two-level baselines (~91 % at best).
    for scheme, value in gmeans.items():
        assert value > 0.91, scheme
