"""Ablation bench for §3.2: target address caching.

The paper adds a target field to the branch history table so a
predicted-taken branch redirects fetch without a bubble. This bench
measures front-end cycles per instruction with and without the BTAC on
a loop-heavy benchmark, where nearly every branch is taken.
"""

from conftest import run_once

from repro.core.twolevel import make_pag
from repro.sim.fetch import BranchTargetCache, FetchEngine, ReturnAddressStack


def test_bench_target_caching(benchmark, suite_cases):
    matrix300 = next(c for c in suite_cases if c.name == "matrix300")
    trace = matrix300.test_trace

    def run():
        without = FetchEngine(
            make_pag(12), btac=None, mispredict_penalty=5, taken_bubble=1
        ).run(trace)
        with_btac = FetchEngine(
            make_pag(12),
            btac=BranchTargetCache(512, 4),
            ras=ReturnAddressStack(32),
            mispredict_penalty=5,
            taken_bubble=1,
        ).run(trace)
        return without, with_btac

    without, with_btac = run_once(benchmark, run)
    benchmark.extra_info.update(
        cpi_without_btac=round(without.cycles_per_instruction, 4),
        cpi_with_btac=round(with_btac.cycles_per_instruction, 4),
        btac_hit_rate=round(with_btac.btac_hit_rate, 4),
        bubbles_removed=without.target_bubbles - with_btac.target_bubbles,
    )
    # The BTAC removes the overwhelming majority of taken-branch bubbles.
    assert with_btac.target_bubbles < 0.1 * without.target_bubbles
    assert with_btac.btac_hit_rate > 0.9
    assert with_btac.cycles_per_instruction < without.cycles_per_instruction
