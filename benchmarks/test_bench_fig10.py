"""Bench regenerating Figure 10: branch history table implementations."""

from conftest import run_once

from repro.experiments.figures import figure10


def test_bench_fig10(benchmark, suite_cases, record_result):
    result = run_once(benchmark, lambda: figure10(cases=suite_cases))
    record_result(result)
    matrix = result.matrix
    gmeans = {scheme: matrix.gmean(scheme) for scheme in matrix.schemes}
    benchmark.extra_info["tot_gmeans"] = {k: round(v, 4) for k, v in gmeans.items()}
    # Paper: the 4-way 512-entry table performs very close to the IBHT.
    assert gmeans["PAg-IBHT"] - gmeans["PAg-512x4"] < 0.01
    # Accuracy decreases as the table miss rate rises: every practical
    # table is within [256x1, IBHT], and 256-entry direct-mapped is the
    # worst of the four.
    assert gmeans["PAg-256x1"] == min(gmeans.values())
    assert gmeans["PAg-512x4"] >= gmeans["PAg-256x4"]
    assert gmeans["PAg-512x1"] >= gmeans["PAg-256x1"]
    # gcc (the only benchmark whose static population exceeds the BHT)
    # pays the largest capacity penalty.
    losses = {
        b: matrix.accuracy("PAg-IBHT", b) - matrix.accuracy("PAg-256x1", b)
        for b in matrix.benchmarks
    }
    assert max(losses, key=losses.get) == "gcc"
