"""Bench regenerating Figure 11: the grand scheme comparison.

The paper's headline: Two-Level Adaptive (PAg, ~97 %) on top, then
PSg/GSg, the BTB with 2-bit counters (~93 %), profiling (~91 %), the
BTB with Last-Time (~89 %), and far below them BTFN (~68.5 %) and
Always Taken (~62.5 %).
"""

from conftest import run_once

from repro.experiments.figures import figure11


def test_bench_fig11(benchmark, suite_cases, record_result):
    result = run_once(benchmark, lambda: figure11(cases=suite_cases))
    record_result(result)
    matrix = result.matrix
    gmeans = {scheme: matrix.gmean(scheme) for scheme in matrix.schemes}
    benchmark.extra_info["tot_gmeans"] = {k: round(v, 4) for k, v in gmeans.items()}

    two_level = gmeans["PAg(512,4,12,A2)"]
    # The two-level scheme is the top curve, by a clear margin.
    for scheme, value in gmeans.items():
        if scheme != "PAg(512,4,12,A2)":
            assert two_level > value, scheme
    runner_up = max(v for k, v in gmeans.items() if k != "PAg(512,4,12,A2)")
    assert two_level - runner_up >= 0.02

    # Dynamic-per-branch schemes: counters above Last-Time.
    assert gmeans["BTB(512,4,A2)"] > gmeans["BTB(512,4,LT)"]
    # The static baselines sit at the bottom, AT below BTFN.
    assert gmeans["BTFN"] < gmeans["BTB(512,4,LT)"]
    assert gmeans["AlwaysTaken"] < gmeans["BTFN"]
    # Always Taken lands in the paper's regime (~62.5 %).
    assert 0.5 < gmeans["AlwaysTaken"] < 0.72
