"""Bench regenerating Figure 4: dynamic branch class distribution."""

from conftest import run_once

from repro.experiments.figures import figure4


def test_bench_fig4(benchmark, suite_cases, record_result):
    result = run_once(benchmark, lambda: figure4(cases=suite_cases))
    record_result(result)
    mixes = result.extra["mixes"]
    benchmark.extra_info["conditional_fractions"] = {
        name: round(mix.conditional, 4) for name, mix in mixes.items()
    }
    # Paper: ~80 % of dynamic branches are conditional — conditional
    # branches dominate on every benchmark.
    for name, mix in mixes.items():
        assert mix.conditional > 0.6, name
    average = sum(m.conditional for m in mixes.values()) / len(mixes)
    assert average > 0.75
