"""Bench regenerating Figure 5: pattern history table automata."""

from conftest import run_once

from repro.experiments.figures import figure5


def test_bench_fig5(benchmark, suite_cases, record_result):
    result = run_once(benchmark, lambda: figure5(cases=suite_cases))
    record_result(result)
    matrix = result.matrix
    gmeans = {scheme: matrix.gmean(scheme) for scheme in matrix.schemes}
    benchmark.extra_info["tot_gmeans"] = {k: round(v, 4) for k, v in gmeans.items()}

    def of(automaton):
        return next(v for k, v in gmeans.items() if k.endswith(f"-{automaton}"))

    # Paper's shape: the four-state saturating counters clearly beat the
    # one/two-outcome automata, and A2/A3/A4 are very close together.
    weak = max(of("LT"), of("A1"))
    for name in ("A2", "A3", "A4"):
        assert of(name) > weak
    counters = [of(n) for n in ("A2", "A3", "A4")]
    assert max(counters) - min(counters) < 0.01
