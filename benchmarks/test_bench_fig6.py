"""Bench regenerating Figure 6: the three variations at equal history
length (PAp > PAg > GAg, gap closing as history grows)."""

from conftest import run_once

from repro.experiments.figures import figure6

LENGTHS = (2, 4, 6, 8, 10, 12)


def test_bench_fig6(benchmark, suite_cases, record_result):
    result = run_once(benchmark, lambda: figure6(cases=suite_cases, lengths=LENGTHS))
    record_result(result)
    matrix = result.matrix
    series = {
        variant: [matrix.gmean(f"{variant}-{k}", "int") for k in LENGTHS]
        for variant in ("GAg", "PAg", "PAp")
    }
    benchmark.extra_info["int_gmeans"] = {
        variant: [round(v, 4) for v in values] for variant, values in series.items()
    }
    # Paper's shape on the interesting (integer) codes: at every common
    # history length PAp >= PAg >= GAg. At long histories our traces are
    # orders of magnitude shorter than the paper's 20 M branches, so
    # PAp's per-branch pattern tables stay partially cold — PAp is only
    # required to dominate strictly while warm-up is affordable
    # (EXPERIMENTS.md discusses the finite-trace effect).
    for index, k in enumerate(LENGTHS):
        if k <= 8:
            assert series["PAp"][index] >= series["PAg"][index] - 0.002, k
        assert series["PAg"][index] > series["GAg"][index], k
    # GAg improves monotonically with history length.
    assert series["GAg"] == sorted(series["GAg"])
    # The PAg-over-GAg gap shrinks as history grows.
    assert (series["PAg"][0] - series["GAg"][0]) > (series["PAg"][-1] - series["GAg"][-1])
