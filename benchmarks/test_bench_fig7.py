"""Bench regenerating Figure 7: GAg history-length sweep (6 -> 18)."""

from conftest import run_once

from repro.experiments.figures import figure7

LENGTHS = (6, 8, 10, 12, 14, 16, 18)


def test_bench_fig7(benchmark, suite_cases, record_result):
    result = run_once(benchmark, lambda: figure7(cases=suite_cases, lengths=LENGTHS))
    record_result(result)
    matrix = result.matrix
    int_series = [matrix.gmean(f"GAg-{k}", "int") for k in LENGTHS]
    benchmark.extra_info["int_gmeans"] = [round(v, 4) for v in int_series]
    benchmark.extra_info["tot_gain"] = round(result.extra["gain"], 4)
    # Paper: lengthening 6 -> 18 bits buys ~9 points. Require a large,
    # monotone-on-integer-codes gain.
    assert int_series == sorted(int_series)
    assert int_series[-1] - int_series[0] > 0.05
