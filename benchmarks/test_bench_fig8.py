"""Bench regenerating Figure 8: iso-accuracy configurations and costs.

GAg(18-bit HR), PAg(12-bit HRs) and PAp(6-bit HRs) achieve roughly the
same accuracy; their hardware costs differ wildly, with PAg cheapest.
"""

from conftest import run_once

from repro.experiments.figures import figure8


def test_bench_fig8(benchmark, suite_cases, record_result):
    result = run_once(benchmark, lambda: figure8(cases=suite_cases))
    record_result(result)
    matrix = result.matrix
    accuracies = {scheme: matrix.gmean(scheme) for scheme in matrix.schemes}
    costs = result.extra["costs"]
    benchmark.extra_info["tot_gmeans"] = {k: round(v, 4) for k, v in accuracies.items()}
    benchmark.extra_info["costs"] = {k: round(v, 1) for k, v in costs.items()}
    # Iso-accuracy: the three configurations land close together.
    assert max(accuracies.values()) - min(accuracies.values()) < 0.04
    # Cost ordering: PAg cheapest; GAg's 2^18-entry PHT and PAp's 512
    # pattern tables both dwarf it.
    assert costs["PAg-12"] < costs["GAg-18"]
    assert costs["PAg-12"] < costs["PAp-6"]
