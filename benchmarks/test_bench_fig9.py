"""Bench regenerating Figure 9: effect of context switches."""

from conftest import run_once

from repro.experiments.figures import figure9


def test_bench_fig9(benchmark, suite_cases, record_result):
    result = run_once(benchmark, lambda: figure9(cases=suite_cases))
    record_result(result)
    degradation = result.extra["degradation"]
    benchmark.extra_info["degradation"] = {k: round(v, 4) for k, v in degradation.items()}
    # Paper: average degradation below one point for all three schemes
    # (a negative value — context switches helping — also satisfies it;
    # the paper itself observes fpppp *improving* under GAg).
    for scheme, value in degradation.items():
        assert value < 0.02, scheme
    # GAg's single register refills quickly: it degrades less than the
    # per-address PAg, whose whole history table must be rebuilt.
    assert degradation["GAg-18"] <= degradation["PAg-12"] + 0.002
    # gcc (trap-heavy) suffers most under the per-address schemes.
    matrix = result.matrix
    gcc_loss = matrix.accuracy("PAg-12", "gcc") - matrix.accuracy("PAg-12,c", "gcc")
    other_losses = [
        matrix.accuracy("PAg-12", b) - matrix.accuracy("PAg-12,c", b)
        for b in matrix.benchmarks
        if b != "gcc"
    ]
    assert gcc_loss > max(other_losses)
