"""Ablation bench: interference explains the GAg -> PAg -> PAp ladder.

DESIGN.md calls out interference as the design axis the three
variations trade against cost. This bench measures first- and
second-level interference directly on the suite and checks they move
the way the accuracy ladder says they must.
"""

from conftest import run_once

from repro.analysis.interference import (
    first_level_interference,
    second_level_interference,
)
from repro.core.twolevel import make_gag, make_pag, make_pap
from repro.sim.engine import simulate


def test_bench_interference_ladder(benchmark, suite_cases):
    integer_cases = [c for c in suite_cases if c.category == "int"]

    def run():
        rows = {}
        for case in integer_cases:
            trace = case.test_trace
            first = first_level_interference(trace, 6)
            second = second_level_interference(trace, 6)
            gag = simulate(make_gag(6), trace).accuracy
            pag = simulate(make_pag(6), trace).accuracy
            pap = simulate(make_pap(6), trace).accuracy
            rows[case.name] = {
                "pollution": first.pollution_rate,
                "destructive": second.destructive_rate,
                "gag": gag,
                "pag": pag,
                "pap": pap,
            }
        return rows

    rows = run_once(benchmark, run)
    benchmark.extra_info["rows"] = {
        name: {k: round(v, 4) for k, v in row.items()} for name, row in rows.items()
    }
    for name, row in rows.items():
        # First-level interference is heavy on real multi-branch code —
        # this is why GAg needs long registers.
        assert row["pollution"] > 0.5, name
        # Removing first-level interference helps (PAg >= GAg) wherever
        # pollution is high; removing second-level interference helps
        # on top of that for most benchmarks.
        assert row["pag"] > row["gag"] - 0.02, name
    # Suite-wide, the full ladder holds on average.
    mean = lambda key: sum(r[key] for r in rows.values()) / len(rows)
    assert mean("pap") > mean("pag") > mean("gag")
    # Destructive second-level aliasing is a real, measurable fraction
    # of updates in the shared-table design.
    assert mean("destructive") > 0.01
