"""Vectorized-kernel throughput vs the interpreted engine.

Not a paper figure — this pins the headline property of the
``repro.sim.kernels`` backend: on a million-branch trace the vectorized
path must be **bit-identical** to the interpreted loop and at least 5x
faster for the flagship schemes (GAg and the direct-mapped PAg). The
measured speedups land in ``benchmark.extra_info`` and, through the
session hook in ``conftest.py``, in the persistent run ledger, so
``repro-obs export-bench`` snapshots them into ``BENCH_*.json``.
"""

import random
import time

import pytest

from repro.predictors.registry import make_predictor
from repro.sim import simulate, simulate_vectorized
from repro.trace.events import TraceBuilder

N_BRANCHES = 1_000_000
N_SITES = 800
MIN_SPEEDUP = 5.0

#: scheme name -> registry spec. GAg and PAg are the acceptance floor;
#: PAp and gshare document the rest of the kernel family.
SCHEMES = {
    "gag-12": "gag-12",
    "pag-12-dm": "pag-12-a2-512x1",
    "pap-8-dm": "pap-8-a2-512x1",
    "gshare-12": "gshare-12",
}


@pytest.fixture(scope="module")
def million_trace():
    """~1M biased conditional branches over 800 sites, trap every 50k."""
    rng = random.Random(42)
    builder = TraceBuilder(name="bench-kernels", source="synthetic")
    sites = [0x40_0000 + 8 * i for i in range(N_SITES)]
    biases = [rng.random() for _ in range(N_SITES)]
    for i in range(N_BRANCHES):
        index = rng.randrange(N_SITES)
        pc = sites[index]
        if i % 50_000 == 49_999:
            builder.trap()
        target = pc - 128 if index % 3 else pc + 128
        builder.branch(pc, rng.random() < biases[index], target=target, work=4)
    trace = builder.build()
    # Warm the cached list->ndarray conversion once: it is shared by
    # every scheme (and by any run_matrix sweep over the same trace),
    # so steady-state kernel throughput excludes it.
    trace.as_arrays()
    return trace


@pytest.mark.parametrize("label", list(SCHEMES), ids=list(SCHEMES))
def test_bench_kernel_speedup(benchmark, million_trace, label):
    name = SCHEMES[label]
    started = time.perf_counter()
    reference = simulate(make_predictor(name), million_trace, backend="python")
    python_s = time.perf_counter() - started

    vectorized_s = []
    fast = None
    for _ in range(3):
        t0 = time.perf_counter()
        fast = simulate_vectorized(make_predictor(name), million_trace)
        vectorized_s.append(time.perf_counter() - t0)

    assert fast == reference  # bit-identical, counts and all
    speedup = python_s / min(vectorized_s)
    benchmark.extra_info["branches"] = reference.conditional_branches
    benchmark.extra_info["python_s"] = round(python_s, 3)
    benchmark.extra_info["vectorized_s"] = round(min(vectorized_s), 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["backend"] = "vectorized"
    assert speedup >= MIN_SPEEDUP, (
        f"{label}: vectorized backend only {speedup:.1f}x faster "
        f"(python {python_s:.2f}s, vectorized {min(vectorized_s):.2f}s)"
    )
    # The ledger records the vectorized wall time as the measurement.
    benchmark.pedantic(
        lambda: simulate_vectorized(make_predictor(name), million_trace),
        rounds=1,
        iterations=1,
    )
