"""Observability overhead pins.

Two guarantees ride the probe design and both are checked here against
a **reference copy of the pre-observability engine loop** kept inline
in this module:

* probe-off: ``simulate(..., probe=None)`` runs the identical loop, so
  its best-of-N time must stay within 5% of the reference loop;
* probe-on: the full metric probe set still produces a bit-identical
  ``SimulationResult`` (the overhead is whatever the metrics cost —
  measured and recorded, not pinned).
"""

import time

import pytest

from repro.core.twolevel import make_pag
from repro.obs import (
    IntervalSeriesProbe,
    ProbeSet,
    StreakHistogramProbe,
    TableStatsProbe,
    TopOffendersProbe,
    WarmupCurveProbe,
)
from repro.sim.engine import ContextSwitchConfig, simulate
from repro.sim.results import SimulationResult
from repro.trace import synthetic
from repro.trace.events import BranchClass

BEST_OF = 9


def _reference_simulate(predictor, trace, context_switches=None):
    """The engine loop exactly as it was before the probe layer landed."""
    conditional = 0
    correct = 0
    switches = 0

    cs_enabled = context_switches is not None
    interval = context_switches.interval if cs_enabled else 0
    switch_on_traps = context_switches.switch_on_traps if cs_enabled else False
    next_switch = interval

    predict = predictor.predict
    update = predictor.update
    cond_class = int(BranchClass.CONDITIONAL)

    for pc, taken, cls, target, instret, trap in trace.iter_tuples():
        if cs_enabled and ((trap and switch_on_traps) or instret >= next_switch):
            predictor.on_context_switch()
            switches += 1
            next_switch = instret + interval
        if cls != cond_class:
            continue
        prediction = predict(pc, target)
        update(pc, taken, target)
        conditional += 1
        if prediction == taken:
            correct += 1

    return SimulationResult(
        predictor_name=predictor.name,
        trace_name=trace.meta.name,
        dataset=trace.meta.dataset,
        conditional_branches=conditional,
        correct_predictions=correct,
        context_switches=switches,
        total_instructions=trace.meta.total_instructions,
    )


def _best_of(fn, rounds=BEST_OF):
    best = float("inf")
    value = None
    for _ in range(rounds):
        started = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return best, value


@pytest.fixture(scope="module")
def overhead_trace():
    sources = [synthetic.loop_source(t) for t in (3, 5, 9)] + [
        synthetic.pattern_source([True, True, False, True]),
    ]
    return synthetic.interleaved(sources, length=60_000)


def test_bench_probe_off_overhead_under_5pct(benchmark, overhead_trace):
    reference_best, reference_result = _best_of(
        lambda: _reference_simulate(make_pag(12), overhead_trace)
    )
    probe_off_best, probe_off_result = _best_of(
        lambda: simulate(make_pag(12), overhead_trace, probe=None)
    )
    assert probe_off_result == reference_result
    ratio = probe_off_best / reference_best
    benchmark.extra_info["reference_best_s"] = round(reference_best, 4)
    benchmark.extra_info["probe_off_best_s"] = round(probe_off_best, 4)
    benchmark.extra_info["overhead_ratio"] = round(ratio, 4)
    benchmark.pedantic(
        lambda: simulate(make_pag(12), overhead_trace), rounds=1, iterations=1
    )
    assert ratio < 1.05, (
        f"probe-off engine is {ratio:.3f}x the pre-observability loop "
        f"({probe_off_best:.4f}s vs {reference_best:.4f}s best-of-{BEST_OF})"
    )


def test_bench_full_probe_set_equivalent_and_measured(benchmark, overhead_trace):
    config = ContextSwitchConfig(interval=50_000)

    def probes():
        return ProbeSet(
            [
                IntervalSeriesProbe(10_000),
                StreakHistogramProbe(),
                TopOffendersProbe(k=10),
                WarmupCurveProbe(),
                TableStatsProbe(),
            ]
        )

    bare_best, bare = _best_of(
        lambda: simulate(make_pag(12), overhead_trace, context_switches=config),
        rounds=3,
    )
    probed_best, probed = _best_of(
        lambda: simulate(
            make_pag(12), overhead_trace, context_switches=config, probe=probes()
        ),
        rounds=3,
    )
    assert probed == bare
    benchmark.extra_info["bare_best_s"] = round(bare_best, 4)
    benchmark.extra_info["probed_best_s"] = round(probed_best, 4)
    benchmark.extra_info["probe_cost_ratio"] = round(probed_best / bare_best, 4)
    benchmark.pedantic(
        lambda: simulate(
            make_pag(12), overhead_trace, context_switches=config, probe=probes()
        ),
        rounds=1,
        iterations=1,
    )
