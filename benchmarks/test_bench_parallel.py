"""Bench comparing serial vs parallel matrix execution on the full
nine-benchmark suite.

Records both wall-times (and the speedup ratio) in ``extra_info``. No
speedup assertion is made: on single-core CI hosts process fan-out is
pure overhead, and the point of the guarantee is that the *matrices*
are identical either way — which this bench does assert.
"""

import os
import time

from conftest import run_once

from repro.sim.parallel import spec
from repro.sim.runner import run_matrix

BUILDERS = {
    "GAg(12)": spec("gag-12"),
    "PAg(512,4,12,A2)": spec("pag-12-a2-512x4"),
    "PAp(512,4,12,A2)": spec("pap-12-a2-512x4"),
    "BTB(A2)": spec("btb-a2"),
}

WORKERS = min(4, os.cpu_count() or 1)


def test_bench_parallel(benchmark, suite_cases):
    serial_start = time.perf_counter()
    serial = run_matrix(BUILDERS, suite_cases, n_workers=1)
    serial_time = time.perf_counter() - serial_start

    parallel_start = time.perf_counter()
    parallel = run_matrix(BUILDERS, suite_cases, n_workers=WORKERS)
    parallel_time = time.perf_counter() - parallel_start

    # Determinism: fan-out must not change a single cell.
    assert parallel == serial

    # Time the parallel path once more under pytest-benchmark so the
    # run shows up in the stored benchmark series.
    run_once(benchmark, lambda: run_matrix(BUILDERS, suite_cases, n_workers=WORKERS))

    benchmark.extra_info["n_workers"] = WORKERS
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["serial_seconds"] = round(serial_time, 3)
    benchmark.extra_info["parallel_seconds"] = round(parallel_time, 3)
    benchmark.extra_info["speedup"] = round(serial_time / parallel_time, 3)
    benchmark.extra_info["cells"] = serial.telemetry.total_cells
    benchmark.extra_info["simulations"] = serial.telemetry.simulations
