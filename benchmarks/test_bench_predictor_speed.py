"""Microbenchmarks of the predictor hot path (predictions per second).

Not a paper figure — these time the simulator substrate itself so
regressions in the per-branch loop show up in CI.
"""

import pytest

from repro.core.twolevel import make_gag, make_pag, make_pap
from repro.predictors.btb import btb_a2
from repro.predictors.static import AlwaysTaken
from repro.sim.engine import simulate
from repro.trace import synthetic


@pytest.fixture(scope="module")
def speed_trace():
    sources = [synthetic.loop_source(t) for t in (3, 5, 9, 17)] + [
        synthetic.pattern_source([True, True, False]),
    ]
    return synthetic.interleaved(sources, length=50_000)


@pytest.mark.parametrize(
    "factory,label",
    [
        (lambda: AlwaysTaken(), "always-taken"),
        (lambda: make_gag(12), "gag-12"),
        (lambda: make_pag(12), "pag-12"),
        (lambda: make_pap(6), "pap-6"),
        (btb_a2, "btb-a2"),
    ],
    ids=["always-taken", "gag-12", "pag-12", "pap-6", "btb-a2"],
)
def test_bench_prediction_throughput(benchmark, speed_trace, factory, label):
    def run():
        return simulate(factory(), speed_trace)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.conditional_branches == len(speed_trace)
    benchmark.extra_info["branches"] = result.conditional_branches
