"""Trace-sharded simulation throughput vs the interpreted engine.

Not a paper figure — this pins the headline property of the
``repro.sim.shard`` driver: on a million-branch trace the sharded
kernel path must be **bit-identical** to the serial interpreted loop
(context switches, per-site tracking included) and strictly faster,
with the measured per-scheme speedups recorded in
``benchmark.extra_info`` and, through the session hook in
``conftest.py``, in the persistent run ledger (``repro-obs
export-bench`` snapshots them into ``BENCH_*.json``).

A note on the floor below: the issue that introduced sharding asked
for a 50x pin, extrapolating vectorized math x parallel shard
workers. Shard reconciliation makes the shard count a pure
partitioning knob, so worker scaling only materialises on multi-core
hosts; this suite also runs on single-core CI runners, where the
whole speedup is the kernel-vs-interpreted ratio. That ratio measures
3.8-5.5x here (the interpreted loop runs at ~0.7-6 us/branch, the
kernels at ~0.15-0.6 us/branch), so the enforced floor is 3x with the
true values ledgered; raising the floor is a matter of reading recent
``BENCH_*.json`` snapshots on a beefier runner, not of code.
"""

import random
import time

import pytest

from repro.core.automata import A2, LAST_TIME
from repro.core.twolevel import make_pap
from repro.predictors.extensions import TournamentPredictor
from repro.predictors.registry import make_predictor
from repro.sim import ContextSwitchConfig, simulate, simulate_sharded

from repro.trace.events import TraceBuilder

N_BRANCHES = 1_000_000
N_SITES = 800
MIN_SPEEDUP = 3.0
SHARDS = 8

#: gag is the flagship; the eviction-heavy 4-way PAp and the hybrid
#: are the schemes this PR's kernels unlocked (no kernel before it).
SCHEMES = {
    "gag-12": lambda: make_predictor("gag-12"),
    "pap-a2-512x4": lambda: make_pap(12, A2, 2048, 4),
    "tournament": lambda: TournamentPredictor(
        make_pap(12, A2, 8192, 4),
        make_pap(10, LAST_TIME, 16384, 8),
        chooser_bits=12,
    ),
}


@pytest.fixture(scope="module")
def million_trace():
    """~1M biased conditional branches over 800 sites, trap every 50k."""
    rng = random.Random(1234)
    builder = TraceBuilder(name="bench-shard", source="synthetic")
    sites = sorted(rng.sample(range(0x40000, 0x140000), N_SITES))
    sites = [s * 4 for s in sites]
    biases = [rng.random() for _ in range(N_SITES)]
    for i in range(N_BRANCHES):
        index = rng.randrange(N_SITES)
        pc = sites[index]
        if i % 50_000 == 49_999:
            builder.trap()
        target = pc - 128 if index % 3 else pc + 128
        builder.branch(pc, rng.random() < biases[index], target=target, work=4)
    trace = builder.build()
    trace.as_arrays()  # warm the shared list->ndarray conversion
    return trace


@pytest.mark.parametrize("label", list(SCHEMES), ids=list(SCHEMES))
def test_bench_shard_speedup(benchmark, million_trace, label):
    make = SCHEMES[label]
    cs = ContextSwitchConfig(interval=1_000_000)
    started = time.perf_counter()
    reference = simulate(
        make(), million_trace, context_switches=cs,
        track_per_site=True, backend="python",
    )
    python_s = time.perf_counter() - started

    sharded_s = []
    fast = None
    for _ in range(3):
        t0 = time.perf_counter()
        fast = simulate_sharded(
            make(), million_trace, shards=SHARDS,
            context_switches=cs, track_per_site=True,
        )
        sharded_s.append(time.perf_counter() - t0)

    assert fast == reference  # bit-identical, counts and all
    speedup = python_s / min(sharded_s)
    benchmark.extra_info["branches"] = reference.conditional_branches
    benchmark.extra_info["shards"] = SHARDS
    benchmark.extra_info["python_s"] = round(python_s, 3)
    benchmark.extra_info["sharded_s"] = round(min(sharded_s), 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["backend"] = "vectorized"
    assert speedup >= MIN_SPEEDUP, (
        f"{label}: sharded backend only {speedup:.1f}x faster "
        f"(python {python_s:.2f}s, sharded {min(sharded_s):.2f}s)"
    )
    # The ledger records the sharded wall time as the measurement.
    benchmark.pedantic(
        lambda: simulate_sharded(
            make(), million_trace, shards=SHARDS,
            context_switches=cs, track_per_site=True,
        ),
        rounds=1,
        iterations=1,
    )
