"""Span-tracing overhead pin and the traced-sweep acceptance check.

Two guarantees from the span design, checked the same way the probe
layer pins its own overhead (see ``test_bench_obs.py``):

* span-off: with no active recorder, ``simulate`` runs the identical
  loop — its best-of-N time must stay within 5% of the inline copy of
  the pre-observability reference loop;
* traced sweep: a full 9-scheme sweep with a collector attached
  produces a Perfetto-loadable Chrome trace whose per-cell span totals
  agree with the ``CellTelemetry`` phase times within 1% (the PR's
  acceptance criterion — same clock readings feed both sides).
"""

import json
import time

import pytest

from repro.core.twolevel import make_pag
from repro.obs.spans import (
    SpanCollector,
    cell_phase_totals,
    get_recorder,
    to_chrome_trace,
    validate_chrome_trace,
    validate_span_tree,
)
from repro.sim.engine import simulate
from repro.sim.parallel import spec
from repro.sim.results import SimulationResult
from repro.sim.runner import BenchmarkCase, run_matrix
from repro.trace import synthetic
from repro.trace.events import BranchClass

BEST_OF = 9

#: Nine scheme variants at small, fast table sizes.
NINE_SCHEMES = (
    "gag-6", "gap-6", "gshare-6",
    "pag-6", "pap-6",
    "sag-6x4", "sas-6x4",
    "gselect-4+4", "tournament",
)


def _reference_simulate(predictor, trace, context_switches=None):
    """The engine loop exactly as it was before the probe layer landed."""
    conditional = 0
    correct = 0
    switches = 0

    cs_enabled = context_switches is not None
    interval = context_switches.interval if cs_enabled else 0
    switch_on_traps = context_switches.switch_on_traps if cs_enabled else False
    next_switch = interval

    predict = predictor.predict
    update = predictor.update
    cond_class = int(BranchClass.CONDITIONAL)

    for pc, taken, cls, target, instret, trap in trace.iter_tuples():
        if cs_enabled and ((trap and switch_on_traps) or instret >= next_switch):
            predictor.on_context_switch()
            switches += 1
            next_switch = instret + interval
        if cls != cond_class:
            continue
        prediction = predict(pc, target)
        update(pc, taken, target)
        conditional += 1
        if prediction == taken:
            correct += 1

    return SimulationResult(
        predictor_name=predictor.name,
        trace_name=trace.meta.name,
        dataset=trace.meta.dataset,
        conditional_branches=conditional,
        correct_predictions=correct,
        context_switches=switches,
        total_instructions=trace.meta.total_instructions,
    )


def _best_of(fn, rounds=BEST_OF):
    best = float("inf")
    value = None
    for _ in range(rounds):
        started = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return best, value


@pytest.fixture(scope="module")
def overhead_trace():
    sources = [synthetic.loop_source(t) for t in (3, 5, 9)] + [
        synthetic.pattern_source([True, True, False, True]),
    ]
    return synthetic.interleaved(sources, length=60_000)


def test_bench_span_off_overhead_under_5pct(benchmark, overhead_trace):
    assert get_recorder() is None, "a recorder leaked into the benchmark process"
    reference_best, reference_result = _best_of(
        lambda: _reference_simulate(make_pag(12), overhead_trace)
    )
    span_off_best, span_off_result = _best_of(
        lambda: simulate(make_pag(12), overhead_trace)
    )
    assert span_off_result == reference_result
    ratio = span_off_best / reference_best
    benchmark.extra_info["reference_best_s"] = round(reference_best, 4)
    benchmark.extra_info["span_off_best_s"] = round(span_off_best, 4)
    benchmark.extra_info["overhead_ratio"] = round(ratio, 4)
    benchmark.pedantic(
        lambda: simulate(make_pag(12), overhead_trace), rounds=1, iterations=1
    )
    assert ratio < 1.05, (
        f"span-off engine is {ratio:.3f}x the pre-observability loop "
        f"({span_off_best:.4f}s vs {reference_best:.4f}s best-of-{BEST_OF})"
    )


def test_bench_traced_nine_scheme_sweep_acceptance(benchmark, tmp_path):
    cases = [
        BenchmarkCase(
            name=name,
            category="int",
            test_trace=synthetic.loop_trace(iterations=600, trip_count=trip, name=name),
        )
        for name, trip in (("loopA", 7), ("loopB", 5))
    ]
    builders = {name: spec(name) for name in NINE_SCHEMES}
    tracer = SpanCollector()

    started = time.perf_counter()
    matrix = run_matrix(builders, cases, n_workers=2, tracer=tracer)
    wall = time.perf_counter() - started

    problems = validate_span_tree(tracer.spans)
    assert problems == []

    # Perfetto-loadable: the exported JSON passes the same validator CI
    # runs on the artifact, after a real serialisation round-trip.
    payload = to_chrome_trace(tracer.spans, label="bench: nine-scheme sweep")
    target = tmp_path / "trace.json"
    target.write_text(json.dumps(payload), encoding="utf-8")
    assert validate_chrome_trace(json.loads(target.read_text(encoding="utf-8"))) == []

    # Per-cell span totals agree with CellTelemetry phases within 1%.
    totals = cell_phase_totals(tracer.spans)
    cells = {(c.scheme, c.benchmark): c for c in matrix.telemetry.cells}
    assert set(totals) == set(cells)
    assert len(cells) == len(NINE_SCHEMES) * len(cases)
    worst = 0.0
    for key, phases in totals.items():
        for phase, seconds in phases.items():
            reference = cells[key].phases[phase]
            if reference <= 0.0:
                assert seconds == pytest.approx(0.0, abs=1e-6)
                continue
            rel = abs(seconds - reference) / reference
            # sub-ms phases: float-µs rounding dominates, allow 1 µs
            if abs(seconds - reference) > 1e-6:
                worst = max(worst, rel)
                assert rel <= 0.01, (
                    f"{key} {phase}: span {seconds:.6f}s vs telemetry "
                    f"{reference:.6f}s ({rel:.2%} apart)"
                )

    benchmark.extra_info["sweep_wall_s"] = round(wall, 4)
    benchmark.extra_info["spans"] = len(tracer.spans)
    benchmark.extra_info["worst_phase_rel_err"] = round(worst, 6)
    benchmark.pedantic(
        lambda: run_matrix(builders, cases, n_workers=2, tracer=SpanCollector()),
        rounds=1,
        iterations=1,
    )
