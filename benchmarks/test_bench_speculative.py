"""Ablation bench for §3.1: stale vs speculative branch history.

The paper argues predictions should update the first level
speculatively because waiting for resolution leaves the history stale.
This bench quantifies that on a real benchmark: GAg with resolution
latency 8 loses several points with stale history and recovers almost
everything with speculative update + repair.
"""

from conftest import run_once

from repro.core.twolevel import make_gag
from repro.sim.pipeline import RecoveryPolicy, SpeculativeTwoLevel, simulate_delayed

LATENCY = 8
HISTORY_BITS = 12


def test_bench_speculative_history(benchmark, suite_cases):
    eqntott = next(c for c in suite_cases if c.name == "eqntott")
    trace = eqntott.test_trace

    def run():
        immediate = simulate_delayed(make_gag(HISTORY_BITS), trace, 0).result.accuracy
        stale = simulate_delayed(make_gag(HISTORY_BITS), trace, LATENCY).result.accuracy
        speculative = simulate_delayed(
            make_gag(HISTORY_BITS),
            trace,
            LATENCY,
            speculative=SpeculativeTwoLevel(make_gag(HISTORY_BITS), RecoveryPolicy.REPAIR),
        ).result.accuracy
        reinit = simulate_delayed(
            make_gag(HISTORY_BITS),
            trace,
            LATENCY,
            speculative=SpeculativeTwoLevel(
                make_gag(HISTORY_BITS), RecoveryPolicy.REINITIALISE
            ),
        ).result.accuracy
        return immediate, stale, speculative, reinit

    immediate, stale, speculative, reinit = run_once(benchmark, run)
    benchmark.extra_info.update(
        immediate=round(immediate, 4),
        stale=round(stale, 4),
        speculative_repair=round(speculative, 4),
        speculative_reinit=round(reinit, 4),
    )
    # Stale history costs real accuracy at depth-8 resolution...
    assert immediate - stale > 0.02
    # ...speculative update recovers most of the loss...
    assert speculative > stale
    assert (immediate - speculative) < 0.5 * (immediate - stale)
    # ...and full repair is at least as good as cheap reinitialisation.
    assert speculative >= reinit - 0.002
