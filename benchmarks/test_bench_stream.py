"""Streamed-container throughput vs the one-shot materialized path.

Not a paper figure — this pins the headline property of the streaming
trace substrate (``repro.trace.stream``, see docs/traces.md): driving
the vectorized backend block-by-block from an mmap-backed ``.btrs``
container at the default block size (2^16 records) must stay within
``MAX_OVERHEAD`` of simulating the fully materialized in-memory trace
in a single kernel pass, while remaining **bit-identical**. (In
practice the container is *faster* — blocks arrive as zero-copy NumPy
views of the mapped file, skipping the list->ndarray conversion the
in-memory path pays.) The measured overheads land in
``benchmark.extra_info`` and, through the session hook in
``conftest.py``, in the persistent run ledger, so
``repro-obs export-bench`` snapshots them into ``BENCH_*.json``.
"""

import random
import time

import pytest

from repro.predictors.registry import make_predictor
from repro.sim import simulate_vectorized
from repro.sim.kernels import simulate_vectorized_stream
from repro.trace.events import TraceBuilder
from repro.trace.stream import open_stream, save_source

N_BRANCHES = 1_000_000
N_SITES = 800
BLOCK_SIZE = 1 << 16
#: Streamed wall time may exceed materialized by at most 10%.
MAX_OVERHEAD = 1.10

#: The flagship kernelized schemes; PAp has no stream kernel by design.
SCHEMES = {
    "gag-12": "gag-12",
    "pag-12-dm": "pag-12-a2-512x1",
}


@pytest.fixture(scope="module")
def million_trace():
    """~1M biased conditional branches over 800 sites, trap every 50k."""
    rng = random.Random(42)
    builder = TraceBuilder(name="bench-stream", source="synthetic")
    sites = [0x40_0000 + 8 * i for i in range(N_SITES)]
    biases = [rng.random() for _ in range(N_SITES)]
    for i in range(N_BRANCHES):
        index = rng.randrange(N_SITES)
        pc = sites[index]
        if i % 50_000 == 49_999:
            builder.trap()
        target = pc - 128 if index % 3 else pc + 128
        builder.branch(pc, rng.random() < biases[index], target=target, work=4)
    trace = builder.build()
    # Warm the cached list->ndarray conversion: shared by the
    # materialized pass, so steady-state throughput excludes it.
    trace.as_arrays()
    return trace


@pytest.fixture(scope="module")
def container_path(million_trace, tmp_path_factory):
    """The same million branches as an on-disk ``.btrs`` container."""
    path = tmp_path_factory.mktemp("stream") / "bench.btrs"
    save_source(million_trace, path, block_size=BLOCK_SIZE)
    return path


@pytest.mark.parametrize("label", list(SCHEMES), ids=list(SCHEMES))
def test_bench_stream_overhead(benchmark, million_trace, container_path, label):
    name = SCHEMES[label]

    materialized_s = []
    reference = None
    for _ in range(3):
        t0 = time.perf_counter()
        reference = simulate_vectorized(make_predictor(name), million_trace)
        materialized_s.append(time.perf_counter() - t0)

    with open_stream(container_path) as source:
        streamed_s = []
        streamed = None
        for _ in range(3):
            t0 = time.perf_counter()
            streamed = simulate_vectorized_stream(
                make_predictor(name), source, block_size=BLOCK_SIZE
            )
            streamed_s.append(time.perf_counter() - t0)

        assert streamed == reference  # bit-identical, counts and all
        overhead = min(streamed_s) / min(materialized_s)
        benchmark.extra_info["branches"] = reference.conditional_branches
        benchmark.extra_info["block_size"] = BLOCK_SIZE
        benchmark.extra_info["materialized_s"] = round(min(materialized_s), 3)
        benchmark.extra_info["streamed_s"] = round(min(streamed_s), 3)
        benchmark.extra_info["overhead"] = round(overhead, 3)
        benchmark.extra_info["backend"] = "vectorized"
        assert overhead <= MAX_OVERHEAD, (
            f"{label}: streamed pass {overhead:.2f}x materialized "
            f"(materialized {min(materialized_s):.3f}s, "
            f"streamed {min(streamed_s):.3f}s, block {BLOCK_SIZE})"
        )
        # The ledger records the streamed wall time as the measurement.
        benchmark.pedantic(
            lambda: simulate_vectorized_stream(
                make_predictor(name), source, block_size=BLOCK_SIZE
            ),
            rounds=1,
            iterations=1,
        )
