"""Benches regenerating the paper's Tables 1-3."""

from conftest import run_once

from repro.experiments.tables import table1, table2, table3
from repro.workloads.suite import PAPER_TABLE1


def test_bench_table1(benchmark, suite_cases, record_result):
    """Table 1: static conditional branch counts per benchmark."""
    result = run_once(benchmark, lambda: table1(cases=suite_cases))
    record_result(result)
    counts = {row[0]: row[1] for row in result.rows}
    benchmark.extra_info["static_counts"] = counts
    # The property Table 1 feeds (Fig 10): gcc has by far the largest
    # static population, larger than a 512-entry BHT.
    assert max(counts, key=counts.get) == "gcc"
    assert counts["gcc"] > 512
    assert set(counts) == set(PAPER_TABLE1)


def test_bench_table2(benchmark, record_result):
    """Table 2: training/testing dataset names (must match the paper)."""
    result = run_once(benchmark, table2)
    record_result(result)
    rows = {row[0]: (row[1], row[3]) for row in result.rows}
    for name, (ours, paper) in rows.items():
        assert ours.lower() == paper.lower(), name


def test_bench_table3(benchmark, record_result):
    """Table 3: the simulated predictor configuration list."""
    result = run_once(benchmark, table3)
    record_result(result)
    assert len(result.rows) == 15
    rendered = result.render()
    for fragment in (
        "GAg(HR(1,,12-sr),1xPHT(2^12,A2),)",
        "PAp(BHT(512,4,12-sr),512xPHT(2^12,A2),)",
        "BTB(BHT(512,4,LT),,)",
    ):
        assert fragment in rendered
