"""Figure 11 in miniature: every scheme family on the analog suite.

By default runs two integer and one floating-point benchmark to stay
fast; pass ``--full`` for all nine (a few minutes).

Run:  python examples/compare_schemes.py [--full]
"""

import argparse

from repro import build_cases, run_matrix, SuiteConfig
from repro.experiments.report import render_accuracy_matrix
from repro.predictors.registry import figure11_factories
from repro.workloads.suite import BENCHMARK_ORDER


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run all nine benchmarks")
    args = parser.parse_args()

    benchmarks = list(BENCHMARK_ORDER) if args.full else ["espresso", "li", "tomcatv"]
    print(f"generating traces for: {', '.join(benchmarks)} ...")
    cases = build_cases(SuiteConfig(benchmarks=benchmarks))

    matrix = run_matrix(figure11_factories(), cases)
    print()
    print(render_accuracy_matrix(matrix, title="Branch prediction schemes compared"))
    print()
    best = matrix.best_scheme()
    print(f"best scheme by Tot GMean: {best} ({matrix.gmean(best) * 100:.2f}%)")


if __name__ == "__main__":
    main()
