"""Source-to-prediction pipeline: mini-C -> M88K -> trace -> predictor.

The paper's toolchain compiled SPEC sources for the Motorola 88100 and
traced them on an instruction-level simulator. This example does the
same, end to end, inside the repo: a mini-C program is compiled by
:mod:`repro.isa.compiler` to the M88K-flavoured ISA, executed on the
CPU simulator, and its branch trace fed to the paper's predictors.

Run:  python examples/compile_pipeline.py
"""

from repro import btb_a2, make_gag, make_pag, simulate
from repro.isa.compiler import MiniCCompiler, compile_and_run
from repro.trace.stats import compute_stats

COLLATZ = """
int fn0(int p0) {
  var steps = 0;
  var n = p0;
  var total = 0;
  while (n > 1) {
    if ((n & 1) == 0) {
      n = (n / 2);
    } else {
      n = ((n * 3) + 1);
    }
    steps = steps + 1;
  }
  return steps;
}

int fn1(int p0) {
  var k = 1;
  var total = 0;
  while (k < p0) {
    total = (total + fn0(k));
    k = k + 1;
  }
  return total;
}
"""


def main() -> None:
    # Show a slice of the generated assembly first.
    assembly = MiniCCompiler().compile_program(COLLATZ, entry="fn1", args=[80])
    lines = assembly.splitlines()
    print("generated assembly (first 14 lines):")
    for line in lines[:14]:
        print(f"  {line}")
    print(f"  ... ({len(lines)} lines total)\n")

    result, state, trace = compile_and_run(COLLATZ, entry="fn1", args=[80])
    print(f"total Collatz steps for 1..79: {result}")
    print(f"executed {state.instructions_executed} instructions")
    stats = compute_stats(trace)
    print(
        f"branch trace: {stats.dynamic_branches} branches "
        f"({stats.dynamic_conditional} conditional, "
        f"taken rate {stats.taken_rate * 100:.1f}%)\n"
    )

    # The parity branch `(n & 1) == 0` is the interesting one: its
    # outcome is the Collatz trajectory itself. History predictors pick
    # up the short even-runs; counters cannot.
    for predictor in (btb_a2(), make_gag(12), make_pag(12)):
        accuracy = simulate(predictor, trace.conditional_only()).accuracy
        print(f"{predictor.name:45s} {accuracy * 100:6.2f}%")


if __name__ == "__main__":
    main()
