"""Cost/accuracy trade-off study (the paper's §3.4 + Figure 8).

Sweeps history register length for each two-level variation, measuring
prediction accuracy on an integer benchmark against the paper's
hardware cost equations. Prints the frontier the paper summarises as:
"to reach ~97 %, GAg needs 18 bits, PAg 12, PAp 6 — and PAg is the
cheapest of the three".

Run:  python examples/cost_accuracy_tradeoff.py
"""

from repro import (
    cost_gag,
    cost_pag,
    cost_pap,
    get_workload,
    make_gag,
    make_pag,
    make_pap,
    simulate,
)


def main() -> None:
    trace = get_workload("li").generate("testing")
    print(f"benchmark: {trace}\n")
    header = f"{'variation':6s} {'k':>3s} {'accuracy':>9s} {'cost (eqs. 4-6)':>16s}"
    print(header)
    print("-" * len(header))

    rows = []
    for k in (2, 4, 6, 8, 10, 12, 14, 16, 18):
        rows.append(("GAg", k, simulate(make_gag(k), trace).accuracy, cost_gag(k)))
    for k in (2, 4, 6, 8, 10, 12):
        rows.append(("PAg", k, simulate(make_pag(k), trace).accuracy, cost_pag(512, 4, k)))
    for k in (2, 4, 6, 8):
        rows.append(("PAp", k, simulate(make_pap(k), trace).accuracy, cost_pap(512, 4, k)))

    for variation, k, accuracy, cost in rows:
        print(f"{variation:6s} {k:3d} {accuracy * 100:8.2f}% {cost:16,.0f}")

    print("\ncheapest configuration reaching 94% on this benchmark, per variation:")
    for variation in ("GAg", "PAg", "PAp"):
        good = [(cost, k) for v, k, acc, cost in rows if v == variation and acc >= 0.94]
        if good:
            cost, k = min(good)
            print(f"  {variation}: k={k:2d}  cost={cost:,.0f}")
        else:
            print(f"  {variation}: not reached in the sweep")


if __name__ == "__main__":
    main()
