"""Bring your own workload: instrument any algorithm and evaluate it.

Defines a new benchmark — binary search over a growing sorted array —
by subclassing :class:`repro.workloads.Workload` and threading every
conditional decision through the :class:`BranchProbe`. Then measures
how the paper's predictors handle it.

Binary search is adversarial for every history-based predictor: the
compare branch goes either way depending on the probe key, so dynamic
schemes cluster well below their usual 90s — but all of them still
roundly beat the static baseline, which is the point the exercise
makes about *your* workload in ten lines of instrumentation.

Run:  python examples/custom_workload.py
"""

import random

from repro import btb_a2, make_gag, make_pag, simulate
from repro.predictors.static import AlwaysTaken
from repro.workloads.base import BranchProbe, DatasetSpec, Workload


class BinarySearchWorkload(Workload):
    """Repeated binary searches over a sorted key array."""

    name = "bsearch"
    category = "int"
    training_dataset = DatasetSpec("small-keys", seed=11, size=2_000)
    testing_dataset = DatasetSpec("large-keys", seed=29, size=6_000)

    def run(self, probe: BranchProbe, rng: random.Random, dataset: DatasetSpec, scale: int) -> None:
        keys = sorted(rng.sample(range(dataset.size * 10), dataset.size))
        for _q in probe.loop("driver.queries", dataset.size * scale, work=6):
            needle = rng.randrange(dataset.size * 10)
            self._search(probe, keys, needle)

    def _search(self, probe: BranchProbe, keys, needle) -> int:
        probe.call("search.enter")
        lo, hi = 0, len(keys)
        while probe.while_("search.loop", lo < hi, work=4):
            mid = (lo + hi) // 2
            if probe.cond("search.found", keys[mid] == needle, work=3):
                probe.ret("search.leave")
                return mid
            if probe.cond("search.go_right", keys[mid] < needle, work=3):
                lo = mid + 1
            else:
                hi = mid
        probe.ret("search.leave")
        return -1


def main() -> None:
    workload = BinarySearchWorkload()
    trace = workload.generate("testing")
    print(f"custom workload: {trace}")
    print(f"static branch sites: {len(trace.static_branch_sites())}\n")

    for predictor in (AlwaysTaken(), btb_a2(), make_gag(14), make_pag(12)):
        result = simulate(predictor, trace)
        print(f"{predictor.name:45s} {result.accuracy * 100:6.2f}%")


if __name__ == "__main__":
    main()
