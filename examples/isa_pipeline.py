"""The paper's full pipeline: ISA simulator -> trace -> predictor.

The paper generated traces by running SPEC binaries on a Motorola
88100 instruction-level simulator. This example does the same end to
end with the repro ISA substrate: assemble an M88K-flavoured program,
execute it on the CPU simulator (capturing every branch), then feed
the trace to the branch prediction simulator.

Run:  python examples/isa_pipeline.py
"""

from repro import btb_a2, make_gag, make_pag, simulate
from repro.isa import assemble, run_program
from repro.isa.programs import matmul, program_trace
from repro.trace.stats import compute_stats

NAIVE_MAX = """
; max of an array, with a data-dependent update branch
main:   li   r10, 16            ; length
        li   r4, data
        li   r5, 0              ; running max
        li   r2, 0              ; index
scan:   cmp  r9, r2, r10
        bb0  lt, r9, done
        muli r3, r2, 4
        add  r3, r3, r4
        ld   r6, r3, 0
        cmp  r9, r6, r5
        bb0  gt, r9, skip       ; new maximum?
        add  r5, r6, r0
skip:   addi r2, r2, 1
        br   scan
done:   halt

.data
data:   .word 3 1 4 1 5 9 2 6 5 3 5 8 9 7 9 3
"""


def main() -> None:
    # 1. A hand-written kernel, assembled and executed.
    state, trace = run_program(assemble(NAIVE_MAX), trace_name="isa-max")
    print(f"naive-max: executed {state.instructions_executed} instructions, "
          f"max = {state.reg(5)}")
    stats = compute_stats(trace)
    print(f"  branches: {stats.dynamic_branches} "
          f"({stats.dynamic_conditional} conditional, "
          f"taken rate {stats.taken_rate * 100:.1f}%)\n")

    # 2. The matrix300 kernel in assembly — the same algorithm as the
    #    matrix300 SPEC-analog workload, traced at ISA level.
    state, trace = program_trace("matmul", n=10)
    print(f"matmul(10): {trace}")
    for predictor in (btb_a2(), make_gag(10), make_pag(10)):
        result = simulate(predictor, trace)
        print(f"  {predictor.name:45s} {result.accuracy * 100:6.2f}%")

    # 3. Inspect the assembled code of a kernel.
    program = assemble(matmul(4))
    print(f"\nmatmul(4) assembles to {len(program.instructions)} instructions; first five:")
    for instruction in program.instructions[:5]:
        print(f"  {instruction}")


if __name__ == "__main__":
    main()
