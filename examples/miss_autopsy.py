"""Miss autopsy: characterising the residual 3 percent.

The paper closes by saying its ~97 % "is not good enough" and that the
authors are examining the remaining misses. This example performs that
examination on the gcc analog — the hardest benchmark — using the
analysis toolkit:

1. break the misses into cold / post-flush / steady-state,
2. find the static branches where the misses live,
3. measure the interference that causes the steady-state share,
4. watch the learning curve to see warm-up end.

Run:  python examples/miss_autopsy.py
"""

from repro import ContextSwitchConfig, get_workload, make_pag
from repro.analysis import (
    interference_report,
    learning_curve,
    misprediction_breakdown,
    per_site_report,
    predictability_bounds,
)


def main() -> None:
    trace = get_workload("gcc").generate("testing")
    print(f"benchmark: {trace}\n")

    breakdown = misprediction_breakdown(
        make_pag(12), trace, context_switches=ContextSwitchConfig()
    )
    shares = breakdown.shares()
    print(f"PAg-12 accuracy: {breakdown.accuracy * 100:.2f}% "
          f"({breakdown.total_misses} misses)")
    print(f"  cold-start misses : {shares['cold'] * 100:5.1f}%")
    print(f"  post-flush misses : {shares['post_flush'] * 100:5.1f}%")
    print(f"  steady-state      : {shares['steady'] * 100:5.1f}%\n")

    print("where the misses live (worst 8 static branches):")
    for site in per_site_report(make_pag(12), trace, top=8):
        print(
            f"  pc {site.pc:#010x}: {site.mispredictions:6d} misses "
            f"over {site.executions:7d} runs "
            f"(taken {site.taken_rate * 100:5.1f}%, accuracy {site.accuracy * 100:5.1f}%)"
        )
    print()

    print(interference_report(trace, history_bits=12))
    print()

    bounds = predictability_bounds(trace, 12)
    print(f"static-oracle references at k=12: bias {bounds.bias_bound * 100:.2f}%, "
          f"12-bit self-history {bounds.history_bound * 100:.2f}%")
    print("  -> below the oracle: warm-up + hysteresis + aliasing losses;")
    print("     above it (possible!): phase-adaptivity the static map lacks.\n")

    curve = learning_curve(make_pag(12), trace, windows=10)
    print("learning curve (accuracy per tenth of the trace):")
    print("  " + " ".join(f"{value * 100:5.1f}" for value in curve))
    print("\nReading: most of gcc's residual misses are steady-state —")
    print("pattern conflicts and inherently data-dependent guards — which")
    print("is exactly why the field moved on to gshare-style hashing and")
    print("tournament choosers (see `repro-experiments extra-taxonomy`).")


if __name__ == "__main__":
    main()
