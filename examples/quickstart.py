"""Quickstart: predict branches of a SPEC-analog benchmark.

Builds the paper's sweet-spot predictor — PAg with 12-bit history
registers in a 4-way 512-entry branch history table and a global A2
pattern table — and measures it on the eqntott analog, next to a
classic per-branch 2-bit counter BTB.

Run:  python examples/quickstart.py
"""

from repro import btb_a2, get_workload, make_pag, simulate


def main() -> None:
    workload = get_workload("eqntott")
    trace = workload.generate("testing")
    print(f"trace: {trace}")

    for predictor in (make_pag(12), btb_a2()):
        result = simulate(predictor, trace)
        print(
            f"{predictor.name:45s} accuracy {result.accuracy * 100:6.2f}% "
            f"({result.mispredictions} mispredictions)"
        )

    # The eqntott story in one line: the paper's two-level scheme finds
    # the repeating patterns in the truth-table comparator that a
    # per-branch counter cannot represent.


if __name__ == "__main__":
    main()
