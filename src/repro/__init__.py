"""repro — a full reproduction of Yeh & Patt's *Alternative
Implementations of Two-Level Adaptive Branch Prediction*.

Subpackages:

* :mod:`repro.core` — the paper's contribution: GAg/PAg/PAp two-level
  predictors, the LT/A1-A4 pattern automata, branch history tables,
  Static Training (GSg/PSg), the hardware cost model, and the Table 3
  configuration naming convention.
* :mod:`repro.predictors` — the comparison schemes (BTB counters,
  profiling, Always-Taken, BTFN) and the common predictor interface.
* :mod:`repro.trace` — branch-trace records, serialization, statistics,
  synthetic generators and the trace cache.
* :mod:`repro.sim` — the trace-driven simulation engine with the
  paper's context-switch model, plus result aggregation.
* :mod:`repro.workloads` — nine SPEC-analog benchmarks (instrumented
  real algorithms) reproducing the paper's evaluation suite.
* :mod:`repro.isa` — an M88K-flavoured instruction-level simulator and
  assembler, the paper's trace-generation substrate.
* :mod:`repro.experiments` — drivers regenerating every table and
  figure of the evaluation.

Quickstart::

    from repro import make_pag, simulate, get_workload

    trace = get_workload("eqntott").generate("testing")
    result = simulate(make_pag(12), trace)
    print(result.accuracy)
"""

from .core import (
    A1,
    A2,
    A3,
    A4,
    LAST_TIME,
    AutomatonSpec,
    GAgPredictor,
    GApPredictor,
    GSgPredictor,
    GsharePredictor,
    PAgPredictor,
    PApPredictor,
    PSgPredictor,
    SchemeSpec,
    TwoLevelConfig,
    cost_gag,
    cost_pag,
    cost_pap,
    cost_two_level,
    make_gag,
    make_pag,
    make_pap,
)
from .predictors import (
    BTFN,
    AlwaysNotTaken,
    AlwaysTaken,
    BTBPredictor,
    BranchPredictor,
    ProfileGuided,
    btb_a2,
    btb_last_time,
)
from .predictors.registry import make_predictor
from .sim import (
    BenchmarkCase,
    ContextSwitchConfig,
    PredictorSpec,
    ResultMatrix,
    RunTelemetry,
    SimulationResult,
    geometric_mean,
    run_matrix,
    simulate,
    spec,
)
from .trace import (
    BranchClass,
    BranchRecord,
    ResultCache,
    Trace,
    TraceBuilder,
    load_trace,
    save_trace,
)
from .workloads import (
    BENCHMARK_ORDER,
    SuiteConfig,
    all_workloads,
    build_cases,
    get_workload,
)

__version__ = "1.0.0"

__all__ = [
    "A1",
    "A2",
    "A3",
    "A4",
    "AlwaysNotTaken",
    "AlwaysTaken",
    "AutomatonSpec",
    "BENCHMARK_ORDER",
    "BTBPredictor",
    "BTFN",
    "BenchmarkCase",
    "BranchClass",
    "BranchPredictor",
    "BranchRecord",
    "ContextSwitchConfig",
    "GAgPredictor",
    "GApPredictor",
    "GSgPredictor",
    "GsharePredictor",
    "LAST_TIME",
    "PAgPredictor",
    "PApPredictor",
    "PSgPredictor",
    "PredictorSpec",
    "ProfileGuided",
    "ResultCache",
    "ResultMatrix",
    "RunTelemetry",
    "SchemeSpec",
    "SimulationResult",
    "SuiteConfig",
    "Trace",
    "TraceBuilder",
    "TwoLevelConfig",
    "all_workloads",
    "btb_a2",
    "btb_last_time",
    "build_cases",
    "cost_gag",
    "cost_pag",
    "cost_pap",
    "cost_two_level",
    "geometric_mean",
    "get_workload",
    "load_trace",
    "make_gag",
    "make_pag",
    "make_pap",
    "make_predictor",
    "run_matrix",
    "save_trace",
    "simulate",
    "spec",
    "__version__",
]
