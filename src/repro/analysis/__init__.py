"""Analysis tooling: interference, miss characterisation, predictability.

Three layers, all streaming over any
:class:`repro.trace.stream.TraceSource`:

* :mod:`~repro.analysis.bounds` — closed-form predictability bounds,
* :mod:`~repro.analysis.interference` /
  :mod:`~repro.analysis.breakdown` — interference measurement and
  per-miss attribution for one predictor,
* :mod:`~repro.analysis.predictability` — the characterization engine:
  entropy / history-sensitivity curves, H2P identification, feature
  clustering and the per-cluster scheme winner table, serialised as a
  schema-stable :class:`~repro.analysis.predictability.CharacterizationReport`.
"""

from .bounds import PredictabilityBounds, bias_bound, history_bound, predictability_bounds
from .breakdown import (
    MispredictionBreakdown,
    SiteReport,
    learning_curve,
    misprediction_breakdown,
    per_site_report,
)
from .interference import (
    BHTPressure,
    FirstLevelInterference,
    SecondLevelInterference,
    bht_pressure,
    first_level_interference,
    interference_report,
    second_level_interference,
)
from .predictability import (
    CHAR_SCHEMA,
    CLUSTER_NAMES,
    DEFAULT_MAX_K,
    DEFAULT_SCHEMES,
    CharacterizationReport,
    ClusteringConfig,
    ClusterSummary,
    H2PCriteria,
    HistoryCurvePoint,
    PredictabilityCounts,
    SchemeAttribution,
    SiteCharacterization,
    attribute_scheme,
    binary_entropy,
    characterization_counts,
    characterize,
    format_characterization,
)

__all__ = [
    "BHTPressure",
    "CHAR_SCHEMA",
    "CLUSTER_NAMES",
    "CharacterizationReport",
    "ClusterSummary",
    "ClusteringConfig",
    "DEFAULT_MAX_K",
    "DEFAULT_SCHEMES",
    "FirstLevelInterference",
    "H2PCriteria",
    "HistoryCurvePoint",
    "MispredictionBreakdown",
    "PredictabilityBounds",
    "PredictabilityCounts",
    "SchemeAttribution",
    "SecondLevelInterference",
    "SiteCharacterization",
    "SiteReport",
    "attribute_scheme",
    "bht_pressure",
    "bias_bound",
    "binary_entropy",
    "characterization_counts",
    "characterize",
    "first_level_interference",
    "format_characterization",
    "history_bound",
    "interference_report",
    "learning_curve",
    "misprediction_breakdown",
    "per_site_report",
    "predictability_bounds",
    "second_level_interference",
]
