"""Analysis tooling: interference measurement and miss characterisation."""

from .bounds import PredictabilityBounds, bias_bound, history_bound, predictability_bounds
from .breakdown import (
    MispredictionBreakdown,
    SiteReport,
    learning_curve,
    misprediction_breakdown,
    per_site_report,
)
from .interference import (
    BHTPressure,
    FirstLevelInterference,
    SecondLevelInterference,
    bht_pressure,
    first_level_interference,
    interference_report,
    second_level_interference,
)

__all__ = [
    "BHTPressure",
    "PredictabilityBounds",
    "bias_bound",
    "history_bound",
    "predictability_bounds",
    "FirstLevelInterference",
    "MispredictionBreakdown",
    "SecondLevelInterference",
    "SiteReport",
    "bht_pressure",
    "first_level_interference",
    "interference_report",
    "learning_curve",
    "misprediction_breakdown",
    "per_site_report",
    "second_level_interference",
]
