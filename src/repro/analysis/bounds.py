"""Predictability reference points (static oracles).

How good is the best **time-invariant** predictor on a given trace?

* :func:`bias_bound` — the accuracy of an oracle that knows each
  branch's whole-trace majority direction in advance. This is exactly
  what in-sample profiling converges to; any *static* per-branch scheme
  is bounded by it.
* :func:`history_bound` — the accuracy of an oracle that, for every
  (branch, k-bit self-history) context, knows the context's whole-trace
  majority outcome. This is the ceiling for any *fixed* k-history
  mapping — e.g. an idealised Static Training table with unlimited
  profiling on the test input itself.

Two caveats make these *reference points*, not hard ceilings:

1. **Adaptive predictors can exceed them.** A saturating counter tracks
   phase changes; when a context behaves differently in different
   program phases, the whole-trace majority gets ``max(p, 1-p)`` while
   an adaptive entry can get both phases right. (Our eqntott analog
   shows precisely this: PAp-6 beats the 6-bit static oracle.) The gap
   *above* the oracle measures how much phase-adaptivity buys — the
   paper's §2 argument for adaptive over Static Training, quantified.
2. Below the oracle, the gap decomposes into warm-up and hysteresis
   losses; and the oracle's own distance from 100 % is behaviour that
   no fixed k-history mapping can capture — raising k is the only fix,
   the paper's Figure 7 story.

Both oracles use the same history bookkeeping as the real predictors
(two passes: tally, then score), so comparisons are apples-to-apples.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.history import history_mask
from ..trace.events import BranchClass, Trace

__all__ = [
    "PredictabilityBounds",
    "bias_bound",
    "history_bound",
    "predictability_bounds",
]


@dataclass(frozen=True)
class PredictabilityBounds:
    """Static-oracle reference points for one trace at one history
    length (see the module docstring for what they do and do not
    bound)."""

    history_bits: int
    conditional_branches: int
    bias_bound: float
    history_bound: float

    @property
    def history_headroom(self) -> float:
        """How much knowing k-bit history adds over pure bias."""
        return self.history_bound - self.bias_bound


def bias_bound(trace: Trace) -> float:
    """Accuracy of the static per-branch majority-direction oracle."""
    taken: Dict[int, int] = defaultdict(int)
    total: Dict[int, int] = defaultdict(int)
    for pc, was_taken, cls, _t, _i, _tr in trace.iter_tuples():
        if cls != BranchClass.CONDITIONAL:
            continue
        total[pc] += 1
        if was_taken:
            taken[pc] += 1
    correct = sum(max(taken[pc], total[pc] - taken[pc]) for pc in total)
    denominator = sum(total.values())
    return correct / denominator if denominator else 0.0


def history_bound(trace: Trace, history_bits: int, per_address: bool = True) -> float:
    """Accuracy of the static majority oracle per (branch, k-history)
    context — the ceiling for fixed mappings, beatable by adaptive ones
    on phase-changing behaviour.

    Args:
        per_address: contexts keyed by the branch's own history (the
            PAg/PAp ceiling); False keys by global history (GAg ceiling).
    """
    mask = history_mask(history_bits)
    counts: Dict[Tuple[int, int], list] = defaultdict(lambda: [0, 0])
    histories: Dict[int, int] = {}
    global_history = mask
    for pc, taken, cls, _t, _i, _tr in trace.iter_tuples():
        if cls != BranchClass.CONDITIONAL:
            continue
        if per_address:
            history = histories.get(pc, mask)
            counts[(pc, history)][1 if taken else 0] += 1
            histories[pc] = ((history << 1) | (1 if taken else 0)) & mask
        else:
            counts[(pc, global_history)][1 if taken else 0] += 1
            global_history = ((global_history << 1) | (1 if taken else 0)) & mask
    correct = sum(max(not_taken, taken) for not_taken, taken in counts.values())
    denominator = sum(a + b for a, b in counts.values())
    return correct / denominator if denominator else 0.0


def predictability_bounds(trace: Trace, history_bits: int) -> PredictabilityBounds:
    """Both ceilings for one trace."""
    return PredictabilityBounds(
        history_bits=history_bits,
        conditional_branches=trace.num_conditional(),
        bias_bound=bias_bound(trace),
        history_bound=history_bound(trace, history_bits),
    )
