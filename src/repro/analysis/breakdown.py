"""Misprediction breakdown and learning curves.

The paper closes by noting the authors "are examining that 3 percent
[miss rate] to try to characterize it". This module does that
characterisation for any predictor on any trace:

* :func:`misprediction_breakdown` — classify every miss as

  - **cold** — the first few occurrences of its static branch (the
    predictor had nothing to go on),
  - **post-flush** — shortly after a context switch flushed the first
    level,
  - **steady-state** — everything else (pattern conflicts, inherent
    randomness, interference).

* :func:`learning_curve` — accuracy over consecutive windows of the
  trace, showing warm-up and phase behaviour.

* :func:`per_site_report` — the worst static branches with their bias
  and miss share, the actionable view for "where do the misses live?".

All passes stream over any :class:`repro.trace.stream.TraceSource`;
the optional ``block_size`` walks the source in bounded blocks, and
the result is block-size invariant by the ``TraceSource`` contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..predictors.base import BranchPredictor
from ..sim.engine import ContextSwitchConfig
from ..trace.events import BranchClass
from ..trace.stream import TraceSource, iter_source_tuples

__all__ = [
    "MispredictionBreakdown",
    "SiteReport",
    "learning_curve",
    "misprediction_breakdown",
    "per_site_report",
]

_COLD_OCCURRENCES = 4
_POST_FLUSH_WINDOW = 2  # per-branch occurrences after a flush counted as flush cost


@dataclass(frozen=True)
class MispredictionBreakdown:
    """Misses attributed to cold starts, flushes, and steady state."""

    total_branches: int
    total_misses: int
    cold_misses: int
    post_flush_misses: int
    steady_misses: int

    @property
    def accuracy(self) -> float:
        if self.total_branches == 0:
            return 0.0
        return 1.0 - self.total_misses / self.total_branches

    def shares(self) -> Dict[str, float]:
        """Fraction of all misses in each class."""
        if self.total_misses == 0:
            return {"cold": 0.0, "post_flush": 0.0, "steady": 0.0}
        return {
            "cold": self.cold_misses / self.total_misses,
            "post_flush": self.post_flush_misses / self.total_misses,
            "steady": self.steady_misses / self.total_misses,
        }


def misprediction_breakdown(
    predictor: BranchPredictor,
    trace: TraceSource,
    context_switches: Optional[ContextSwitchConfig] = None,
    block_size: Optional[int] = None,
) -> MispredictionBreakdown:
    """Simulate and classify every misprediction."""
    occurrences: Dict[int, int] = {}
    since_flush: Dict[int, int] = {}
    total = 0
    misses = 0
    cold = 0
    post_flush = 0
    cs_enabled = context_switches is not None
    interval = context_switches.interval if cs_enabled else 0
    switch_on_traps = context_switches.switch_on_traps if cs_enabled else False
    next_switch = interval
    cond_class = int(BranchClass.CONDITIONAL)

    for pc, taken, cls, target, instret, trap in iter_source_tuples(trace, block_size):
        if cs_enabled and ((trap and switch_on_traps) or instret >= next_switch):
            predictor.on_context_switch()
            if instret >= next_switch:
                # Absolute interval boundaries, matching the engine's
                # fixed context-switch cadence (see repro.sim.engine).
                next_switch += interval * ((instret - next_switch) // interval + 1)
            since_flush = {}
        if cls != cond_class:
            continue
        prediction = predictor.predict(pc, target)
        predictor.update(pc, taken, target)
        total += 1
        count = occurrences.get(pc, 0)
        occurrences[pc] = count + 1
        flush_count = since_flush.get(pc, 0)
        since_flush[pc] = flush_count + 1
        if prediction == taken:
            continue
        misses += 1
        if count < _COLD_OCCURRENCES:
            cold += 1
        elif cs_enabled and flush_count < _POST_FLUSH_WINDOW:
            post_flush += 1
    return MispredictionBreakdown(
        total_branches=total,
        total_misses=misses,
        cold_misses=cold,
        post_flush_misses=post_flush,
        steady_misses=misses - cold - post_flush,
    )


def learning_curve(
    predictor: BranchPredictor,
    trace: TraceSource,
    windows: int = 20,
    block_size: Optional[int] = None,
) -> List[float]:
    """Accuracy per consecutive window of conditional branches."""
    if windows < 1:
        raise ValueError("windows must be >= 1")
    cond_class = int(BranchClass.CONDITIONAL)
    counter = getattr(trace, "num_conditional", None)
    if counter is not None:
        conditional = counter()
    else:
        # Generic sources lack Trace's cached count: one cheap
        # counting pass (no predictor state touched) sizes the windows.
        conditional = sum(
            1
            for _pc, _taken, cls, _target, _instret, _trap in iter_source_tuples(
                trace, block_size
            )
            if cls == cond_class
        )
    if conditional == 0:
        return []
    window_size = max(conditional // windows, 1)
    curve: List[float] = []
    correct = 0
    seen = 0
    for pc, taken, cls, target, _instret, _trap in iter_source_tuples(trace, block_size):
        if cls != cond_class:
            continue
        prediction = predictor.predict(pc, target)
        predictor.update(pc, taken, target)
        correct += prediction == taken
        seen += 1
        if seen == window_size:
            curve.append(correct / seen)
            correct = 0
            seen = 0
    # A tiny tail remainder is statistically meaningless noise; only
    # report it when it is a substantial fraction of a window.
    if seen >= window_size // 4 and seen > 0:
        curve.append(correct / seen)
    return curve


@dataclass(frozen=True)
class SiteReport:
    """One static branch in the per-site report."""

    pc: int
    executions: int
    mispredictions: int
    taken_rate: float

    @property
    def accuracy(self) -> float:
        if self.executions == 0:
            return 0.0
        return 1.0 - self.mispredictions / self.executions


def per_site_report(
    predictor: BranchPredictor,
    trace: TraceSource,
    top: int = 10,
    block_size: Optional[int] = None,
) -> List[SiteReport]:
    """The ``top`` static branches ranked by misprediction count."""
    executions: Dict[int, int] = {}
    taken_counts: Dict[int, int] = {}
    miss_counts: Dict[int, int] = {}
    cond_class = int(BranchClass.CONDITIONAL)
    for pc, taken, cls, target, _instret, _trap in iter_source_tuples(trace, block_size):
        if cls != cond_class:
            continue
        prediction = predictor.predict(pc, target)
        predictor.update(pc, taken, target)
        executions[pc] = executions.get(pc, 0) + 1
        if taken:
            taken_counts[pc] = taken_counts.get(pc, 0) + 1
        if prediction != taken:
            miss_counts[pc] = miss_counts.get(pc, 0) + 1
    ranked = sorted(miss_counts.items(), key=lambda item: -item[1])[:top]
    return [
        SiteReport(
            pc=pc,
            executions=executions[pc],
            mispredictions=misses,
            taken_rate=taken_counts.get(pc, 0) / executions[pc],
        )
        for pc, misses in ranked
    ]
