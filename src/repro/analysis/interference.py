"""Interference analysis.

The whole GAg -> PAg -> PAp progression of the paper is an interference
story: GAg suffers aliasing in *both* levels, PAg removes first-level
(history) interference, PAp also removes second-level (pattern)
interference. This module measures those quantities directly on a
trace, so the accuracy differences the figures show can be attributed.

* :func:`first_level_interference` — how often a branch's global-history
  pattern differs from what its private history would have been: the
  corruption GAg's shared register suffers.
* :func:`second_level_interference` — for a shared (global) pattern
  table, how many table entries are touched by multiple static branches
  and how often consecutive updates to an entry come from *different*
  branches with *disagreeing* outcomes (destructive aliasing, the kind
  that flips counters).
* :func:`bht_pressure` — hit/miss/eviction rates of a practical BHT for
  the trace's working set (what Figure 10 varies).

All passes stream over any :class:`repro.trace.stream.TraceSource`
(not just a materialized :class:`~repro.trace.events.Trace`); the
optional ``block_size`` walks the source in bounded blocks, and the
result is block-size invariant by the ``TraceSource`` contract.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.history import CacheBHT, history_mask
from ..trace.events import BranchClass
from ..trace.stream import TraceSource, iter_source_tuples

__all__ = [
    "BHTPressure",
    "FirstLevelInterference",
    "SecondLevelInterference",
    "bht_pressure",
    "first_level_interference",
    "interference_report",
    "second_level_interference",
]


@dataclass(frozen=True)
class FirstLevelInterference:
    """How much a shared global history register is corrupted."""

    history_bits: int
    conditional_branches: int
    polluted_lookups: int
    """Lookups where global history != the branch's private history."""

    @property
    def pollution_rate(self) -> float:
        if self.conditional_branches == 0:
            return 0.0
        return self.polluted_lookups / self.conditional_branches


def first_level_interference(
    trace: TraceSource,
    history_bits: int,
    block_size: Optional[int] = None,
) -> FirstLevelInterference:
    """Compare the global history register against private ones.

    Both registers follow the paper's initialisation (all ones, then
    outcome extension for the private registers on first update).
    """
    mask = history_mask(history_bits)
    global_history = mask
    private: Dict[int, int] = {}
    seen: Dict[int, bool] = {}
    polluted = 0
    total = 0
    for pc, taken, cls, _target, _instret, _trap in iter_source_tuples(trace, block_size):
        if cls != BranchClass.CONDITIONAL:
            continue
        total += 1
        private_history = private.get(pc, mask)
        if private_history != global_history:
            polluted += 1
        global_history = ((global_history << 1) | (1 if taken else 0)) & mask
        if pc not in seen:
            private[pc] = mask if taken else 0  # outcome extension
            seen[pc] = True
        else:
            private[pc] = ((private[pc] << 1) | (1 if taken else 0)) & mask
    return FirstLevelInterference(
        history_bits=history_bits,
        conditional_branches=total,
        polluted_lookups=polluted,
    )


@dataclass(frozen=True)
class SecondLevelInterference:
    """Aliasing in a shared (PAg-style) global pattern table."""

    history_bits: int
    entries_used: int
    entries_shared: int
    """Entries updated by more than one static branch."""
    updates: int
    cross_branch_updates: int
    """Updates where the previous update of the entry came from a
    different static branch."""
    destructive_updates: int
    """Cross-branch updates whose outcome disagrees with the previous
    update's outcome — the aliasing that actually flips counters."""

    @property
    def sharing_rate(self) -> float:
        if self.entries_used == 0:
            return 0.0
        return self.entries_shared / self.entries_used

    @property
    def destructive_rate(self) -> float:
        if self.updates == 0:
            return 0.0
        return self.destructive_updates / self.updates


def second_level_interference(
    trace: TraceSource,
    history_bits: int,
    block_size: Optional[int] = None,
) -> SecondLevelInterference:
    """Measure pattern-table aliasing under PAg first-level history."""
    mask = history_mask(history_bits)
    private: Dict[int, int] = {}
    fresh: Dict[int, bool] = {}
    owners: Dict[int, set] = defaultdict(set)
    last_writer: Dict[int, int] = {}
    last_outcome: Dict[int, bool] = {}
    updates = 0
    cross = 0
    destructive = 0
    for pc, taken, cls, _target, _instret, _trap in iter_source_tuples(trace, block_size):
        if cls != BranchClass.CONDITIONAL:
            continue
        pattern = private.get(pc, mask)
        updates += 1
        owners[pattern].add(pc)
        previous_writer = last_writer.get(pattern)
        if previous_writer is not None and previous_writer != pc:
            cross += 1
            if last_outcome[pattern] != taken:
                destructive += 1
        last_writer[pattern] = pc
        last_outcome[pattern] = taken
        if pc not in fresh:
            private[pc] = mask if taken else 0
            fresh[pc] = True
        else:
            private[pc] = ((private[pc] << 1) | (1 if taken else 0)) & mask
    shared = sum(1 for pcs in owners.values() if len(pcs) > 1)
    return SecondLevelInterference(
        history_bits=history_bits,
        entries_used=len(owners),
        entries_shared=shared,
        updates=updates,
        cross_branch_updates=cross,
        destructive_updates=destructive,
    )


@dataclass(frozen=True)
class BHTPressure:
    """Working-set pressure on a practical branch history table."""

    num_entries: int
    associativity: int
    accesses: int
    hits: int
    evictions: int
    distinct_branches: int

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


def bht_pressure(
    trace: TraceSource,
    num_entries: int = 512,
    associativity: int = 4,
    block_size: Optional[int] = None,
) -> BHTPressure:
    """Replay the trace's conditional PCs through a BHT cache."""
    bht = CacheBHT(num_entries, associativity)
    distinct = set()
    for pc, _taken, cls, _target, _instret, _trap in iter_source_tuples(trace, block_size):
        if cls != BranchClass.CONDITIONAL:
            continue
        distinct.add(pc)
        bht.access(pc)
    return BHTPressure(
        num_entries=num_entries,
        associativity=associativity,
        accesses=bht.stats.accesses,
        hits=bht.stats.hits,
        evictions=bht.stats.evictions,
        distinct_branches=len(distinct),
    )


def interference_report(
    trace: TraceSource,
    history_bits: int = 12,
    block_size: Optional[int] = None,
) -> str:
    """A human-readable interference summary for one trace."""
    first = first_level_interference(trace, history_bits, block_size=block_size)
    second = second_level_interference(trace, history_bits, block_size=block_size)
    pressure = bht_pressure(trace, block_size=block_size)
    lines = [
        f"Interference report: {trace.meta.name} (k={history_bits})",
        f"  first level : {first.pollution_rate * 100:6.2f}% of lookups see a "
        f"global history that differs from the branch's own",
        f"  second level: {second.sharing_rate * 100:6.2f}% of used pattern entries "
        f"shared by >1 branch; {second.destructive_rate * 100:5.2f}% of updates are "
        f"destructive cross-branch writes",
        f"  BHT 512x4   : {pressure.hit_rate * 100:6.2f}% hit rate over "
        f"{pressure.distinct_branches} static branches "
        f"({pressure.evictions} evictions)",
    ]
    return "\n".join(lines)
