"""Predictability characterization and mispredict attribution.

The paper closes by noting the authors "are examining that 3 percent
[miss rate] to try to characterize it". This module is that
characterization layer, following the metric set of "Workload
Characterization for Branch Predictability" and "Branch Prediction Is
Not a Solved Problem": per static branch and whole-trace it computes

* **taken rate and outcome entropy** — how biased each branch is,
* **history-sensitivity curves** — the conditional entropy
  H(outcome | k-bit history) for k = 0..K under both a *global* and a
  *per-branch (local)* history register, with the implied
  ideal-accuracy bound (an oracle that always picks the majority
  outcome of each (branch, history) context),
* **H2P identification** — hard-to-predict branches: high dynamic
  count, low bias, high conditional entropy even with history,
* **feature clustering** — a deterministic rule-based grouping of
  static branches (biased / local-history / global-history / mixed /
  hard) with a per-cluster winner table across the registered paper
  schemes, joining the :mod:`repro.analysis.breakdown` miss classes
  and the :mod:`repro.analysis.interference` summary into one
  attribution view.

Everything streams over any :class:`repro.trace.stream.TraceSource`
in bounded memory: the context tables hold at most
``static_sites * 2**max_k`` entries regardless of trace length, and
curves for k < K are derived by masking the low k bits of the stored
K-bit contexts (history bit 0 is the most recent outcome).

**Estimator convention (warmup skip).** A record contributes to the
k-bit context tables only when its history register is *fully
defined*: the global table skips the first ``max_k`` conditional
branches of the trace, the local table skips the first ``max_k``
occurrences of each site. This makes the closed-form pins exact — a
pure period-``p`` pattern has H(outcome | k-bit local history) = 0
for every k >= p — and makes both curves monotone non-increasing in
k. Taken rates and outcome entropy (the k = 0 site statistics) are
counted over *all* conditional records. This deliberately differs
from the paper's all-ones register initialisation (kept by
:mod:`repro.analysis.bounds` and the predictors themselves), which
would pollute the transient contexts and break the closed forms.

Two backends produce the *same integer count tables* — a pure-python
dict loop and a vectorized NumPy path (shift-or packed history keys,
``np.unique`` reduction over packed ``(site, history, outcome)``
keys, in the style of :mod:`repro.sim.kernels`) — so every derived
float, and therefore the whole :class:`CharacterizationReport`, is
bit-identical between them by construction. The report serialises
under schema :data:`CHAR_SCHEMA` with an exact ``to_dict`` /
``from_dict`` round-trip and is embedded across the obs stack
(``RunReport.extra``, the run ledger, Prometheus families, the
``repro-obs characterize`` subcommand).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.history import history_mask
from ..predictors.base import BranchPredictor
from ..trace.events import BranchClass, Trace
from ..trace.stream import TraceSource, iter_source_tuples
from .breakdown import _COLD_OCCURRENCES, _POST_FLUSH_WINDOW, MispredictionBreakdown
from .interference import bht_pressure, first_level_interference, second_level_interference

try:  # NumPy powers the vectorized estimator; pure python always works.
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

__all__ = [
    "CHAR_SCHEMA",
    "CLUSTER_NAMES",
    "DEFAULT_MAX_K",
    "DEFAULT_SCHEMES",
    "CharacterizationReport",
    "ClusterSummary",
    "ClusteringConfig",
    "H2PCriteria",
    "HistoryCurvePoint",
    "PredictabilityCounts",
    "SchemeAttribution",
    "SiteCharacterization",
    "attribute_scheme",
    "binary_entropy",
    "characterization_counts",
    "characterize",
    "format_characterization",
]

#: Schema identifier embedded in every serialised report. Bump when a
#: key changes meaning; consumers should reject unknown majors.
CHAR_SCHEMA = "repro.analysis.char/1"

#: Default maximum history depth K of the sensitivity curves. 8 bits
#: keeps the context tables at <= sites * 256 entries — bounded memory
#: even for multi-million-branch traces — while covering every loop
#: period the paper's workloads exhibit.
DEFAULT_MAX_K = 8

#: Paper schemes the attribution pass replays by default: one
#: representative per Table 3 family that builds without a training
#: trace (GSg/PSg/profile need one; pass them explicitly if desired).
DEFAULT_SCHEMES: Tuple[str, ...] = (
    "gag-12",
    "pag-12",
    "pap-12",
    "gshare-12",
    "gselect-6+6",
    "tournament",
    "btb-a2",
)

#: Cluster vocabulary, in assignment-rule order (first match wins).
CLUSTER_NAMES: Tuple[str, ...] = (
    "biased",
    "local-history",
    "global-history",
    "mixed",
    "hard",
)

_COND = int(BranchClass.CONDITIONAL)


def binary_entropy(p: float) -> float:
    """The binary entropy H(p) in bits; 0.0 at the degenerate points."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -(p * math.log2(p) + (1.0 - p) * math.log2(1.0 - p))


# ----------------------------------------------------------------------
# Count tables: the integer core both backends agree on exactly
# ----------------------------------------------------------------------


@dataclass
class PredictabilityCounts:
    """Integer context tables for one trace — the backend contract.

    Both estimator backends must produce *equal* instances; every
    float in the report is derived from these counts by shared code,
    which is what makes the backends bit-identical end to end.

    Attributes:
        max_k: history depth K of the context tables.
        conditional: total conditional records seen.
        executions: site pc -> dynamic execution count.
        taken: site pc -> taken count.
        global_counts: ``(pc, K-bit global history) -> (n0, n1)``
            outcome counts, warmup-skipped (see the module docstring).
        local_counts: ``(pc, K-bit local history) -> (n0, n1)``.
    """

    max_k: int
    conditional: int
    executions: Dict[int, int]
    taken: Dict[int, int]
    global_counts: Dict[Tuple[int, int], Tuple[int, int]]
    local_counts: Dict[Tuple[int, int], Tuple[int, int]]


def _validate_max_k(max_k: int) -> None:
    if not 1 <= max_k <= 20:
        raise ValueError(f"max_k must be in [1, 20], got {max_k}")


def _python_counts(
    source: TraceSource, max_k: int, block_size: Optional[int]
) -> PredictabilityCounts:
    """Reference estimator: one dict-driven pass over the records."""
    mask = history_mask(max_k)
    executions: Dict[int, int] = {}
    taken_counts: Dict[int, int] = {}
    global_counts: Dict[Tuple[int, int], List[int]] = {}
    local_counts: Dict[Tuple[int, int], List[int]] = {}
    local_hist: Dict[int, int] = {}
    global_hist = 0
    seen = 0
    for pc, taken, cls, _target, _instret, _trap in iter_source_tuples(
        source, block_size
    ):
        if cls != _COND:
            continue
        outcome = 1 if taken else 0
        executions[pc] = executions.get(pc, 0) + 1
        taken_counts[pc] = taken_counts.get(pc, 0) + outcome
        if seen >= max_k:
            pair = global_counts.get((pc, global_hist))
            if pair is None:
                global_counts[(pc, global_hist)] = [1 - outcome, outcome]
            else:
                pair[outcome] += 1
        global_hist = ((global_hist << 1) | outcome) & mask
        seen += 1
        count = executions[pc] - 1  # occurrences before this one
        hist = local_hist.get(pc, 0)
        if count >= max_k:
            pair = local_counts.get((pc, hist))
            if pair is None:
                local_counts[(pc, hist)] = [1 - outcome, outcome]
            else:
                pair[outcome] += 1
        local_hist[pc] = ((hist << 1) | outcome) & mask
    return PredictabilityCounts(
        max_k=max_k,
        conditional=seen,
        executions=executions,
        taken=taken_counts,
        global_counts={key: (n0, n1) for key, (n0, n1) in global_counts.items()},
        local_counts={key: (n0, n1) for key, (n0, n1) in local_counts.items()},
    )


def _compact_packed(chunks: List[Tuple[Any, Any]]) -> Tuple[Any, Any]:
    """Merge ``(keys, counts)`` chunks into one sorted unique pair."""
    keys = _np.concatenate([chunk[0] for chunk in chunks])
    counts = _np.concatenate([chunk[1] for chunk in chunks])
    if keys.size == 0:
        return keys, counts
    order = _np.argsort(keys, kind="stable")
    keys = keys[order]
    counts = counts[order]
    fresh = _np.concatenate(([True], keys[1:] != keys[:-1]))
    return keys[fresh], _np.add.reduceat(counts, _np.flatnonzero(fresh))


#: Compact the packed-key accumulator whenever it holds more than this
#: many entries; bounds the accumulator to O(sites * 2**max_k) between
#: compactions instead of O(trace length).
_COMPACT_THRESHOLD = 1 << 21


def _vectorized_counts(
    source: TraceSource, max_k: int, block_size: Optional[int]
) -> PredictabilityCounts:
    """NumPy estimator: shift-or history keys + packed-key reduction."""
    if _np is None:  # pragma: no cover - the container ships numpy
        raise RuntimeError("the vectorized backend requires NumPy")
    np = _np
    mask = history_mask(max_k)
    shift = np.uint64(max_k + 1)
    one = np.uint64(1)
    umask = np.uint64(mask)

    site_index: Dict[int, int] = {}
    exec_arr = np.zeros(0, dtype=np.int64)
    taken_arr = np.zeros(0, dtype=np.int64)
    local_regs = np.zeros(0, dtype=np.uint64)
    local_occ = np.zeros(0, dtype=np.int64)
    global_reg = 0
    seen = 0
    global_chunks: List[Tuple[Any, Any]] = []
    local_chunks: List[Tuple[Any, Any]] = []
    pending = 0

    def grow(new_size: int) -> None:
        nonlocal exec_arr, taken_arr, local_regs, local_occ
        old = exec_arr.size
        if new_size <= old:
            return
        exec_arr = np.concatenate((exec_arr, np.zeros(new_size - old, np.int64)))
        taken_arr = np.concatenate((taken_arr, np.zeros(new_size - old, np.int64)))
        local_regs = np.concatenate((local_regs, np.zeros(new_size - old, np.uint64)))
        local_occ = np.concatenate((local_occ, np.zeros(new_size - old, np.int64)))

    for block in source.iter_blocks(block_size) if block_size else source.iter_blocks():
        arrays = block.as_arrays()
        cond = arrays.cond_mask
        pcs = arrays.pc[cond]
        n = int(pcs.size)
        if n == 0:
            continue
        out = arrays.taken[cond].astype(np.uint64)

        uniq, inverse = np.unique(pcs, return_inverse=True)
        lut = np.empty(uniq.size, dtype=np.int64)
        for position, pc in enumerate(uniq.tolist()):
            sid = site_index.get(pc)
            if sid is None:
                sid = len(site_index)
                site_index[pc] = sid
            lut[position] = sid
        grow(len(site_index))
        ids = lut[inverse]

        exec_arr += np.bincount(ids, minlength=exec_arr.size)
        taken_arr += np.bincount(ids[out.astype(np.bool_)], minlength=taken_arr.size)

        # Global history keys: K carry bits + this block's outcomes,
        # shift-or'd so key bit j-1 is the outcome j branches back.
        ext_global = np.empty(n + max_k, dtype=np.uint64)
        for j in range(max_k):
            ext_global[max_k - 1 - j] = (global_reg >> j) & 1
        ext_global[max_k:] = out
        base = np.arange(max_k, max_k + n)
        global_keys = np.zeros(n, dtype=np.uint64)
        for j in range(1, max_k + 1):
            global_keys |= ext_global[base - j] << np.uint64(j - 1)
        global_valid = (seen + np.arange(n)) >= max_k
        global_reg = 0
        for j in range(max_k):
            global_reg |= int(ext_global[n + max_k - 1 - j]) << j
        seen += n

        # Local history keys: group records by site (stable sort), lay
        # each group out with its K carry bits ahead of it, shift-or.
        order = np.argsort(ids, kind="stable")
        grouped_ids = ids[order]
        grouped_out = out[order]
        boundaries = np.flatnonzero(np.diff(grouped_ids)) + 1
        starts = np.concatenate(([0], boundaries))
        sizes = np.diff(np.concatenate((starts, [n])))
        group_sites = grouped_ids[starts]
        groups = starts.size
        group_of = np.repeat(np.arange(groups), sizes)
        positions = np.arange(n) + max_k * (group_of + 1)
        ext_local = np.zeros(n + max_k * groups, dtype=np.uint64)
        ext_local[positions] = grouped_out
        offsets = starts + max_k * np.arange(groups)
        carry = local_regs[group_sites]
        for j in range(max_k):
            ext_local[offsets + (max_k - 1 - j)] = (carry >> np.uint64(j)) & one
        local_keys = np.zeros(n, dtype=np.uint64)
        for j in range(1, max_k + 1):
            local_keys |= ext_local[positions - j] << np.uint64(j - 1)
        prior = local_occ[group_sites]
        within = np.arange(n) - np.repeat(starts, sizes)
        local_valid = (np.repeat(prior, sizes) + within) >= max_k
        ends = starts + sizes
        local_regs[group_sites] = (
            (local_keys[ends - 1] << one) | grouped_out[ends - 1]
        ) & umask
        local_occ[group_sites] = prior + sizes

        packed_global = (
            (ids.astype(np.uint64) << shift) | (global_keys << one) | out
        )
        packed_local = (
            (grouped_ids.astype(np.uint64) << shift) | (local_keys << one) | grouped_out
        )
        for chunks, packed, valid in (
            (global_chunks, packed_global, global_valid),
            (local_chunks, packed_local, local_valid),
        ):
            keys, counts = np.unique(packed[valid], return_counts=True)
            chunks.append((keys, counts))
            pending += keys.size
        if pending > _COMPACT_THRESHOLD:
            global_chunks[:] = [_compact_packed(global_chunks)]
            local_chunks[:] = [_compact_packed(local_chunks)]
            pending = global_chunks[0][0].size + local_chunks[0][0].size

    pc_of_id = np.empty(max(len(site_index), 1), dtype=np.int64)
    for pc, sid in site_index.items():
        pc_of_id[sid] = pc

    def to_table(chunks: List[Tuple[Any, Any]]) -> Dict[Tuple[int, int], Tuple[int, int]]:
        if not chunks:
            return {}
        keys, counts = _compact_packed(chunks)
        if keys.size == 0:
            return {}
        # keys are sorted and unique; dropping the outcome bit yields the
        # context id (site << K | hist), so the two outcome rows of one
        # context are adjacent and scatter into (n0, n1) without a loop.
        ctx = keys >> one
        fresh = np.concatenate(([True], ctx[1:] != ctx[:-1]))
        ctx_idx = np.cumsum(fresh) - 1
        n_ctx = int(ctx_idx[-1]) + 1
        n0 = np.zeros(n_ctx, dtype=np.int64)
        n1 = np.zeros(n_ctx, dtype=np.int64)
        taken_rows = (keys & one).astype(np.bool_)
        n0[ctx_idx[~taken_rows]] = counts[~taken_rows]
        n1[ctx_idx[taken_rows]] = counts[taken_rows]
        uniq_ctx = ctx[fresh]
        sids = (uniq_ctx >> np.uint64(max_k)).astype(np.int64)
        hists = (uniq_ctx & umask).astype(np.int64)
        return dict(zip(
            zip(pc_of_id[sids].tolist(), hists.tolist()),
            zip(n0.tolist(), n1.tolist()),
        ))

    executions = {
        int(pc_of_id[sid]): int(exec_arr[sid]) for pc, sid in site_index.items()
    }
    taken_counts = {
        int(pc_of_id[sid]): int(taken_arr[sid]) for pc, sid in site_index.items()
    }
    return PredictabilityCounts(
        max_k=max_k,
        conditional=seen,
        executions=executions,
        taken=taken_counts,
        global_counts=to_table(global_chunks),
        local_counts=to_table(local_chunks),
    )


def characterization_counts(
    source: TraceSource,
    max_k: int = DEFAULT_MAX_K,
    block_size: Optional[int] = None,
    backend: str = "auto",
) -> PredictabilityCounts:
    """Stream the context count tables off a trace source.

    Args:
        source: any :class:`~repro.trace.stream.TraceSource`.
        max_k: history depth K (1..20); memory is O(sites * 2**K).
        block_size: records per block (``None`` = source default).
        backend: ``"python"``, ``"vectorized"`` or ``"auto"`` (pick
            the vectorized path when NumPy is available). Both
            backends return equal counts — pinned by the test suite.
    """
    _validate_max_k(max_k)
    if backend == "auto":
        backend = "vectorized" if _np is not None else "python"
    if backend == "python":
        return _python_counts(source, max_k, block_size)
    if backend == "vectorized":
        return _vectorized_counts(source, max_k, block_size)
    raise ValueError(f"unknown backend {backend!r}")


# ----------------------------------------------------------------------
# Derived metrics (shared float code — the bit-identical part)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HistoryCurvePoint:
    """One point of a history-sensitivity curve.

    Attributes:
        k: history depth in bits (contexts are (site, k-bit history)).
        contexts: distinct contexts observed.
        counted: records the estimate is over (the warmup-skipped
            population; constant along one curve).
        entropy_bits: H(outcome | context) in bits.
        ideal_accuracy: accuracy of the per-context majority oracle —
            the predictability bound history depth k implies.
    """

    k: int
    contexts: int
    counted: int
    entropy_bits: float
    ideal_accuracy: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "k": self.k,
            "contexts": self.contexts,
            "counted": self.counted,
            "entropy_bits": self.entropy_bits,
            "ideal_accuracy": self.ideal_accuracy,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "HistoryCurvePoint":
        return cls(
            k=int(payload["k"]),
            contexts=int(payload["contexts"]),
            counted=int(payload["counted"]),
            entropy_bits=float(payload["entropy_bits"]),
            ideal_accuracy=float(payload["ideal_accuracy"]),
        )


def _marginalize(
    counts: Mapping[Tuple[int, int], Tuple[int, int]], k: int
) -> Dict[Tuple[int, int], Tuple[int, int]]:
    """Reduce K-bit context counts to k-bit ones (mask low k bits)."""
    mask = history_mask(k) if k else 0
    merged: Dict[Tuple[int, int], List[int]] = {}
    for (pc, hist), (n0, n1) in counts.items():
        key = (pc, hist & mask)
        pair = merged.get(key)
        if pair is None:
            merged[key] = [n0, n1]
        else:
            pair[0] += n0
            pair[1] += n1
    return {key: (n0, n1) for key, (n0, n1) in merged.items()}


def _entropy_and_bound(
    counts: Mapping[Tuple[int, int], Tuple[int, int]],
) -> Tuple[int, int, float, float]:
    """``(contexts, counted, entropy_bits, ideal_accuracy)`` of a table.

    Iterates contexts in sorted order so the float accumulation order
    — and therefore the result — is identical for any two equal
    tables, whichever backend built them.
    """
    total = 0
    majority = 0
    entropy = 0.0
    contexts = 0
    for key in sorted(counts):
        n0, n1 = counts[key]
        weight = n0 + n1
        if weight == 0:
            continue
        contexts += 1
        total += weight
        majority += max(n0, n1)
        entropy += weight * binary_entropy(n1 / weight)
    if total == 0:
        return 0, 0, 0.0, 0.0
    return contexts, total, entropy / total, majority / total


def _history_curve(
    counts: Mapping[Tuple[int, int], Tuple[int, int]], max_k: int
) -> List[HistoryCurvePoint]:
    curve = []
    for k in range(max_k + 1):
        table = counts if k == max_k else _marginalize(counts, k)
        contexts, counted, entropy, ideal = _entropy_and_bound(table)
        curve.append(
            HistoryCurvePoint(
                k=k,
                contexts=contexts,
                counted=counted,
                entropy_bits=entropy,
                ideal_accuracy=ideal,
            )
        )
    return curve


def _per_site_tables(
    counts: Mapping[Tuple[int, int], Tuple[int, int]],
) -> Dict[int, Dict[Tuple[int, int], Tuple[int, int]]]:
    by_site: Dict[int, Dict[Tuple[int, int], Tuple[int, int]]] = {}
    for (pc, hist), pair in counts.items():
        by_site.setdefault(pc, {})[(pc, hist)] = pair
    return by_site


# ----------------------------------------------------------------------
# H2P criteria and clustering
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class H2PCriteria:
    """Hard-to-predict branch criteria (BPINASP-style).

    A site is H2P when it executes often (absolute count *and* dynamic
    share), is not strongly biased, and stays high-entropy even given
    ``max_k`` bits of the better of local/global history — i.e. deeper
    pattern history alone will not fix it.
    """

    min_executions: int = 64
    min_dynamic_share: float = 0.0005
    min_outcome_entropy_bits: float = 0.25
    min_conditional_entropy_bits: float = 0.30

    def to_dict(self) -> Dict[str, Any]:
        return {
            "min_executions": self.min_executions,
            "min_dynamic_share": self.min_dynamic_share,
            "min_outcome_entropy_bits": self.min_outcome_entropy_bits,
            "min_conditional_entropy_bits": self.min_conditional_entropy_bits,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "H2PCriteria":
        return cls(
            min_executions=int(payload["min_executions"]),
            min_dynamic_share=float(payload["min_dynamic_share"]),
            min_outcome_entropy_bits=float(payload["min_outcome_entropy_bits"]),
            min_conditional_entropy_bits=float(payload["min_conditional_entropy_bits"]),
        )


@dataclass(frozen=True)
class ClusteringConfig:
    """Thresholds of the deterministic feature clustering.

    Rules are applied in :data:`CLUSTER_NAMES` order, first match
    wins — no RNG, no iteration-order dependence (the determinism
    lint audits this module):

    * ``biased`` — outcome entropy <= ``biased_entropy_bits``,
    * ``local-history`` — residual entropy under K-bit *local*
      history <= ``predictable_entropy_bits``,
    * ``global-history`` — same under *global* history,
    * ``mixed`` — the better history register removes at least
      ``mixed_entropy_fraction`` of the outcome entropy,
    * ``hard`` — everything else.
    """

    biased_entropy_bits: float = 0.35
    predictable_entropy_bits: float = 0.15
    mixed_entropy_fraction: float = 0.5

    def to_dict(self) -> Dict[str, Any]:
        return {
            "biased_entropy_bits": self.biased_entropy_bits,
            "predictable_entropy_bits": self.predictable_entropy_bits,
            "mixed_entropy_fraction": self.mixed_entropy_fraction,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ClusteringConfig":
        return cls(
            biased_entropy_bits=float(payload["biased_entropy_bits"]),
            predictable_entropy_bits=float(payload["predictable_entropy_bits"]),
            mixed_entropy_fraction=float(payload["mixed_entropy_fraction"]),
        )

    def assign(
        self, outcome_entropy: float, local_entropy: float, global_entropy: float
    ) -> str:
        """Cluster one site from its three entropy features."""
        if outcome_entropy <= self.biased_entropy_bits:
            return "biased"
        if local_entropy <= self.predictable_entropy_bits:
            return "local-history"
        if global_entropy <= self.predictable_entropy_bits:
            return "global-history"
        best = min(local_entropy, global_entropy)
        removed = outcome_entropy - best
        if outcome_entropy > 0 and removed / outcome_entropy >= self.mixed_entropy_fraction:
            return "mixed"
        return "hard"


@dataclass(frozen=True)
class SiteCharacterization:
    """Per-static-branch feature row of the report.

    ``local_entropy_bits`` / ``global_entropy_bits`` are the residual
    conditional entropies at K bits of history; for a site whose
    execution count never clears the warmup skip they fall back to the
    site's outcome entropy (history behaviour unknown), flagged by
    ``history_counted == 0``.
    """

    pc: int
    executions: int
    taken_rate: float
    outcome_entropy_bits: float
    local_entropy_bits: float
    global_entropy_bits: float
    local_ideal_accuracy: float
    global_ideal_accuracy: float
    history_counted: int
    cluster: str
    h2p: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pc": self.pc,
            "executions": self.executions,
            "taken_rate": self.taken_rate,
            "outcome_entropy_bits": self.outcome_entropy_bits,
            "local_entropy_bits": self.local_entropy_bits,
            "global_entropy_bits": self.global_entropy_bits,
            "local_ideal_accuracy": self.local_ideal_accuracy,
            "global_ideal_accuracy": self.global_ideal_accuracy,
            "history_counted": self.history_counted,
            "cluster": self.cluster,
            "h2p": self.h2p,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SiteCharacterization":
        return cls(
            pc=int(payload["pc"]),
            executions=int(payload["executions"]),
            taken_rate=float(payload["taken_rate"]),
            outcome_entropy_bits=float(payload["outcome_entropy_bits"]),
            local_entropy_bits=float(payload["local_entropy_bits"]),
            global_entropy_bits=float(payload["global_entropy_bits"]),
            local_ideal_accuracy=float(payload["local_ideal_accuracy"]),
            global_ideal_accuracy=float(payload["global_ideal_accuracy"]),
            history_counted=int(payload["history_counted"]),
            cluster=str(payload["cluster"]),
            h2p=bool(payload["h2p"]),
        )


# ----------------------------------------------------------------------
# Scheme attribution: replay registered predictors, join the breakdown
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SchemeAttribution:
    """One scheme's replay over the trace, with per-site hit counts."""

    scheme: str
    executions: int
    correct: int
    breakdown: MispredictionBreakdown
    site_correct: Dict[int, int] = field(hash=False, default_factory=dict)
    site_executions: Dict[int, int] = field(hash=False, default_factory=dict)

    @property
    def accuracy(self) -> float:
        if self.executions == 0:
            return 0.0
        return self.correct / self.executions


def attribute_scheme(
    predictor: BranchPredictor,
    source: TraceSource,
    context_switches: Optional[Any] = None,
    block_size: Optional[int] = None,
    scheme: str = "",
) -> SchemeAttribution:
    """Replay one predictor, collecting per-site hits and miss classes.

    A single streaming pass combining
    :func:`repro.analysis.breakdown.misprediction_breakdown` (same
    cold / post-flush / steady classification and context-switch
    cadence) with per-site correct counts, so the per-cluster winner
    table costs one replay per scheme.
    """
    occurrences: Dict[int, int] = {}
    since_flush: Dict[int, int] = {}
    site_correct: Dict[int, int] = {}
    total = 0
    misses = 0
    cold = 0
    post_flush = 0
    cs_enabled = context_switches is not None
    interval = context_switches.interval if cs_enabled else 0
    switch_on_traps = context_switches.switch_on_traps if cs_enabled else False
    next_switch = interval
    for pc, taken, cls, target, instret, trap in iter_source_tuples(
        source, block_size
    ):
        if cs_enabled and ((trap and switch_on_traps) or instret >= next_switch):
            predictor.on_context_switch()
            if instret >= next_switch:
                next_switch += interval * ((instret - next_switch) // interval + 1)
            since_flush = {}
        if cls != _COND:
            continue
        prediction = predictor.predict(pc, target)
        predictor.update(pc, taken, target)
        total += 1
        count = occurrences.get(pc, 0)
        occurrences[pc] = count + 1
        flush_count = since_flush.get(pc, 0)
        since_flush[pc] = flush_count + 1
        if prediction == taken:
            site_correct[pc] = site_correct.get(pc, 0) + 1
            continue
        misses += 1
        if count < _COLD_OCCURRENCES:
            cold += 1
        elif cs_enabled and flush_count < _POST_FLUSH_WINDOW:
            post_flush += 1
    return SchemeAttribution(
        scheme=scheme or type(predictor).__name__,
        executions=total,
        correct=total - misses,
        breakdown=MispredictionBreakdown(
            total_branches=total,
            total_misses=misses,
            cold_misses=cold,
            post_flush_misses=post_flush,
            steady_misses=misses - cold - post_flush,
        ),
        site_correct=site_correct,
        site_executions=dict(occurrences),
    )


@dataclass(frozen=True)
class ClusterSummary:
    """One cluster row of the winner table."""

    name: str
    sites: int
    executions: int
    dynamic_share: float
    winner: Optional[str]
    accuracy: Dict[str, Optional[float]] = field(hash=False, default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "sites": self.sites,
            "executions": self.executions,
            "dynamic_share": self.dynamic_share,
            "winner": self.winner,
            "accuracy": {name: self.accuracy[name] for name in sorted(self.accuracy)},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ClusterSummary":
        return cls(
            name=str(payload["name"]),
            sites=int(payload["sites"]),
            executions=int(payload["executions"]),
            dynamic_share=float(payload["dynamic_share"]),
            winner=payload.get("winner"),
            accuracy={
                str(name): (None if value is None else float(value))
                for name, value in payload.get("accuracy", {}).items()
            },
        )


# ----------------------------------------------------------------------
# The report
# ----------------------------------------------------------------------


@dataclass
class CharacterizationReport:
    """Everything the characterization engine derives from one trace.

    Schema-stable: :meth:`to_dict` always emits every top-level key
    under :data:`CHAR_SCHEMA` and :meth:`from_dict` round-trips it
    exactly (including through JSON), which is what lets the report
    ride inside ``RunReport.extra``, ledger entries and the result
    cache unchanged.
    """

    workload: str
    dataset: str = ""
    backend: str = "python"
    max_k: int = DEFAULT_MAX_K
    block_size: Optional[int] = None
    conditional_branches: int = 0
    static_sites: int = 0
    taken_rate: float = 0.0
    outcome_entropy_bits: float = 0.0
    global_curve: List[HistoryCurvePoint] = field(default_factory=list)
    local_curve: List[HistoryCurvePoint] = field(default_factory=list)
    h2p_criteria: H2PCriteria = field(default_factory=H2PCriteria)
    h2p_sites: int = 0
    h2p_dynamic_share: float = 0.0
    clustering: ClusteringConfig = field(default_factory=ClusteringConfig)
    sites: List[SiteCharacterization] = field(default_factory=list)
    clusters: List[ClusterSummary] = field(default_factory=list)
    schemes: List[Dict[str, Any]] = field(default_factory=list)
    interference: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible dict; every top-level key always present."""
        return {
            "schema": CHAR_SCHEMA,
            "workload": self.workload,
            "dataset": self.dataset,
            "backend": self.backend,
            "max_k": self.max_k,
            "block_size": self.block_size,
            "conditional_branches": self.conditional_branches,
            "static_sites": self.static_sites,
            "taken_rate": self.taken_rate,
            "outcome_entropy_bits": self.outcome_entropy_bits,
            "global_curve": [point.to_dict() for point in self.global_curve],
            "local_curve": [point.to_dict() for point in self.local_curve],
            "h2p": {
                "criteria": self.h2p_criteria.to_dict(),
                "sites": self.h2p_sites,
                "dynamic_share": self.h2p_dynamic_share,
            },
            "clustering": self.clustering.to_dict(),
            "sites": [site.to_dict() for site in self.sites],
            "clusters": [cluster.to_dict() for cluster in self.clusters],
            "schemes": [dict(entry) for entry in self.schemes],
            "interference": dict(self.interference),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CharacterizationReport":
        """Reconstruct a report serialised by :meth:`to_dict`."""
        schema = str(payload.get("schema", CHAR_SCHEMA))
        if not schema.startswith("repro.analysis.char/"):
            raise ValueError(f"not a CharacterizationReport payload (schema={schema!r})")
        h2p = payload.get("h2p", {})
        return cls(
            workload=payload["workload"],
            dataset=payload.get("dataset", ""),
            backend=payload.get("backend", "python"),
            max_k=int(payload.get("max_k", DEFAULT_MAX_K)),
            block_size=payload.get("block_size"),
            conditional_branches=int(payload.get("conditional_branches", 0)),
            static_sites=int(payload.get("static_sites", 0)),
            taken_rate=float(payload.get("taken_rate", 0.0)),
            outcome_entropy_bits=float(payload.get("outcome_entropy_bits", 0.0)),
            global_curve=[
                HistoryCurvePoint.from_dict(point)
                for point in payload.get("global_curve", [])
            ],
            local_curve=[
                HistoryCurvePoint.from_dict(point)
                for point in payload.get("local_curve", [])
            ],
            h2p_criteria=(
                H2PCriteria.from_dict(h2p["criteria"])
                if "criteria" in h2p
                else H2PCriteria()
            ),
            h2p_sites=int(h2p.get("sites", 0)),
            h2p_dynamic_share=float(h2p.get("dynamic_share", 0.0)),
            clustering=(
                ClusteringConfig.from_dict(payload["clustering"])
                if "clustering" in payload
                else ClusteringConfig()
            ),
            sites=[
                SiteCharacterization.from_dict(site)
                for site in payload.get("sites", [])
            ],
            clusters=[
                ClusterSummary.from_dict(cluster)
                for cluster in payload.get("clusters", [])
            ],
            schemes=[dict(entry) for entry in payload.get("schemes", [])],
            interference=dict(payload.get("interference", {})),
        )


def _site_features(
    counts: PredictabilityCounts,
    h2p: H2PCriteria,
    clustering: ClusteringConfig,
) -> List[SiteCharacterization]:
    """Characterize every site, sorted by executions desc then pc."""
    local_by_site = _per_site_tables(counts.local_counts)
    global_by_site = _per_site_tables(counts.global_counts)
    rows: List[SiteCharacterization] = []
    total = counts.conditional
    for pc in sorted(counts.executions):
        executions = counts.executions[pc]
        taken_rate = counts.taken[pc] / executions if executions else 0.0
        outcome_entropy = binary_entropy(taken_rate)
        bias_accuracy = max(taken_rate, 1.0 - taken_rate) if executions else 0.0
        _, local_counted, local_entropy, local_ideal = _entropy_and_bound(
            local_by_site.get(pc, {})
        )
        _, global_counted, global_entropy, global_ideal = _entropy_and_bound(
            global_by_site.get(pc, {})
        )
        history_counted = local_counted
        if local_counted == 0:
            # Site never cleared the warmup skip: history behaviour is
            # unknown, fall back to the bias-only view.
            local_entropy, local_ideal = outcome_entropy, bias_accuracy
        if global_counted == 0:
            global_entropy, global_ideal = outcome_entropy, bias_accuracy
        cluster = clustering.assign(outcome_entropy, local_entropy, global_entropy)
        share = executions / total if total else 0.0
        is_h2p = (
            executions >= h2p.min_executions
            and share >= h2p.min_dynamic_share
            and outcome_entropy >= h2p.min_outcome_entropy_bits
            and min(local_entropy, global_entropy) >= h2p.min_conditional_entropy_bits
        )
        rows.append(
            SiteCharacterization(
                pc=pc,
                executions=executions,
                taken_rate=taken_rate,
                outcome_entropy_bits=outcome_entropy,
                local_entropy_bits=local_entropy,
                global_entropy_bits=global_entropy,
                local_ideal_accuracy=local_ideal,
                global_ideal_accuracy=global_ideal,
                history_counted=history_counted,
                cluster=cluster,
                h2p=is_h2p,
            )
        )
    rows.sort(key=lambda row: (-row.executions, row.pc))
    return rows


def _cluster_table(
    rows: Sequence[SiteCharacterization],
    attributions: Sequence[SchemeAttribution],
    total: int,
) -> List[ClusterSummary]:
    members: Dict[str, List[SiteCharacterization]] = {
        name: [] for name in CLUSTER_NAMES
    }
    for row in rows:
        members[row.cluster].append(row)
    clusters: List[ClusterSummary] = []
    for name in CLUSTER_NAMES:
        sites = members[name]
        executions = sum(row.executions for row in sites)
        pcs = [row.pc for row in sites]
        accuracy: Dict[str, Optional[float]] = {}
        for attribution in attributions:
            execs = sum(attribution.site_executions.get(pc, 0) for pc in pcs)
            correct = sum(attribution.site_correct.get(pc, 0) for pc in pcs)
            accuracy[attribution.scheme] = correct / execs if execs else None
        winner: Optional[str] = None
        best = -1.0
        # Deterministic tie-break: the replay order of the scheme list.
        for attribution in attributions:
            value = accuracy.get(attribution.scheme)
            if value is not None and value > best:
                best = value
                winner = attribution.scheme
        clusters.append(
            ClusterSummary(
                name=name,
                sites=len(sites),
                executions=executions,
                dynamic_share=executions / total if total else 0.0,
                winner=winner,
                accuracy=accuracy,
            )
        )
    return clusters


def characterize(
    source: TraceSource,
    max_k: int = DEFAULT_MAX_K,
    block_size: Optional[int] = None,
    backend: str = "auto",
    schemes: Optional[Sequence[str]] = None,
    training_trace: Optional[Trace] = None,
    context_switches: Optional[Any] = None,
    top: int = 20,
    h2p: Optional[H2PCriteria] = None,
    clustering: Optional[ClusteringConfig] = None,
    include_interference: bool = True,
) -> CharacterizationReport:
    """Characterize a trace end to end; the module's main entry point.

    Args:
        source: any :class:`~repro.trace.stream.TraceSource`.
        max_k: history-sensitivity curve depth K.
        block_size: streaming block size (``None`` = source default).
        backend: count-table backend (see
            :func:`characterization_counts`).
        schemes: friendly scheme names to replay for the winner table
            (default :data:`DEFAULT_SCHEMES`); pass ``()`` to skip the
            attribution pass entirely.
        training_trace: training trace for profile-dependent schemes
            (GSg / PSg / profile), when they appear in ``schemes``.
        context_switches: optional
            :class:`~repro.sim.engine.ContextSwitchConfig` applied to
            the attribution replays.
        top: per-site rows to keep in the report (by executions).
        h2p: H2P criteria override.
        clustering: clustering threshold override.
        include_interference: also run the
            :mod:`repro.analysis.interference` passes and embed their
            summary.
    """
    from ..predictors.registry import make_predictor

    h2p = h2p or H2PCriteria()
    clustering = clustering or ClusteringConfig()
    counts = characterization_counts(source, max_k, block_size, backend)
    resolved_backend = backend
    if backend == "auto":
        resolved_backend = "vectorized" if _np is not None else "python"

    total = counts.conditional
    taken_total = sum(counts.taken[pc] for pc in sorted(counts.taken))
    taken_rate = taken_total / total if total else 0.0
    rows = _site_features(counts, h2p, clustering)
    # Whole-trace outcome entropy: execution-weighted per-site entropy
    # (the k=0 local point computed over the *full*, un-skipped
    # population — the honest "how biased are the branches" number).
    outcome_entropy = 0.0
    for row in sorted(rows, key=lambda item: item.pc):
        outcome_entropy += row.executions * row.outcome_entropy_bits
    outcome_entropy = outcome_entropy / total if total else 0.0

    scheme_names = DEFAULT_SCHEMES if schemes is None else tuple(schemes)
    attributions: List[SchemeAttribution] = []
    for name in scheme_names:
        predictor = make_predictor(name, training_trace)
        attributions.append(
            attribute_scheme(
                predictor,
                source,
                context_switches=context_switches,
                block_size=block_size,
                scheme=name,
            )
        )

    h2p_rows = [row for row in rows if row.h2p]
    h2p_executions = sum(row.executions for row in h2p_rows)
    clusters = _cluster_table(rows, attributions, total)
    scheme_entries = [
        {
            "scheme": attribution.scheme,
            "accuracy": attribution.accuracy,
            "executions": attribution.executions,
            "correct": attribution.correct,
            "breakdown": {
                "total_misses": attribution.breakdown.total_misses,
                "cold": attribution.breakdown.cold_misses,
                "post_flush": attribution.breakdown.post_flush_misses,
                "steady": attribution.breakdown.steady_misses,
            },
        }
        for attribution in attributions
    ]

    interference: Dict[str, Any] = {}
    if include_interference:
        first = first_level_interference(source, max_k, block_size=block_size)
        second = second_level_interference(source, max_k, block_size=block_size)
        pressure = bht_pressure(source, block_size=block_size)
        interference = {
            "history_bits": max_k,
            "first_level_pollution_rate": first.pollution_rate,
            "second_level_sharing_rate": second.sharing_rate,
            "second_level_destructive_rate": second.destructive_rate,
            "bht_hit_rate": pressure.hit_rate,
            "bht_evictions": pressure.evictions,
        }

    meta = source.meta
    return CharacterizationReport(
        workload=meta.name,
        dataset=meta.dataset,
        backend=resolved_backend,
        max_k=max_k,
        block_size=block_size,
        conditional_branches=total,
        static_sites=len(counts.executions),
        taken_rate=taken_rate,
        outcome_entropy_bits=outcome_entropy,
        global_curve=_history_curve(counts.global_counts, max_k),
        local_curve=_history_curve(counts.local_counts, max_k),
        h2p_criteria=h2p,
        h2p_sites=len(h2p_rows),
        h2p_dynamic_share=h2p_executions / total if total else 0.0,
        clustering=clustering,
        sites=rows[: max(top, 0)],
        clusters=clusters,
        schemes=scheme_entries,
        interference=interference,
    )


def format_characterization(report: CharacterizationReport, top: int = 10) -> str:
    """Perf-style text rendering of a :class:`CharacterizationReport`."""
    lines: List[str] = []
    lines.append(
        f"# repro.analysis.char — {report.workload}"
        + (f" ({report.dataset})" if report.dataset else "")
        + f"  [K={report.max_k}, backend={report.backend}]"
    )
    lines.append(
        f"conditional branches: {report.conditional_branches:10d} over "
        f"{report.static_sites} static sites"
    )
    lines.append(
        f"taken rate          : {report.taken_rate * 100:8.3f}%   "
        f"outcome entropy {report.outcome_entropy_bits:.4f} bits"
    )
    if report.global_curve:
        lines.append("")
        lines.append("history sensitivity H(outcome | k-bit history), ideal accuracy:")
        lines.append("   k    global-H  global-ideal     local-H   local-ideal")
        for g_point, l_point in zip(report.global_curve, report.local_curve):
            lines.append(
                f"  {g_point.k:2d}    {g_point.entropy_bits:8.4f}      "
                f"{g_point.ideal_accuracy * 100:7.3f}%    {l_point.entropy_bits:8.4f}"
                f"      {l_point.ideal_accuracy * 100:7.3f}%"
            )
    lines.append("")
    lines.append(
        f"H2P branches        : {report.h2p_sites} sites, "
        f"{report.h2p_dynamic_share * 100:.2f}% of dynamic branches"
    )
    if report.sites:
        lines.append("")
        lines.append(f"top {min(top, len(report.sites))} sites by dynamic count:")
        lines.append(
            "          pc     execs  taken%     H0   H|loc   H|glo"
            "  cluster         h2p"
        )
        for site in report.sites[:top]:
            lines.append(
                f"  {site.pc:#010x}  {site.executions:8d}  {site.taken_rate * 100:5.1f}%"
                f"  {site.outcome_entropy_bits:5.3f}  {site.local_entropy_bits:6.3f}"
                f"  {site.global_entropy_bits:6.3f}  {site.cluster:14s}"
                f"  {'yes' if site.h2p else '-'}"
            )
    populated = [cluster for cluster in report.clusters if cluster.sites]
    if populated:
        lines.append("")
        lines.append("cluster winner table:")
        lines.append("  cluster          sites     execs   share   winner         accuracy")
        for cluster in populated:
            value = cluster.accuracy.get(cluster.winner) if cluster.winner else None
            accuracy_text = f"{value * 100:7.3f}%" if value is not None else "      —"
            lines.append(
                f"  {cluster.name:14s}  {cluster.sites:6d}  {cluster.executions:8d}"
                f"  {cluster.dynamic_share * 100:5.1f}%   {cluster.winner or '—':12s}"
                f"  {accuracy_text}"
            )
    if report.schemes:
        lines.append("")
        lines.append("scheme attribution (misses: cold / post-flush / steady):")
        lines.append("  scheme          accuracy      misses      cold  post-fl    steady")
        for entry in report.schemes:
            breakdown = entry.get("breakdown", {})
            lines.append(
                f"  {entry['scheme']:14s}  {entry['accuracy'] * 100:7.3f}%"
                f"  {breakdown.get('total_misses', 0):10d}"
                f"  {breakdown.get('cold', 0):8d}  {breakdown.get('post_flush', 0):7d}"
                f"  {breakdown.get('steady', 0):8d}"
            )
    if report.interference:
        inter = report.interference
        lines.append("")
        lines.append(
            f"interference (k={inter.get('history_bits', report.max_k)}): "
            f"{inter.get('first_level_pollution_rate', 0.0) * 100:.2f}% first-level pollution, "
            f"{inter.get('second_level_sharing_rate', 0.0) * 100:.2f}% pattern-entry sharing, "
            f"{inter.get('bht_hit_rate', 0.0) * 100:.2f}% BHT hit rate"
        )
    return "\n".join(lines)
