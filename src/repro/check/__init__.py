"""``repro.check`` — static analysis and invariant verification.

A standing correctness gate for the predictor/simulator stack. Nine
analyzers, each verifying an invariant the paper's numbers (and the
parallel/cached execution machinery) silently depend on:

=============  ========================================================
``automata``   Exhaustive model check of every registered prediction
               automaton: totality, determinism, reachability,
               convergence, and the paper's Figure-2 semantics for
               LT/A1–A4 (:mod:`repro.check.automata`).
``kernels``    Exhaustive equivalence proof of the vectorized kernel
               encodings — packed transition codes, decode tables, the
               256×256 composition LUT, closure and associativity of
               the composition monoid, and the run-scoring gather —
               against the interpreted automaton semantics
               (:mod:`repro.check.kernels`).
``purity``     AST proof that ``predict()`` never mutates predictor
               state and that no predictor method reads clocks or RNGs
               (:mod:`repro.check.purity`).
``determinism``  AST lint of the simulation hot paths for RNG,
               wall-clock, environment and set-iteration-order hazards
               (:mod:`repro.check.determinism`).
``pickling``   Dynamic round-trip of every registered scheme through
               ``pickle`` with behavioural-equivalence scoring on a
               probe trace (:mod:`repro.check.pickling`).
``concurrency``  AST lint of the fork/pickle boundary in the parallel
               runner and observability layers: lambdas or bound
               methods shipped to workers, writes to parent globals
               from worker functions, handles crossing fork
               (:mod:`repro.check.concurrency`).
``resources``  AST lint of resource discipline in the trace-I/O and
               ledger layers: unmanaged handles, non-atomic durable
               writes, renames or appends without fsync
               (:mod:`repro.check.resources`).
``registry``   ``__all__``/export consistency, Table 3 and friendly-
               name constructibility, and cost-model coverage
               (:mod:`repro.check.registry`).
``docs``       README/docs accuracy: relative links resolve to real
               files and every dotted ``repro.*`` reference resolves
               to a live module or attribute (:mod:`repro.check.docs`).
=============  ========================================================

Run it as ``python -m repro.check`` (or ``make check``); add
``--sarif`` for a SARIF 2.1.0 log consumable by code-scanning UIs. See
``docs/static-analysis.md`` for the full invariant catalogue and how
to extend it. Programmatic entry point::

    from repro.check import run_checks

    report = run_checks()
    assert report.ok, report.format_text()
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .automata import check_automata, verify_spec, verify_table
from .concurrency import check_concurrency
from .determinism import check_determinism, scan_source
from .docs import check_docs
from .kernels import check_kernels, verify_ops
from .pickling import check_pickling, probe_trace
from .purity import analyze_source, check_purity
from .registry import check_registry
from .report import ERROR, WARNING, CheckReport, Finding
from .resources import check_resources

__all__ = [
    "ANALYZERS",
    "CheckReport",
    "ERROR",
    "Finding",
    "WARNING",
    "analyze_source",
    "check_automata",
    "check_concurrency",
    "check_determinism",
    "check_docs",
    "check_kernels",
    "check_pickling",
    "check_purity",
    "check_registry",
    "check_resources",
    "probe_trace",
    "run_checks",
    "scan_source",
    "verify_ops",
    "verify_spec",
    "verify_table",
]

#: name -> zero-argument callable returning (findings, examined count),
#: in the order the report presents them. Registering a new analyzer
#: here is all it takes to add it to the CLI, Makefile and CI gates.
ANALYZERS: Dict[str, Callable[[], Tuple[List[Finding], int]]] = {
    "automata": check_automata,
    "kernels": check_kernels,
    "purity": check_purity,
    "determinism": check_determinism,
    "pickling": check_pickling,
    "concurrency": check_concurrency,
    "resources": check_resources,
    "registry": check_registry,
    "docs": check_docs,
}


def run_checks(only: Optional[Iterable[str]] = None) -> CheckReport:
    """Run the selected analyzers (default: all) and aggregate a report.

    Args:
        only: analyzer names to run; unknown names raise ``KeyError``
            so typos cannot silently skip a gate.
    """
    selected = list(ANALYZERS if only is None else only)
    report = CheckReport()
    for name in selected:
        analyzer = ANALYZERS[name]  # KeyError on unknown names, by design
        findings, examined = analyzer()
        report.extend(name, findings, examined)
    return report
