"""Entry point for ``python -m repro.check``."""

import sys

from .cli import main

sys.exit(main())
