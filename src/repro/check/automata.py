"""Model checker for the pattern-history automata (paper Figure 2).

Every table entry of a pattern history table is a tiny Moore machine;
the paper's accuracy claims rest on those machines having exactly the
documented semantics. This analyzer exhaustively verifies each
registered automaton — the state space is at most ``2^bits`` states x 2
outcomes, so "model checking" here is a complete enumeration, not an
approximation.

Structural invariants (any automaton):

* **totality** — every (state, outcome) pair has a transition.
* **determinism** — exactly one successor per (state, outcome), and it
  is a valid state index.
* **prediction totality** — every state has a boolean prediction.
* **capacity** — the state count fits in the declared storage bits.
* **reachability** — every state is reachable from the initial state
  (frozen preset-bit automata, whose states are deliberately isolated
  self-loops, are exempt).
* **responsiveness** — a non-frozen automaton can express both
  predictions, and from any state, feeding one outcome ``num_states``
  times converges the prediction to that outcome.

Semantic invariants (the paper's five, keyed by name):

* **LT** — predicts exactly the previous outcome.
* **A1** — a 2-bit shift register of the last two outcomes; predicts
  not-taken only when neither was taken.
* **A2** — the saturating up/down counter, predict taken at count >= 2.
* **A3** — A2 with the fast fall (not-taken in state 2 drops to 0).
* **A4** — A2 with the fast rise (taken in state 1 jumps to 3).
* all five initialise to a taken-predicting state (the study's
  taken-bias), and the two-bit counters keep their saturation
  hysteresis (one disagreeing outcome at saturation never flips the
  prediction).

The verifier works on raw transition/prediction tables (duck-typed), so
it independently re-checks what ``AutomatonSpec.__post_init__``
enforces — a table smuggled past construction-time validation is still
caught here.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.automata import (
    PAPER_AUTOMATA,
    PRESET_NOT_TAKEN,
    PRESET_TAKEN,
    AutomatonSpec,
    saturating_counter,
    shift_register_automaton,
)
from .report import ERROR, Finding

_ANALYZER = "automata"


def _finding(rule: str, location: str, message: str, severity: str = ERROR) -> Finding:
    return Finding(_ANALYZER, f"automata/{rule}", severity, location, message)


def verify_table(
    name: str,
    transitions: Sequence[Sequence[int]],
    predictions: Sequence[object],
    initial_state: int,
    bits: int,
) -> List[Finding]:
    """Exhaustively check one raw automaton table.

    Returns findings; an empty list means the table satisfies every
    structural invariant.
    """
    findings: List[Finding] = []
    num_states = len(transitions)
    if num_states == 0:
        return [_finding("empty", name, "automaton has no states")]
    if num_states > (1 << bits):
        findings.append(_finding(
            "capacity", name,
            f"{num_states} states do not fit in the declared {bits} storage bit(s)",
        ))
    if len(predictions) != num_states:
        findings.append(_finding(
            "prediction-totality", name,
            f"{len(predictions)} predictions for {num_states} states — "
            "lambda(S) is not defined on every state",
        ))
    for state, prediction in enumerate(predictions):
        if not isinstance(prediction, bool):
            findings.append(_finding(
                "prediction-type", name,
                f"prediction for state {state} is {prediction!r}, not a bool",
            ))
    # Totality + determinism of delta(S, R): each row must supply
    # exactly one valid successor for outcome 0 and for outcome 1.
    for state, row in enumerate(transitions):
        try:
            row_len = len(row)
        except TypeError:
            findings.append(_finding(
                "totality", name,
                f"state {state} has no transition row (got {row!r})",
            ))
            continue
        if row_len != 2:
            findings.append(_finding(
                "totality", name,
                f"state {state} defines {row_len} transitions; need exactly "
                "one per outcome (not-taken, taken)",
            ))
            continue
        for outcome, nxt in enumerate(row):
            if not isinstance(nxt, int) or isinstance(nxt, bool):
                findings.append(_finding(
                    "determinism", name,
                    f"delta({state}, {outcome}) = {nxt!r} is not a state index",
                ))
            elif not 0 <= nxt < num_states:
                findings.append(_finding(
                    "determinism", name,
                    f"delta({state}, {outcome}) = {nxt} is outside "
                    f"[0, {num_states})",
                ))
    if findings:
        # Structural damage: the behavioural walks below would crash or
        # produce noise, and these findings already fail the check.
        return findings

    if not 0 <= initial_state < num_states:
        return findings + [_finding(
            "initial-state", name,
            f"initial state {initial_state} is outside [0, {num_states})",
        )]

    frozen = all(tuple(row) == (s, s) for s, row in enumerate(transitions))

    # Reachability: breadth-first walk from the initial state.
    reachable = {initial_state}
    frontier = [initial_state]
    while frontier:
        state = frontier.pop()
        for nxt in transitions[state]:
            if nxt not in reachable:
                reachable.add(nxt)
                frontier.append(nxt)
    unreachable = sorted(set(range(num_states)) - reachable)
    if unreachable and not frozen:
        findings.append(_finding(
            "reachability", name,
            f"state(s) {unreachable} are unreachable from initial state "
            f"{initial_state}",
        ))

    if not frozen:
        seen_predictions = {bool(predictions[s]) for s in reachable}
        if len(seen_predictions) < 2:
            only = "taken" if True in seen_predictions else "not taken"
            findings.append(_finding(
                "responsiveness", name,
                f"every reachable state predicts {only}; the automaton can "
                "never adapt to the other direction",
            ))
        # Convergence: a constant outcome stream must win eventually.
        for outcome in (False, True):
            column = 1 if outcome else 0
            for start in reachable:
                state = start
                for _ in range(num_states):
                    state = transitions[state][column]
                if bool(predictions[state]) != outcome:
                    findings.append(_finding(
                        "convergence", name,
                        f"after {num_states} consecutive "
                        f"{'taken' if outcome else 'not-taken'} outcomes from "
                        f"state {start} the automaton still predicts the "
                        "opposite direction",
                    ))
                    break
    return findings


def _verify_paper_semantics(spec: AutomatonSpec) -> List[Finding]:
    """Pin the five paper automata to their Figure-2/Figure-4 semantics."""
    findings: List[Finding] = []
    name = spec.name

    def expect(condition: bool, rule: str, message: str) -> None:
        if not condition:
            findings.append(_finding(rule, name, message))

    if name == "LT":
        expect(spec.bits == 1, "paper-semantics", "Last-Time must be a one-bit automaton")
        for state in range(spec.num_states):
            for taken in (False, True):
                nxt = spec.next_state(state, taken)
                expect(
                    spec.predict(nxt) == taken,
                    "paper-semantics",
                    f"LT must predict the previous outcome, but after "
                    f"observing {'T' if taken else 'N'} in state {state} it "
                    f"predicts {'T' if spec.predict(nxt) else 'N'}",
                )
        return findings

    if name not in ("A1", "A2", "A3", "A4"):
        return findings

    expect(spec.bits == 2 and spec.num_states == 4, "paper-semantics",
           f"{name} must be a four-state two-bit automaton")
    if findings:
        return findings

    if name == "A1":
        for state in range(4):
            expect(
                spec.next_state(state, False) == ((state << 1) & 0b11)
                and spec.next_state(state, True) == (((state << 1) | 1) & 0b11),
                "paper-semantics",
                f"A1 state {state} must shift the outcome into a 2-bit "
                "register of the last two outcomes",
            )
            expect(
                spec.predict(state) == (state != 0),
                "paper-semantics",
                f"A1 must predict not-taken only when neither of the last "
                f"two outcomes was taken (state 0), got state {state} wrong",
            )
        return findings

    # A2/A3/A4 are saturating counters with named deviations.
    counter = {s: (max(s - 1, 0), min(s + 1, 3)) for s in range(4)}
    deviations = {"A2": {}, "A3": {(2, False): 0}, "A4": {(1, True): 3}}[name]
    for state in range(4):
        expect(
            spec.predict(state) == (state >= 2),
            "paper-semantics",
            f"{name} must predict taken exactly when the count is >= 2 "
            f"(state {state} is wrong)",
        )
        for taken in (False, True):
            expected = deviations.get((state, taken), counter[state][1 if taken else 0])
            got = spec.next_state(state, taken)
            expect(
                got == expected,
                "paper-semantics",
                f"{name}: delta({state}, {'T' if taken else 'N'}) must be "
                f"{expected}, got {got}",
            )
    # Saturation hysteresis: one disagreement at saturation never flips
    # the prediction (the property the two-bit counters exist to have).
    expect(
        spec.predict(spec.next_state(3, False)),
        "hysteresis",
        f"{name}: a single not-taken at saturated-taken (state 3) must not "
        "flip the prediction",
    )
    expect(
        not spec.predict(spec.next_state(0, True)),
        "hysteresis",
        f"{name}: a single taken at saturated-not-taken (state 0) must not "
        "flip the prediction",
    )
    return findings


def verify_spec(spec: AutomatonSpec) -> List[Finding]:
    """All checks — structural model check plus paper semantics."""
    findings = verify_table(
        spec.name, spec.transitions, spec.predictions, spec.initial_state, spec.bits
    )
    if not findings:
        findings.extend(_verify_paper_semantics(spec))
    return findings


def default_specs() -> List[AutomatonSpec]:
    """The verification corpus: the paper's five automata, the preset
    bits, the tournament chooser, and samples of the generated
    families."""
    specs: List[AutomatonSpec] = list(PAPER_AUTOMATA.values())
    specs += [PRESET_TAKEN, PRESET_NOT_TAKEN]
    specs += [saturating_counter(bits) for bits in (1, 2, 3, 4)]
    # The tournament chooser (SC2 started weakly-favour-first): ops
    # bundles are cached per (transitions, predictions, initial_state),
    # so the non-default start state is a distinct encoding to prove.
    specs += [saturating_counter(2, initial=1)]
    specs += [
        shift_register_automaton(1),
        shift_register_automaton(2),
        shift_register_automaton(3, threshold=2),
    ]
    return specs


def check_automata(
    specs: Optional[Iterable[AutomatonSpec]] = None,
) -> Tuple[List[Finding], int]:
    """Run the automaton verifier.

    Returns:
        (findings, number of automata examined).
    """
    corpus = list(default_specs() if specs is None else specs)
    findings: List[Finding] = []
    for spec in corpus:
        findings.extend(verify_spec(spec))
    # Registry sanity: the table the rest of the system looks names up
    # in must agree with each spec's self-declared name.
    if specs is None:
        for key, spec in PAPER_AUTOMATA.items():
            if key != spec.name:
                findings.append(_finding(
                    "registry-name", key,
                    f"PAPER_AUTOMATA[{key!r}] is named {spec.name!r}",
                ))
        expected = {"LT", "A1", "A2", "A3", "A4"}
        if set(PAPER_AUTOMATA) != expected:
            findings.append(_finding(
                "registry-membership", "PAPER_AUTOMATA",
                f"expected exactly {sorted(expected)}, got {sorted(PAPER_AUTOMATA)}",
            ))
        # Initial taken-bias shared by the whole study (paper §4.2).
        for spec in PAPER_AUTOMATA.values():
            if not spec.predict(spec.initial_state):
                findings.append(_finding(
                    "initial-bias", spec.name,
                    "the paper initialises every automaton to a "
                    "taken-predicting state; this one predicts not-taken cold",
                ))
    return findings, len(corpus)
