"""Command line interface: ``python -m repro.check``.

Examples::

    python -m repro.check                 # run everything, text report
    python -m repro.check --json          # machine-readable report
    python -m repro.check --strict        # warnings also fail the gate
    python -m repro.check --only purity,automata
    python -m repro.check --list          # enumerate analyzers

Exit codes: 0 — clean; 1 — findings (errors always, warnings only
under ``--strict``); 2 — bad invocation.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import ANALYZERS, run_checks


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Static analysis & invariant verification for the "
        "branch-prediction reproduction.",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report instead of text"
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on warnings as well as errors",
    )
    parser.add_argument(
        "--only", metavar="NAMES", default=None,
        help="comma-separated analyzer subset (see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_analyzers",
        help="list available analyzers and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_analyzers:
        for name, analyzer in ANALYZERS.items():
            doc = (analyzer.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<12} {doc}")
        return 0

    only = None
    if args.only is not None:
        only = [name.strip() for name in args.only.split(",") if name.strip()]
        unknown = [name for name in only if name not in ANALYZERS]
        if unknown:
            parser.error(
                f"unknown analyzer(s) {', '.join(unknown)}; "
                f"available: {', '.join(ANALYZERS)}"
            )

    report = run_checks(only=only)
    if args.json:
        print(report.to_json())
    else:
        print(report.format_text())
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
