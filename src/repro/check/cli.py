"""Command line interface: ``python -m repro.check``.

Examples::

    python -m repro.check                 # run everything, text report
    python -m repro.check --json          # machine-readable report
    python -m repro.check --strict        # warnings also fail the gate
    python -m repro.check --only purity,automata
    python -m repro.check --only kernels,concurrency,resources
    python -m repro.check --list          # enumerate analyzers
    python -m repro.check --sarif         # + SARIF to results/check.sarif
    python -m repro.check --sarif -       # SARIF log on stdout
    python -m repro.check --write-baseline  # snapshot current findings

A baseline-suppression file (``.check-baseline.json`` in the working
directory, or ``--baseline PATH``) removes *known* findings by stable
fingerprint before the exit code is computed, so the strict gate stays
green over deliberately deferred findings while anything new still
fails the build. ``--no-baseline`` shows the unsuppressed truth.

Exit codes: 0 — clean; 1 — findings (errors always, warnings only
under ``--strict``); 2 — bad invocation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from . import ANALYZERS, run_checks
from .report import load_baseline, write_baseline

#: Default location of the committed baseline-suppression file,
#: resolved against the working directory (CI runs from the repo root).
DEFAULT_BASELINE = ".check-baseline.json"

#: Default SARIF output path for a bare ``--sarif``.
DEFAULT_SARIF = "results/check.sarif"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Static analysis & invariant verification for the "
        "branch-prediction reproduction.",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report instead of text"
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on warnings as well as errors",
    )
    parser.add_argument(
        "--only", metavar="NAMES", default=None,
        help="comma-separated analyzer subset (see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_analyzers",
        help="list available analyzers and exit",
    )
    parser.add_argument(
        "--sarif", metavar="PATH", nargs="?", const=DEFAULT_SARIF, default=None,
        help=f"also write a SARIF 2.1.0 log to PATH "
        f"(default {DEFAULT_SARIF}; '-' for stdout)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help=f"baseline-suppression file to apply "
        f"(default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline", metavar="PATH", nargs="?", const=DEFAULT_BASELINE,
        default=None,
        help=f"snapshot the current findings as the baseline "
        f"(default {DEFAULT_BASELINE}) and exit 0",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_analyzers:
        for name, analyzer in ANALYZERS.items():
            doc = (analyzer.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<12} {doc}")
        return 0

    only = None
    if args.only is not None:
        only = [name.strip() for name in args.only.split(",") if name.strip()]
        unknown = [name for name in only if name not in ANALYZERS]
        if unknown:
            parser.error(
                f"unknown analyzer(s) {', '.join(unknown)}; "
                f"available: {', '.join(ANALYZERS)}"
            )

    report = run_checks(only=only)

    if args.write_baseline is not None:
        count = write_baseline(args.write_baseline, report)
        print(f"baseline: {count} suppression(s) written to {args.write_baseline}")
        return 0

    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE).is_file():
        baseline_path = DEFAULT_BASELINE
    if baseline_path is not None and not args.no_baseline:
        try:
            fingerprints = load_baseline(baseline_path)
        except (OSError, ValueError) as exc:
            parser.error(f"cannot load baseline: {exc}")
        report.apply_baseline(fingerprints)

    sarif_to_stdout = args.sarif == "-"
    if args.sarif is not None and not sarif_to_stdout:
        target = Path(args.sarif)
        if target.parent != Path("."):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(report.to_sarif_json() + "\n", encoding="utf-8")

    if sarif_to_stdout:
        print(report.to_sarif_json())
    elif args.json:
        print(report.to_json())
    else:
        print(report.format_text())
        if args.sarif is not None:
            print(f"SARIF log written to {args.sarif}")
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
