"""Fork/pickle-safety lint for the multiprocessing surface.

The parallel runner's contract (:mod:`repro.sim.parallel`, PR 1/4) is
that worker processes receive only **picklable, self-contained** work:
module-level functions, value arguments, and manager-proxied queues —
and that the observability plumbing costs nothing when no observer is
attached. Those properties are invisible to the type system and only
fail at runtime (often only on spawn-start platforms), so this
analyzer proves them statically over the ASTs of
``repro.sim.parallel``, ``repro.obs.live`` and ``repro.obs.runner``:

* ``conc/lambda-to-worker`` — a ``lambda`` or a function *defined
  inside another function* shipped through a worker-pool call
  (``submit``/``apply_async``/``map``/``Process(target=...)``...).
  Closures are not picklable; they die in the executor with an opaque
  ``PicklingError`` long after the code that built them.
* ``conc/bound-method-to-worker`` — a ``self.``/``cls.``-bound method
  shipped to a worker: pickling a bound method drags the whole
  instance (traces, caches, open handles) across the process boundary.
* ``conc/global-write-in-worker`` — module-level mutable state written
  inside a worker-executed function (the shipped functions plus every
  module-local function they transitively call). Worker-side writes to
  module globals silently diverge between processes; the one
  sanctioned use — a per-worker-process memo — must carry an explicit
  pragma so the intent is visible at the write site.
* ``conc/unguarded-manager`` — ``multiprocessing.Manager()`` (or a raw
  ``multiprocessing.Queue()``) created outside any ``if``: a Manager
  spawns a live server process, so creating one unconditionally
  violates the zero-cost-when-off observability contract.
* ``conc/handle-across-fork`` — a local bound to ``open(...)``/
  ``mmap.mmap(...)`` passed as a worker argument or captured by a
  shipped closure; after fork/pickle the descriptor is shared or dead,
  and writes interleave corruptly.

Per-line escape hatch: ``# check: allow(<rule>)``, as everywhere in
:mod:`repro.check`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .purity import _pragma_allows
from .report import ERROR, Finding

__all__ = [
    "check_concurrency",
    "default_paths",
    "scan_source",
]

_ANALYZER = "concurrency"

#: Pool/executor methods whose first positional argument is a callable
#: executed in a worker process.
_SHIP_METHODS = {
    "submit", "apply_async", "apply", "map", "map_async",
    "imap", "imap_unordered", "starmap", "starmap_async",
}

#: Mutating container methods: calling one of these on a module-level
#: name inside a worker function is a cross-process state write.
_MUTATORS = {
    "append", "add", "update", "setdefault", "pop", "popitem",
    "clear", "extend", "insert", "remove", "discard",
}

_MULTIPROCESSING_NAMES = {"multiprocessing", "mp"}


def _finding(rule: str, location: str, message: str, severity: str = ERROR) -> Finding:
    return Finding(_ANALYZER, f"conc/{rule}", severity, location, message)


def _is_open_call(node: ast.expr) -> bool:
    """``open(...)``, ``<path>.open(...)`` or ``mmap.mmap(...)``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        return True
    if isinstance(func, ast.Attribute):
        if func.attr == "open":
            return True
        if func.attr == "mmap" and isinstance(func.value, ast.Name) \
                and func.value.id == "mmap":
            return True
    return False


class _ShipSite:
    """One call that sends work to another process."""

    __slots__ = ("node", "callable", "shipped_args", "enclosing")

    def __init__(self, node: ast.Call, callable_node: Optional[ast.expr],
                 shipped_args: List[ast.expr], enclosing: Tuple[str, ...]) -> None:
        self.node = node
        self.callable = callable_node
        self.shipped_args = shipped_args
        self.enclosing = enclosing


def _ship_site(node: ast.Call, enclosing: Tuple[str, ...]) -> Optional[_ShipSite]:
    """Classify ``node`` as a worker-shipping call, or ``None``."""
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _SHIP_METHODS:
        if not node.args:
            return None
        return _ShipSite(node, node.args[0], list(node.args[1:]), enclosing)
    is_process = (isinstance(func, ast.Name) and func.id == "Process") or (
        isinstance(func, ast.Attribute) and func.attr == "Process"
    )
    if is_process:
        target = None
        shipped: List[ast.expr] = []
        for kw in node.keywords:
            if kw.arg == "target":
                target = kw.value
            elif kw.arg == "args" and isinstance(kw.value, (ast.Tuple, ast.List)):
                shipped.extend(kw.value.elts)
        if target is not None:
            return _ShipSite(node, target, shipped, enclosing)
    return None


class _ModuleScan(ast.NodeVisitor):
    """Single full-AST walk collecting everything the rules need."""

    def __init__(self, tree: ast.Module) -> None:
        self.module_funcs: Dict[str, ast.FunctionDef] = {}
        self.nested_func_names: Set[str] = set()
        self.module_vars: Set[str] = set()
        self.ship_sites: List[_ShipSite] = []
        self.manager_calls: List[Tuple[ast.Call, bool]] = []  # (call, guarded)
        self._func_stack: List[ast.FunctionDef] = []
        self._if_depth = 0
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_funcs[node.name] = node
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.module_vars.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                self.module_vars.add(node.target.id)
        self.visit(tree)

    def _visit_func(self, node) -> None:
        if self._func_stack:
            self.nested_func_names.add(node.name)
        self._func_stack.append(node)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_If(self, node: ast.If) -> None:
        self._if_depth += 1
        self.generic_visit(node)
        self._if_depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        enclosing = tuple(f.name for f in self._func_stack)
        site = _ship_site(node, enclosing)
        if site is not None:
            self.ship_sites.append(site)
        func = node.func
        is_manager = (isinstance(func, ast.Name) and func.id == "Manager") or (
            isinstance(func, ast.Attribute) and func.attr == "Manager"
        )
        is_raw_queue = (
            isinstance(func, ast.Attribute) and func.attr == "Queue"
            and isinstance(func.value, ast.Name)
            and func.value.id in _MULTIPROCESSING_NAMES
        )
        if is_manager or is_raw_queue:
            self.manager_calls.append((node, self._if_depth > 0))
        self.generic_visit(node)


def _worker_functions(scan: _ModuleScan) -> Set[str]:
    """Shipped module-level callables plus their transitive module-local
    callees — everything whose body executes inside a worker process."""
    seeds: Set[str] = set()
    for site in scan.ship_sites:
        if isinstance(site.callable, ast.Name) and site.callable.id in scan.module_funcs:
            seeds.add(site.callable.id)
    workers = set(seeds)
    frontier = list(seeds)
    while frontier:
        fn = scan.module_funcs[frontier.pop()]
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                callee = node.func.id
                if callee in scan.module_funcs and callee not in workers:
                    workers.add(callee)
                    frontier.append(callee)
    return workers


class _Scanner:
    def __init__(self, filename: str, source_lines: Sequence[str]) -> None:
        self.filename = filename
        self.source_lines = source_lines
        self.findings: List[Finding] = []

    def _add(self, rule: str, lineno: int, message: str) -> None:
        if _pragma_allows(self.source_lines, lineno, f"conc/{rule}"):
            return
        self.findings.append(
            _finding(rule, f"{self.filename}:{lineno}", message))

    # -- rule: shipped callables ---------------------------------------
    def _check_callables(self, scan: _ModuleScan) -> None:
        for site in scan.ship_sites:
            target = site.callable
            if isinstance(target, ast.Lambda):
                self._add(
                    "lambda-to-worker", target.lineno,
                    "a lambda is shipped to a worker process; lambdas are "
                    "not picklable — hoist it to a module-level function",
                )
            elif isinstance(target, ast.Name):
                if (target.id in scan.nested_func_names
                        and target.id not in scan.module_funcs):
                    self._add(
                        "lambda-to-worker", target.lineno,
                        f"locally-defined function {target.id!r} is shipped "
                        "to a worker process; closures are not picklable — "
                        "hoist it to module level",
                    )
            elif isinstance(target, ast.Attribute):
                root = target.value
                if isinstance(root, ast.Name) and root.id in ("self", "cls"):
                    self._add(
                        "bound-method-to-worker", target.lineno,
                        f"bound method {root.id}.{target.attr} is shipped to "
                        "a worker; pickling it drags the whole instance "
                        "across the process boundary",
                    )

    # -- rule: Manager/Queue guarded by observation --------------------
    def _check_managers(self, scan: _ModuleScan) -> None:
        for call, guarded in scan.manager_calls:
            if not guarded:
                self._add(
                    "unguarded-manager", call.lineno,
                    "multiprocessing Manager/Queue created unconditionally; "
                    "a Manager spawns a server process, so it must be gated "
                    "on an observer actually being attached "
                    "(zero-cost-when-off)",
                )

    # -- rule: module-state writes inside workers ----------------------
    def _check_worker_writes(self, scan: _ModuleScan) -> None:
        workers = _worker_functions(scan)
        for name in sorted(workers):
            fn = scan.module_funcs[name]
            declared_global: Set[str] = set()
            for node in ast.walk(fn):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
            for node in ast.walk(fn):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (node.targets if isinstance(node, ast.Assign)
                               else [node.target])
                    for target in targets:
                        root = target
                        while isinstance(root, (ast.Subscript, ast.Attribute)):
                            root = root.value
                        if not isinstance(root, ast.Name):
                            continue
                        if root.id in declared_global or (
                            root.id in scan.module_vars and root is not target
                        ):
                            self._add(
                                "global-write-in-worker", node.lineno,
                                f"worker function {name!r} writes "
                                f"module-level state {root.id!r}; each "
                                "worker process mutates its own copy, which "
                                "never reaches the parent — if this is a "
                                "deliberate per-process memo, annotate the "
                                "line with a pragma",
                            )
                elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    receiver = node.func.value
                    if (isinstance(receiver, ast.Name)
                            and receiver.id in scan.module_vars
                            and node.func.attr in _MUTATORS):
                        self._add(
                            "global-write-in-worker", node.lineno,
                            f"worker function {name!r} calls "
                            f"{receiver.id}.{node.func.attr}(...) on "
                            "module-level state; worker-side mutation "
                            "never reaches the parent process",
                        )

    # -- rule: file handles crossing the fork --------------------------
    def _check_handles(self, scan: _ModuleScan) -> None:
        for fn in scan.module_funcs.values():
            handle_vars: Set[str] = set()
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign) and _is_open_call(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            handle_vars.add(target.id)
            if not handle_vars:
                continue
            for site in scan.ship_sites:
                if fn.name not in site.enclosing:
                    continue
                for arg in site.shipped_args:
                    for leaf in ast.walk(arg):
                        if isinstance(leaf, ast.Name) and leaf.id in handle_vars:
                            self._add(
                                "handle-across-fork", site.node.lineno,
                                f"open file handle {leaf.id!r} is shipped to "
                                "a worker process; descriptors do not "
                                "survive pickling and fork-shared offsets "
                                "interleave — ship the path and reopen in "
                                "the worker",
                            )
                target = site.callable
                if isinstance(target, ast.Name) and target.id in scan.nested_func_names:
                    inner = next(
                        (node for node in ast.walk(fn)
                         if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                         and node.name == target.id),
                        None,
                    )
                    if inner is None:
                        continue
                    captured = {
                        leaf.id for leaf in ast.walk(inner)
                        if isinstance(leaf, ast.Name) and leaf.id in handle_vars
                    }
                    for name in sorted(captured):
                        self._add(
                            "handle-across-fork", site.node.lineno,
                            f"shipped function {target.id!r} captures open "
                            f"file handle {name!r} across the process "
                            "boundary",
                        )


def default_paths() -> List[Path]:
    """The multiprocessing surface covered by the fork/pickle contract."""
    package = Path(__file__).resolve().parent.parent
    return [
        package / "sim" / "parallel.py",
        package / "obs" / "live.py",
        package / "obs" / "runner.py",
        package / "obs" / "spans.py",
        package / "obs" / "resources.py",
    ]


def scan_source(source: str, filename: str = "<string>") -> List[Finding]:
    """Scan one source string (unit-test entry point)."""
    tree = ast.parse(source, filename=filename)
    scan = _ModuleScan(tree)
    scanner = _Scanner(filename, source.splitlines())
    scanner._check_callables(scan)
    scanner._check_managers(scan)
    scanner._check_worker_writes(scan)
    scanner._check_handles(scan)
    return scanner.findings


def check_concurrency(
    paths: Optional[Iterable[Path]] = None,
) -> Tuple[List[Finding], int]:
    """Run the fork/pickle-safety lint.

    Returns:
        (findings, number of files examined).
    """
    findings: List[Finding] = []
    count = 0
    for path in default_paths() if paths is None else paths:
        path = Path(path)
        findings.extend(scan_source(path.read_text(encoding="utf-8"), str(path)))
        count += 1
    return findings, count
