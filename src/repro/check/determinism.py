"""Determinism lint for the simulation hot paths.

The determinism guarantee in :mod:`repro.sim.parallel` — bit-identical
matrices for any worker count, cold or warm cache — only holds if
nothing on the simulation path consults ambient state. This analyzer
walks the ASTs of ``repro.core``, ``repro.predictors`` and
``repro.sim`` and flags:

* ``det/rng`` — any reference to ``random``, ``secrets``, ``uuid`` or
  ``numpy.random``. Seeded RNG is legitimate in synthetic workload
  *generation* (``repro.trace.synthetic``, ``repro.workloads``), which
  is deliberately outside this analyzer's scope; the predictor/
  simulator layers must be RNG-free.
* ``det/wall-clock`` — ``time.time``/``time.time_ns``/
  ``time.monotonic`` and ``datetime.now``/``utcnow``/``today``.
  ``time.perf_counter`` is allowed: it feeds run telemetry, which is
  documentation about a run, never an input to a result.
* ``det/env`` — ``os.environ`` / ``os.getenv`` reads; simulation
  results must not depend on the caller's environment.
* ``det/set-iteration`` — ``for`` loops (or comprehension generators)
  directly over a set display, set comprehension or ``set(...)`` call.
  Set order is insertion- and hash-dependent; for ``str`` elements it
  varies across interpreter processes (hash randomisation), which is
  exactly the cross-worker divergence the parallel runner must never
  exhibit. Wrapping in ``sorted(...)`` resolves the finding.
* ``det/builtin-hash`` (warning) — calls to the builtin ``hash``;
  ``str`` hashes differ across processes. Content keys must use
  ``hashlib`` instead.

Per-line escape hatch: ``# check: allow(<rule>)``, as in the purity
analyzer.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from .purity import _pragma_allows
from .report import ERROR, WARNING, Finding

_ANALYZER = "determinism"

_RNG_NAMES = {"random", "secrets", "uuid"}
_WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "localtime"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}
_ENV_ATTRS = {"environ", "getenv"}


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitAnd, ast.BitOr, ast.Sub)):
        # set algebra: a & b, a | b, a - b over set operands
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


class _FileScan(ast.NodeVisitor):
    def __init__(self, filename: str, source_lines: Sequence[str]) -> None:
        self.filename = filename
        self.source_lines = source_lines
        self.findings: List[Finding] = []

    def _add(self, rule: str, lineno: int, message: str, severity: str = ERROR) -> None:
        full_rule = f"det/{rule}"
        if _pragma_allows(self.source_lines, lineno, full_rule):
            return
        self.findings.append(Finding(
            _ANALYZER, full_rule, severity, f"{self.filename}:{lineno}", message
        ))

    # -- RNG -----------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in _RNG_NAMES:
                self._add("rng", node.lineno,
                          f"imports {alias.name!r}; the simulation path must be RNG-free")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".")[0]
        if root in _RNG_NAMES:
            self._add("rng", node.lineno,
                      f"imports from {node.module!r}; the simulation path must be RNG-free")
        self.generic_visit(node)

    # -- attribute-based hazards ---------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name):
            pair = (node.value.id, node.attr)
            if pair in _WALL_CLOCK:
                self._add("wall-clock", node.lineno,
                          f"reads {node.value.id}.{node.attr}; results must not "
                          "depend on when the simulation runs")
            elif node.value.id == "os" and node.attr in _ENV_ATTRS:
                self._add("env", node.lineno,
                          f"reads os.{node.attr}; results must not depend on the "
                          "caller's environment")
            elif node.value.id in ("numpy", "np") and node.attr == "random":
                self._add("rng", node.lineno, "references numpy.random")
        self.generic_visit(node)

    # -- set iteration -------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if _is_set_expression(node.iter):
            self._add("set-iteration", node.lineno,
                      "iterates directly over a set; order is hash-dependent "
                      "and may differ across worker processes — sort first")
        self.generic_visit(node)

    def _check_comprehension(self, node) -> None:
        for gen in node.generators:
            if _is_set_expression(gen.iter):
                self._add("set-iteration", node.lineno,
                          "comprehension iterates directly over a set; order is "
                          "hash-dependent — sort first")
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension
    visit_DictComp = _check_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set is fine; only *iteration order* is hazardous.
        self.generic_visit(node)

    # -- builtin hash ----------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            self._add("builtin-hash", node.lineno,
                      "builtin hash() of strings differs across processes "
                      "(hash randomisation); use hashlib for content keys",
                      severity=WARNING)
        self.generic_visit(node)


def default_paths() -> List[Path]:
    """The hot-path packages covered by the determinism contract.

    ``obs`` is scanned too: probes ride the simulation hot path, so
    they may use ``perf_counter`` (telemetry, like the run-telemetry
    layer) but none of the result-affecting nondeterminism sources.
    ``analysis`` is held to the same rule — characterization reports
    are cached and diffed, so they must be bit-reproducible.
    """
    package = Path(__file__).resolve().parent.parent
    paths: List[Path] = []
    for subpackage in ("core", "predictors", "sim", "obs", "analysis"):
        paths.extend(sorted((package / subpackage).glob("*.py")))
    paths.append(package / "trace" / "cache.py")
    return paths


def scan_source(source: str, filename: str = "<string>") -> List[Finding]:
    """Scan one source string (unit-test entry point)."""
    tree = ast.parse(source, filename=filename)
    scan = _FileScan(filename, source.splitlines())
    scan.visit(tree)
    return scan.findings


def check_determinism(paths: Optional[Iterable[Path]] = None) -> Tuple[List[Finding], int]:
    """Run the determinism lint.

    Returns:
        (findings, number of files examined).
    """
    findings: List[Finding] = []
    count = 0
    for path in default_paths() if paths is None else paths:
        path = Path(path)
        text = path.read_text(encoding="utf-8")
        findings.extend(scan_source(text, str(path)))
        count += 1
    return findings, count
