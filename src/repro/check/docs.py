"""Documentation accuracy checker.

Docs rot silently: a renamed module, a moved file, or a dropped export
leaves ``docs/*.md`` pointing at things that no longer exist, and no
test notices. This analyzer re-anchors the prose to the code:

* **link resolution** — every relative markdown link in ``README.md``
  and ``docs/*.md`` must point at a file or directory that exists in
  the repository (external URLs and pure ``#anchor`` links are
  skipped).
* **symbol resolution** — every dotted reference ``repro.<...>``
  (module, class, function or attribute path, in prose or in fenced
  code) must resolve: the longest importable module prefix is imported
  and the remaining parts are resolved with ``getattr``. A doc naming
  ``repro.sim.engine.simulate`` keeps passing only while that symbol
  is real.

The checker is repository-relative and skips cleanly (examining zero
objects) when the docs tree is absent — installed copies of the
package carry no ``docs/`` directory.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .report import ERROR, Finding

_ANALYZER = "docs"

#: Documentation files audited, relative to the repository root.
DOC_GLOBS: Tuple[str, ...] = ("README.md", "docs/*.md")

#: Inline markdown link: [text](target). Images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Fenced code blocks, removed before link checking (code samples may
#: contain bracket/paren sequences that are not links).
_FENCE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)

#: A dotted repro.* reference, in prose or code.
_SYMBOL = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")

#: Dotted references ending in these parts are file names (e.g.
#: ``repro.pth``), not Python symbols.
_FILE_SUFFIXES = frozenset({"pth", "py", "md", "json", "csv", "txt"})


def _finding(rule: str, location: str, message: str) -> Finding:
    return Finding(_ANALYZER, f"docs/{rule}", ERROR, location, message)


def repo_root() -> Path:
    """The repository root (three levels above this file's package)."""
    return Path(__file__).resolve().parents[3]


def _doc_files(root: Path) -> List[Path]:
    files: List[Path] = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(root.glob(pattern)))
    return [f for f in files if f.is_file()]


def _check_links(doc: Path, text: str, root: Path) -> List[Finding]:
    findings: List[Finding] = []
    prose = _FENCE.sub("", text)
    for lineno, line in enumerate(prose.splitlines(), start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:  # pure in-page anchor
                continue
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                findings.append(_finding(
                    "broken-link",
                    f"{doc.relative_to(root)}:{lineno}",
                    f"link target {target!r} does not exist",
                ))
    return findings


def _resolve_symbol(dotted: str, cache: Dict[str, object]) -> Optional[str]:
    """Resolve a dotted ``repro.*`` path; returns an error string or None.

    Imports the longest module prefix, then follows the remaining
    parts with ``getattr`` — so both ``repro.sim.engine`` (a module)
    and ``repro.trace.Trace.head`` (an attribute chain) resolve.
    """
    parts = dotted.split(".")
    module = None
    depth = 0
    for i in range(len(parts), 0, -1):
        prefix = ".".join(parts[:i])
        if prefix in cache:
            module, depth = cache[prefix], i
            break
        try:
            module = importlib.import_module(prefix)
        except ImportError:
            continue
        except Exception as exc:  # pragma: no cover - import-time crash
            return f"importing {prefix!r} raised {exc!r}"
        cache[prefix] = module
        depth = i
        break
    if module is None:
        return f"no importable module prefix in {dotted!r}"
    obj = module
    for part in parts[depth:]:
        try:
            obj = getattr(obj, part)
        except AttributeError:
            return (
                f"{'.'.join(parts[:depth])!r} has no attribute "
                f"{'.'.join(parts[depth:])!r}"
            )
    return None


def _check_symbols(
    doc: Path, text: str, root: Path, cache: Dict[str, object]
) -> Tuple[List[Finding], int]:
    findings: List[Finding] = []
    examined = 0
    checked: Dict[str, Optional[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _SYMBOL.finditer(line):
            dotted = match.group(0)
            if dotted.rsplit(".", 1)[-1] in _FILE_SUFFIXES:
                continue
            if dotted not in checked:
                checked[dotted] = _resolve_symbol(dotted, cache)
                examined += 1
            error = checked[dotted]
            if error is not None:
                findings.append(_finding(
                    "stale-symbol",
                    f"{doc.relative_to(root)}:{lineno}",
                    f"reference {dotted!r} does not resolve: {error}",
                ))
                checked[dotted] = None  # report each symbol once per doc
    return findings, examined


def check_docs(root: Optional[Path] = None) -> Tuple[List[Finding], int]:
    """Run the documentation accuracy checker.

    Returns:
        (findings, number of files + distinct symbols examined).
    """
    root = repo_root() if root is None else Path(root)
    files = _doc_files(root)
    findings: List[Finding] = []
    examined = 0
    cache: Dict[str, object] = {}
    for doc in files:
        text = doc.read_text(encoding="utf-8")
        findings.extend(_check_links(doc, text, root))
        symbol_findings, symbols = _check_symbols(doc, text, root, cache)
        findings.extend(symbol_findings)
        examined += 1 + symbols
    return findings, examined
