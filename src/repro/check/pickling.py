"""Spec-picklability and behavioural-equivalence checker.

The parallel runner ships :class:`~repro.sim.parallel.PredictorSpec`
objects across process boundaries and keys the on-disk result cache by
``spec.cache_key``. Three things must therefore hold for every
registered scheme, and this analyzer verifies them dynamically:

1. **Pickle round-trip** — ``pickle.loads(pickle.dumps(spec))`` must
   reconstruct an equal spec with the same cache key.
2. **Behavioural equivalence** — a predictor built from the
   round-tripped spec must score *identically* to one built from the
   original on a deterministic probe trace (this is what a worker
   process actually does with the spec).
3. **Build determinism** — two predictors built from the *same* spec
   must also score identically; a divergence means hidden global state
   or RNG in a constructor, which would poison the cache.

The probe trace interleaves a loop branch, a periodic pattern and an
alternating branch over distinct PCs — enough structure that any
automaton/history/table bug changes the score.
"""

from __future__ import annotations

import pickle
from typing import Iterable, List, Optional, Tuple

from ..predictors.base import TrainingUnavailable
from ..sim.engine import simulate
from ..sim.parallel import PredictorSpec
from ..trace.events import BranchClass, Trace, TraceBuilder
from .report import ERROR, Finding

_ANALYZER = "pickling"

#: One representative per scheme family the registry can build. Kept
#: deliberately small-parameter so the whole corpus probes in well
#: under a second.
DEFAULT_SPEC_NAMES: Tuple[str, ...] = (
    "gag-6",
    "gap-6",
    "gshare-6",
    "pag-6",
    "pag-6-a1",
    "pag-6-a3-64x2",
    "pag-6-lt-ideal",
    "pap-4",
    "pap-4-a4-32x1",
    "sag-4x8",
    "sas-4x8",
    "gselect-3+3",
    "tournament",
    "btb-a2",
    "btb-lt",
    "always-taken",
    "always-not-taken",
    "btfn",
    "gsg-6",
    "psg-6",
    "profile",
    "PAg(BHT(64,4,6-sr),1xPHT(2^6,A2))",
    "BTB(BHT(64,2,LT),,)",
)


def probe_trace(branches_per_site: int = 400) -> Trace:
    """A deterministic multi-site probe trace (no RNG involved)."""
    builder = TraceBuilder(name="check-probe", source="repro.check")
    pattern = (True, True, False, True, False, False, True, False)
    cond = BranchClass.CONDITIONAL
    for i in range(branches_per_site):
        # Site 1: an 8-iteration loop branch (backward target for BTFN).
        builder.branch(0x1000, i % 8 != 7, cond, target=0x0F00, work=3)
        # Site 2: a fixed periodic pattern.
        builder.branch(0x2040, pattern[i % len(pattern)], cond, target=0x2100, work=2)
        # Site 3: alternation — adversarial for Last-Time.
        builder.branch(0x3080, i % 2 == 0, cond, target=0x3000, work=2)
        # Site 4: heavily biased with rare (but deterministic) flips.
        builder.branch(0x41C0, i % 37 != 0, cond, target=0x4000, work=4)
    return builder.build()


def training_trace() -> Trace:
    """A deterministic training trace for GSg/PSg/Profile probes."""
    builder = TraceBuilder(name="check-probe-training", source="repro.check")
    cond = BranchClass.CONDITIONAL
    for i in range(600):
        builder.branch(0x1000, i % 8 != 7, cond, target=0x0F00, work=3)
        builder.branch(0x2040, i % 3 != 0, cond, target=0x2100, work=2)
    return builder.build()


def _score(spec: PredictorSpec, training: Optional[Trace], probe: Trace):
    predictor = spec(training)
    return simulate(predictor, probe)


def check_pickling(
    names: Optional[Iterable[str]] = None,
) -> Tuple[List[Finding], int]:
    """Run the picklability/equivalence checker.

    Returns:
        (findings, number of specs examined).
    """
    findings: List[Finding] = []
    corpus = tuple(DEFAULT_SPEC_NAMES if names is None else names)
    probe = probe_trace()
    training = training_trace()
    for name in corpus:
        spec = PredictorSpec(name)
        try:
            payload = pickle.dumps(spec)
            clone = pickle.loads(payload)
        except Exception as exc:
            findings.append(Finding(
                _ANALYZER, "pickle/round-trip", ERROR, name,
                f"PredictorSpec({name!r}) does not survive pickling: {exc!r}",
            ))
            continue
        if clone != spec or clone.cache_key != spec.cache_key:
            findings.append(Finding(
                _ANALYZER, "pickle/identity", ERROR, name,
                "pickle round-trip changed the spec or its cache key "
                f"({spec.cache_key!r} -> {clone.cache_key!r})",
            ))
            continue
        try:
            original = _score(spec, training, probe)
            rebuilt = _score(clone, training, probe)
            again = _score(spec, training, probe)
        except TrainingUnavailable:
            findings.append(Finding(
                _ANALYZER, "pickle/training", ERROR, name,
                "spec demanded a training trace even though one was supplied",
            ))
            continue
        except Exception as exc:
            findings.append(Finding(
                _ANALYZER, "pickle/construction", ERROR, name,
                f"building or simulating the spec failed: {exc!r}",
            ))
            continue
        if (rebuilt.correct_predictions, rebuilt.conditional_branches) != (
            original.correct_predictions, original.conditional_branches
        ):
            findings.append(Finding(
                _ANALYZER, "pickle/equivalence", ERROR, name,
                "a predictor built from the round-tripped spec scores "
                f"{rebuilt.correct_predictions}/{rebuilt.conditional_branches} "
                f"vs {original.correct_predictions}/{original.conditional_branches} "
                "from the original — worker processes would diverge from the parent",
            ))
        if (again.correct_predictions, again.conditional_branches) != (
            original.correct_predictions, original.conditional_branches
        ):
            findings.append(Finding(
                _ANALYZER, "pickle/build-determinism", ERROR, name,
                "two predictors built from the same spec score differently "
                f"({original.correct_predictions} vs {again.correct_predictions} "
                f"of {original.conditional_branches}) — hidden global state "
                "would poison the result cache",
            ))
        try:
            result_clone = pickle.loads(pickle.dumps(original))
        except Exception as exc:
            findings.append(Finding(
                _ANALYZER, "pickle/result", ERROR, name,
                f"the SimulationResult for {name!r} does not survive pickling: {exc!r}",
            ))
            continue
        if result_clone.correct_predictions != original.correct_predictions:
            findings.append(Finding(
                _ANALYZER, "pickle/result", ERROR, name,
                "pickling the SimulationResult changed its counts",
            ))
    return findings, len(corpus)
