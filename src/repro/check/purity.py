"""Purity lint: ``predict()`` must not mutate, ``update()`` must not
read clocks or RNGs.

PR 1's parallel runner and content-addressed result cache assume every
predictor is a pure function of (construction arguments, update
history): ``predict`` may read state but never change it, and no
predictor method may consult a wall clock, an RNG, or the environment.
If a predictor breaks that contract, cached and parallel sweeps can
silently diverge from serial ones. This analyzer proves the contract
statically, per class, with an ``ast`` pass:

* A class is **predictor-shaped** when it defines a ``predict`` method
  and (itself or an ancestor visible to the analyzer) derives from
  ``BranchPredictor``.
* A method is **mutating** when it assigns/deletes/aug-assigns any
  location rooted at ``self`` (``self.x = ...``, ``self.t[i] = ...``,
  ``self.n += 1``), calls another mutating method of the same class
  (resolved transitively, across the analyzed modules' inheritance), or
  calls a method on a ``self``-rooted receiver that is not in the
  known-pure allowlist (``peek``, ``predict``, ``get``...). The
  class-local propagation is a fixpoint, so ``predict ->
  _access_entry -> self.bht.access(...)`` is caught two hops deep.
* Any method reachable from ``predict``/``update`` that references
  ``random``, ``time``, ``datetime``, ``secrets``, ``uuid``,
  ``os.environ``/``os.getenv``/``os.urandom`` is flagged as
  nondeterministic.

Escape hatch: a line ending in ``# check: allow(<rule>)`` (for example
``# check: allow(purity/predict-mutates-state)``) suppresses findings
anchored on that line; the pragma is deliberately per-line and
per-rule so exemptions stay visible in review.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .report import ERROR, WARNING, Finding

_ANALYZER = "purity"

#: Base-class names that mark a class as a predictor.
PREDICTOR_BASES = {"BranchPredictor", "CountingPredictor"}

#: Method names assumed side-effect-free when called on self-rooted
#: receivers (``self.pht.predict(...)``). Everything else is treated as
#: mutating — the analyzer is deliberately conservative.
PURE_METHODS = {
    "predict",
    "peek",
    "probe_victim",
    "get",
    "keys",
    "values",
    "items",
    "next_state",
    "state",
    "states_snapshot",
    "format",
    "copy",
    "count",
    "index",
    "startswith",
    "endswith",
    "bit_length",
    "__contains__",
}

#: Modules whose mere mention inside a predictor method is a
#: determinism hazard (rule purity/nondeterministic-input).
_NONDET_ROOTS = {"random", "time", "datetime", "secrets", "uuid"}
_NONDET_OS_ATTRS = {"environ", "getenv", "urandom"}


@dataclass
class _Effect:
    """Why a method is impure (first witness wins, for the diagnostic)."""

    line: int
    reason: str


@dataclass
class _ClassInfo:
    name: str
    filename: str
    bases: List[str]
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    is_predictor: bool = False


def _pragma_allows(source_lines: Sequence[str], lineno: int, rule: str) -> bool:
    """True when line ``lineno`` (1-based) carries an allow pragma for ``rule``."""
    if not 1 <= lineno <= len(source_lines):
        return False
    line = source_lines[lineno - 1]
    return f"# check: allow({rule})" in line or "# check: allow(*)" in line


def _base_names(node: ast.ClassDef) -> List[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _rooted_at_self(node: ast.expr) -> bool:
    """Is this expression an attribute/subscript chain hanging off ``self``?"""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


def _self_method_name(call: ast.Call) -> Optional[str]:
    """``self.m(...)`` -> ``"m"``; anything else -> None."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    ):
        return func.attr
    return None


class _MethodScan(ast.NodeVisitor):
    """Collect the direct effects of one method body."""

    def __init__(self) -> None:
        self.mutations: List[_Effect] = []
        self.opaque_calls: List[_Effect] = []
        self.nondet: List[_Effect] = []
        self.self_calls: List[Tuple[str, int]] = []

    # -- state writes --------------------------------------------------
    def _check_targets(self, targets: Iterable[ast.expr], lineno: int, verb: str) -> None:
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, (ast.Attribute, ast.Subscript)) and _rooted_at_self(node):
                    self.mutations.append(_Effect(lineno, f"{verb} {ast.unparse(node)}"))
                    return

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_targets(node.targets, node.lineno, "assigns")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_targets([node.target], node.lineno, "aug-assigns")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_targets([node.target], node.lineno, "assigns")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._check_targets(node.targets, node.lineno, "deletes")
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self_method = _self_method_name(node)
        if self_method is not None:
            # self.m(...): purity decided by m's own body (fixpoint).
            self.self_calls.append((self_method, node.lineno))
        elif isinstance(node.func, ast.Attribute) and _rooted_at_self(node.func.value):
            # self.<chain>.m(...): decided by the allowlist.
            method = node.func.attr
            if method not in PURE_METHODS:
                receiver = ast.unparse(node.func.value)
                self.mutations.append(_Effect(
                    node.lineno,
                    f"calls {receiver}.{method}(...), which is not a known-pure method",
                ))
        else:
            # f(self, ...): self escaping into an arbitrary callee could
            # be mutated there; surface it as an opaque-call warning.
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id == "self":
                    callee = ast.unparse(node.func)
                    self.opaque_calls.append(_Effect(
                        node.lineno, f"passes self to {callee}(...)"
                    ))
                    break
        self.generic_visit(node)

    # -- nondeterministic inputs ---------------------------------------
    def visit_Name(self, node: ast.Name) -> None:
        if node.id in _NONDET_ROOTS:
            self.nondet.append(_Effect(node.lineno, f"references {node.id!r}"))
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "os"
            and node.attr in _NONDET_OS_ATTRS
        ):
            self.nondet.append(_Effect(node.lineno, f"references os.{node.attr}"))
        self.generic_visit(node)

    # Nested defs/lambdas run later, not during predict — skip bodies.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass


def _collect_classes(tree: ast.Module, filename: str) -> Dict[str, _ClassInfo]:
    classes: Dict[str, _ClassInfo] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        info = _ClassInfo(node.name, filename, _base_names(node))
        for item in node.body:
            if isinstance(item, ast.FunctionDef):
                info.methods[item.name] = item
        classes[node.name] = info
    return classes


def _mark_predictors(classes: Dict[str, _ClassInfo]) -> None:
    """Propagate predictor-ness through the (cross-module) class table."""

    def is_predictor(name: str, seen: Set[str]) -> bool:
        if name in PREDICTOR_BASES:
            return True
        info = classes.get(name)
        if info is None or name in seen:
            return False
        seen.add(name)
        return any(is_predictor(base, seen) for base in info.bases)

    for info in classes.values():
        info.is_predictor = any(is_predictor(base, {info.name}) for base in info.bases)


def _method_table(classes: Dict[str, _ClassInfo], info: _ClassInfo) -> Dict[str, Tuple[_ClassInfo, ast.FunctionDef]]:
    """The class's methods, including those inherited from analyzed bases
    (method resolution: own methods shadow base methods, left-to-right)."""
    table: Dict[str, Tuple[_ClassInfo, ast.FunctionDef]] = {}
    order: List[_ClassInfo] = []
    stack = [info]
    seen: Set[str] = set()
    while stack:
        current = stack.pop(0)
        if current.name in seen:
            continue
        seen.add(current.name)
        order.append(current)
        for base in current.bases:
            base_info = classes.get(base)
            if base_info is not None:
                stack.append(base_info)
    for current in reversed(order):
        for name, fn in current.methods.items():
            table[name] = (current, fn)
    return table


def analyze_classes(classes: Dict[str, _ClassInfo], sources: Dict[str, Sequence[str]]) -> List[Finding]:
    """Run the purity rules over a resolved class table.

    Args:
        classes: class name -> info, across all analyzed modules.
        sources: filename -> source lines (for pragma lookup).
    """
    _mark_predictors(classes)
    findings: List[Finding] = []

    for info in classes.values():
        if not info.is_predictor or "predict" not in info.methods:
            continue
        methods = _method_table(classes, info)
        scans: Dict[str, Tuple[_ClassInfo, _MethodScan]] = {}
        for name, (owner, fn) in methods.items():
            scan = _MethodScan()
            for stmt in fn.body:
                scan.visit(stmt)
            scans[name] = (owner, scan)

        def trace_impurity(method: str, seen: Set[str]) -> Optional[Tuple[str, _Effect, str]]:
            """First mutation witness reachable from ``method``, as
            (owning filename, effect, call-path suffix)."""
            if method in seen or method not in scans:
                return None
            seen.add(method)
            owner, scan = scans[method]
            if scan.mutations:
                return owner.filename, scan.mutations[0], method
            for callee, line in scan.self_calls:
                witness = trace_impurity(callee, seen)
                if witness is not None:
                    filename, effect, path = witness
                    return filename, effect, f"{method} -> {path}"
            return None

        def trace_nondet(method: str, seen: Set[str]) -> Optional[Tuple[str, _Effect, str]]:
            if method in seen or method not in scans:
                return None
            seen.add(method)
            owner, scan = scans[method]
            if scan.nondet:
                return owner.filename, scan.nondet[0], method
            for callee, _line in scan.self_calls:
                witness = trace_nondet(callee, seen)
                if witness is not None:
                    filename, effect, path = witness
                    return filename, effect, f"{method} -> {path}"
            return None

        # Rule 1: predict() must not mutate self (directly or through
        # any chain of self-method calls).
        witness = trace_impurity("predict", set())
        if witness is not None:
            filename, effect, path = witness
            rule = "purity/predict-mutates-state"
            if not _pragma_allows(sources.get(filename, ()), effect.line, rule):
                findings.append(Finding(
                    _ANALYZER, rule, ERROR,
                    f"{filename}:{effect.line}",
                    f"{info.name}.predict() mutates predictor state "
                    f"(via {path}: {effect.reason}); parallel/cached runs "
                    "require side-effect-free prediction",
                ))

        # Rule 2: predict() passing self into opaque callees.
        _owner, predict_scan = scans["predict"]
        for effect in predict_scan.opaque_calls:
            rule = "purity/predict-opaque-call"
            if not _pragma_allows(sources.get(info.filename, ()), effect.line, rule):
                findings.append(Finding(
                    _ANALYZER, rule, WARNING,
                    f"{info.filename}:{effect.line}",
                    f"{info.name}.predict() {effect.reason}; the analyzer "
                    "cannot prove the callee leaves the predictor unchanged",
                ))

        # Rule 3: neither predict nor update may read clocks/RNGs/env.
        for method in ("predict", "update"):
            if method not in scans:
                continue
            witness = trace_nondet(method, set())
            if witness is not None:
                filename, effect, path = witness
                rule = "purity/nondeterministic-input"
                if not _pragma_allows(sources.get(filename, ()), effect.line, rule):
                    findings.append(Finding(
                        _ANALYZER, rule, ERROR,
                        f"{filename}:{effect.line}",
                        f"{info.name}.{method}() {effect.reason} (via {path}); "
                        "predictor behaviour must be a pure function of the "
                        "observed branch stream",
                    ))
    return findings


def default_paths() -> List[Path]:
    """The modules whose predictors the contract covers.

    ``obs`` is included so that any predictor-shaped class that ever
    appears there (probes wrapping or observing predictors) is held to
    the same predict-never-mutates contract — observability must not be
    able to change a simulation result. ``analysis`` replays predictors
    for attribution, so it is covered for the same reason.
    """
    package = Path(__file__).resolve().parent.parent
    paths: List[Path] = []
    for subpackage in ("predictors", "core", "obs", "analysis"):
        paths.extend(sorted((package / subpackage).glob("*.py")))
    return paths


def check_purity(paths: Optional[Iterable[Path]] = None) -> Tuple[List[Finding], int]:
    """Run the purity lint over source files.

    Returns:
        (findings, number of predictor classes examined).
    """
    classes: Dict[str, _ClassInfo] = {}
    sources: Dict[str, Sequence[str]] = {}
    for path in default_paths() if paths is None else paths:
        path = Path(path)
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        filename = str(path)
        sources[filename] = text.splitlines()
        classes.update(_collect_classes(tree, filename))
    findings = analyze_classes(classes, sources)
    _mark_predictors(classes)
    examined = sum(
        1 for info in classes.values() if info.is_predictor and "predict" in info.methods
    )
    return findings, examined


def analyze_source(source: str, filename: str = "<string>") -> List[Finding]:
    """Analyze one source string (unit-test / mutation-test entry point)."""
    tree = ast.parse(source, filename=filename)
    classes = _collect_classes(tree, filename)
    return analyze_classes(classes, {filename: source.splitlines()})
