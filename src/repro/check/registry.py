"""Registry and public-API consistency checker.

Five families of invariants, all cheap to verify exhaustively:

* **export resolution** — for every audited module that declares
  ``__all__``: each listed name resolves via ``getattr``, and no name
  is listed twice. A stale ``__all__`` silently breaks
  ``from repro import *`` users and the docs' public-API promise.
* **export completeness** — every public (non-underscore) class or
  function *defined at top level* of a module that declares ``__all__``
  is actually listed there. (Re-exporting ``__init__`` packages are
  audited for resolution only — their curation is deliberate.)
* **scheme constructibility** — every row of the paper's Table 3
  (:func:`~repro.predictors.registry.paper_table3_specs`) formats to a
  string that re-parses to an equal spec and builds a working
  predictor (training-dependent rows get a probe training trace);
  every Figure 11 factory builds; a representative friendly name from
  each grammar family builds.
* **cost-model coverage** — every two-level Table 3 row is accepted by
  the paper's cost equations (:func:`repro.core.cost.cost_two_level`
  and the per-scheme closed forms), so no registered configuration can
  fall outside the Figure 9/10 cost axes.
* **docstring coverage** — the check analyzers themselves
  (:data:`DOCSTRING_AUDITED_MODULES`) must carry a module docstring
  and document every ``__all__`` export: an analyzer that gates CI
  without documenting its rules is a finding.
"""

from __future__ import annotations

import ast
import importlib
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

from .report import ERROR, Finding

_ANALYZER = "registry"

#: Modules audited for __all__ resolution (packages and modules alike).
AUDITED_MODULES: Tuple[str, ...] = (
    "repro",
    "repro.core",
    "repro.predictors",
    "repro.sim",
    "repro.trace",
    "repro.workloads",
    "repro.sim.engine",
    "repro.sim.kernels",
    "repro.sim.parallel",
    "repro.trace.stream",
    "repro.trace.synthetic",
    "repro.obs",
    "repro.obs.metrics",
    "repro.obs.report",
    "repro.obs.ledger",
    "repro.obs.live",
    "repro.obs.log",
    "repro.obs.spans",
    "repro.obs.resources",
    "repro.obs.prom",
    "repro.analysis",
    "repro.analysis.bounds",
    "repro.analysis.breakdown",
    "repro.analysis.interference",
    "repro.analysis.predictability",
    "repro.check.kernels",
    "repro.check.concurrency",
    "repro.check.resources",
)

#: Modules additionally audited for docstring coverage: the module
#: itself and every name in its ``__all__`` must carry a docstring.
#: The check analyzers document invariants the CI gate enforces, so an
#: undocumented rule is itself a finding.
DOCSTRING_AUDITED_MODULES: Tuple[str, ...] = (
    "repro.check.kernels",
    "repro.check.concurrency",
    "repro.check.resources",
)

#: Friendly-grammar representatives: one per production of the
#: make_predictor grammar documented in repro.predictors.registry.
FRIENDLY_REPRESENTATIVES: Tuple[str, ...] = (
    "gag-6",
    "gap-6",
    "gshare-6",
    "pag-6-a3-64x2",
    "pap-4-lt-ideal",
    "sag-4x8",
    "sas-4x8",
    "gselect-3+3",
    "tournament",
    "gsg-6",
    "psg-6",
    "btb-a2",
    "btb-lt",
    "always-taken",
    "always-not-taken",
    "btfn",
    "profile",
)


def _finding(rule: str, location: str, message: str) -> Finding:
    return Finding(_ANALYZER, f"registry/{rule}", ERROR, location, message)


def _module_file(module) -> Optional[Path]:
    origin = getattr(module, "__file__", None)
    return Path(origin) if origin else None


def _audit_exports(module_name: str) -> List[Finding]:
    findings: List[Finding] = []
    try:
        module = importlib.import_module(module_name)
    except Exception as exc:
        return [_finding("import", module_name, f"module failed to import: {exc!r}")]
    exported = getattr(module, "__all__", None)
    if exported is None:
        return findings
    seen = set()
    for name in exported:
        if name in seen:
            findings.append(_finding(
                "duplicate-export", module_name, f"__all__ lists {name!r} twice"
            ))
        seen.add(name)
        try:
            getattr(module, name)
        except AttributeError:
            findings.append(_finding(
                "broken-export", module_name,
                f"__all__ lists {name!r} but the module does not provide it",
            ))
    # Completeness only for plain modules: __init__ files re-export a
    # curated surface and legitimately define nothing themselves.
    path = _module_file(module)
    if path is None or path.name == "__init__.py":
        return findings
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            name = node.name
            if not name.startswith("_") and name not in seen:
                findings.append(_finding(
                    "missing-export", f"{path}:{node.lineno}",
                    f"public {type(node).__name__.replace('Def', '').lower()} "
                    f"{name!r} is not listed in {module_name}.__all__",
                ))
    return findings


def _audit_docstrings(module_name: str) -> List[Finding]:
    findings: List[Finding] = []
    try:
        module = importlib.import_module(module_name)
    except Exception as exc:
        return [_finding("import", module_name, f"module failed to import: {exc!r}")]
    if not (getattr(module, "__doc__", None) or "").strip():
        findings.append(_finding(
            "missing-docstring", module_name, "module has no docstring"
        ))
    for name in getattr(module, "__all__", ()):
        obj = getattr(module, name, None)
        if obj is None:
            continue  # broken-export is _audit_exports' finding, not ours
        if not (getattr(obj, "__doc__", None) or "").strip():
            findings.append(_finding(
                "missing-docstring", f"{module_name}.{name}",
                f"exported {name!r} has no docstring",
            ))
    return findings


def _audit_schemes() -> List[Finding]:
    from ..core.naming import SchemeSpec
    from ..predictors.base import BranchPredictor
    from ..predictors.registry import (
        figure11_factories,
        make_predictor,
        paper_table3_specs,
    )
    from .pickling import training_trace

    findings: List[Finding] = []
    training = training_trace()

    for spec in paper_table3_specs(history_bits=6):
        text = spec.format()
        try:
            reparsed = SchemeSpec.parse(text)
        except Exception as exc:
            findings.append(_finding(
                "spec-round-trip", text, f"formatted spec fails to re-parse: {exc!r}"
            ))
            continue
        if reparsed != spec:
            findings.append(_finding(
                "spec-round-trip", text,
                f"format/parse round-trip changed the spec: {reparsed}",
            ))
        try:
            predictor = spec.build(training)
        except Exception as exc:
            findings.append(_finding(
                "spec-build", text, f"Table 3 row does not build: {exc!r}"
            ))
            continue
        if not isinstance(predictor, BranchPredictor):
            findings.append(_finding(
                "spec-build", text,
                f"build() returned {type(predictor).__name__}, not a BranchPredictor",
            ))

    for label, factory in figure11_factories().items():
        try:
            predictor = factory(training)
        except Exception as exc:
            findings.append(_finding(
                "figure11-build", label, f"factory does not build: {exc!r}"
            ))
            continue
        if not isinstance(predictor, BranchPredictor):
            findings.append(_finding(
                "figure11-build", label,
                f"factory returned {type(predictor).__name__}, not a BranchPredictor",
            ))

    for name in FRIENDLY_REPRESENTATIVES:
        try:
            make_predictor(name, training)
        except Exception as exc:
            findings.append(_finding(
                "friendly-name", name, f"make_predictor rejects it: {exc!r}"
            ))
    return findings


def _audit_cost_coverage() -> List[Finding]:
    from ..core.cost import cost_gag, cost_pag, cost_pap, cost_two_level
    from ..predictors.registry import paper_table3_specs

    findings: List[Finding] = []
    for spec in paper_table3_specs(history_bits=6):
        scheme = spec.scheme.upper()
        k = spec.history_bits or spec.pattern_bits
        try:
            if scheme == "GAG":
                cost_gag(k)
            elif scheme == "GSG":
                # A GHR + preset global table: GAg's shape with 1-bit entries.
                cost_gag(k, pattern_entry_bits=1)
            elif scheme == "PSG" and spec.history_size is not None:
                cost_pag(spec.history_size, spec.history_assoc or 1, k,
                         pattern_entry_bits=1)
            elif scheme == "PAG" and spec.history_size is not None:
                cost_pag(spec.history_size, spec.history_assoc or 1, k)
            elif scheme == "PAP" and spec.history_size is not None:
                cost_pap(spec.history_size, spec.history_assoc or 1, k)
            elif scheme == "BTB" and spec.history_size is not None:
                # A BTB is structurally a 1-deep pattern level: the
                # general equation covers it with k clamped to 1.
                cost_two_level(spec.history_size, spec.history_assoc or 1, 1)
            elif spec.history_size is None:
                # Ideal (infinite) structures have no finite silicon
                # cost — the paper plots them as bounds only.
                continue
            else:
                findings.append(_finding(
                    "cost-coverage", spec.format(),
                    f"no cost equation covers scheme {spec.scheme!r}",
                ))
        except Exception as exc:
            findings.append(_finding(
                "cost-coverage", spec.format(),
                f"cost model rejects this registered configuration: {exc!r}",
            ))
    return findings


def check_registry(
    modules: Optional[Iterable[str]] = None,
) -> Tuple[List[Finding], int]:
    """Run the registry/export consistency checker.

    Returns:
        (findings, number of audited modules + schemes).
    """
    findings: List[Finding] = []
    audited = tuple(AUDITED_MODULES if modules is None else modules)
    for module_name in audited:
        findings.extend(_audit_exports(module_name))
    examined = len(audited)
    if modules is None:
        for module_name in DOCSTRING_AUDITED_MODULES:
            findings.extend(_audit_docstrings(module_name))
        findings.extend(_audit_schemes())
        findings.extend(_audit_cost_coverage())
        from ..predictors.registry import paper_table3_specs

        examined += len(paper_table3_specs()) + len(FRIENDLY_REPRESENTATIVES)
    return findings, examined
