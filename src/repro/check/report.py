"""Findings and reports for the static-analysis subsystem.

Every analyzer in :mod:`repro.check` returns a list of
:class:`Finding` objects; the driver collects them into a
:class:`CheckReport` which knows how to render itself as text or JSON
and how to map findings onto process exit codes.

Severities:

* ``error`` — an invariant the simulator's correctness depends on is
  violated (non-total automaton table, predict-time state mutation,
  unpicklable spec, broken export). Always fails the check.
* ``warning`` — a hazard that does not provably break results (e.g. an
  opaque call the purity analyzer cannot prove pure). Fails only under
  ``--strict``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

ERROR = "error"
WARNING = "warning"

_SEVERITIES = (ERROR, WARNING)


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by an analyzer.

    Attributes:
        analyzer: analyzer name ("automata", "purity", ...).
        rule: stable rule identifier, e.g. ``purity/predict-mutates-state``.
        severity: ``"error"`` or ``"warning"``.
        location: where the violation lives — ``path.py:123``, an
            automaton name, or a dotted module path.
        message: human-readable diagnostic, specific enough to act on.
    """

    analyzer: str
    rule: str
    severity: str
    location: str
    message: str

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def to_dict(self) -> Dict[str, str]:
        return {
            "analyzer": self.analyzer,
            "rule": self.rule,
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
        }

    def format(self) -> str:
        return f"{self.severity}: {self.location}: [{self.rule}] {self.message}"


@dataclass
class CheckReport:
    """The aggregate outcome of a verification run."""

    findings: List[Finding] = field(default_factory=list)
    analyzers_run: List[str] = field(default_factory=list)
    #: analyzer -> number of objects it examined (automata, classes,
    #: specs...); lets the report prove the analyzers actually looked.
    examined: Dict[str, int] = field(default_factory=dict)

    def extend(self, analyzer: str, findings: Iterable[Finding], examined: int) -> None:
        """Record one analyzer's results."""
        self.analyzers_run.append(analyzer)
        self.examined[analyzer] = examined
        self.findings.extend(findings)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def exit_code(self, strict: bool = False) -> int:
        """0 clean, 1 findings (errors always; warnings under strict)."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "analyzers": [
                {"name": name, "examined": self.examined.get(name, 0)}
                for name in self.analyzers_run
            ],
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def format_text(self, verbose: bool = False) -> str:
        """Render the human-readable report."""
        lines: List[str] = []
        for name in self.analyzers_run:
            count = self.examined.get(name, 0)
            related = [f for f in self.findings if f.analyzer == name]
            status = "ok" if not any(f.severity == ERROR for f in related) else "FAIL"
            lines.append(f"[{status:>4}] {name:<12} examined {count} object(s), "
                         f"{len(related)} finding(s)")
        for finding in self.findings:
            lines.append("  " + finding.format())
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s) "
            f"from {len(self.analyzers_run)} analyzer(s)"
        )
        return "\n".join(lines)
