"""Findings and reports for the static-analysis subsystem.

Every analyzer in :mod:`repro.check` returns a list of
:class:`Finding` objects; the driver collects them into a
:class:`CheckReport` which knows how to render itself as text or JSON
and how to map findings onto process exit codes.

Severities:

* ``error`` — an invariant the simulator's correctness depends on is
  violated (non-total automaton table, predict-time state mutation,
  unpicklable spec, broken export). Always fails the check.
* ``warning`` — a hazard that does not provably break results (e.g. an
  opaque call the purity analyzer cannot prove pure). Fails only under
  ``--strict``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

ERROR = "error"
WARNING = "warning"

_SEVERITIES = (ERROR, WARNING)

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

#: Schema tag of the committed baseline-suppression file.
BASELINE_SCHEMA = "repro.check.baseline/1"


def _split_location(location: str) -> Tuple[str, Optional[int]]:
    """Split ``path.py:123`` into (path, line); non-file locations
    (automaton names, dotted modules) return (location, None)."""
    path, sep, line = location.rpartition(":")
    if sep and line.isdigit():
        return path, int(line)
    return location, None


def _normalize_path(path: str) -> str:
    """A machine-independent, repo-relative rendering of ``path``.

    Findings carry absolute paths (handy in terminals); SARIF viewers
    and baseline fingerprints need paths that agree between a laptop
    and a CI runner, so anchor on the working directory or, failing
    that, the ``src/repro`` package root.
    """
    text = path.replace("\\", "/")
    try:
        return Path(text).resolve().relative_to(Path.cwd()).as_posix()
    except (OSError, ValueError):
        pass
    index = text.rfind("src/repro/")
    if index > 0:
        return text[index:]
    return text


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by an analyzer.

    Attributes:
        analyzer: analyzer name ("automata", "purity", ...).
        rule: stable rule identifier, e.g. ``purity/predict-mutates-state``.
        severity: ``"error"`` or ``"warning"``.
        location: where the violation lives — ``path.py:123``, an
            automaton name, or a dotted module path.
        message: human-readable diagnostic, specific enough to act on.
    """

    analyzer: str
    rule: str
    severity: str
    location: str
    message: str

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def to_dict(self) -> Dict[str, str]:
        return {
            "analyzer": self.analyzer,
            "rule": self.rule,
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
        }

    def format(self) -> str:
        return f"{self.severity}: {self.location}: [{self.rule}] {self.message}"

    def fingerprint(self) -> str:
        """Stable identity for baseline suppression.

        Hashes the rule, the *line-stripped, repo-relative* location and
        the message — so a suppressed finding keeps matching when
        unrelated edits shift line numbers or the checkout moves, but
        any change to what the finding says makes it a new finding.
        """
        anchor, _ = _split_location(self.location)
        payload = "\n".join(
            (self.analyzer, self.rule, _normalize_path(anchor), self.message)
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_sarif(self, rule_index: int) -> Dict[str, object]:
        """This finding as a SARIF 2.1.0 ``result`` object."""
        path, line = _split_location(self.location)
        location: Dict[str, object]
        if line is not None:
            location = {
                "physicalLocation": {
                    "artifactLocation": {"uri": _normalize_path(path)},
                    "region": {"startLine": line},
                }
            }
        else:
            # Non-file subjects (an automaton, a dotted module path)
            # are logical locations in SARIF's vocabulary.
            location = {"logicalLocations": [{"name": self.location}]}
        return {
            "ruleId": self.rule,
            "ruleIndex": rule_index,
            "level": self.severity,
            "message": {"text": self.message},
            "locations": [location],
            "partialFingerprints": {"reproCheck/v1": self.fingerprint()},
        }


@dataclass
class CheckReport:
    """The aggregate outcome of a verification run."""

    findings: List[Finding] = field(default_factory=list)
    analyzers_run: List[str] = field(default_factory=list)
    #: analyzer -> number of objects it examined (automata, classes,
    #: specs...); lets the report prove the analyzers actually looked.
    examined: Dict[str, int] = field(default_factory=dict)
    #: findings removed by a baseline-suppression file; kept as a count
    #: so a "clean" report still discloses what it is not showing.
    suppressed: int = 0

    def extend(self, analyzer: str, findings: Iterable[Finding], examined: int) -> None:
        """Record one analyzer's results."""
        self.analyzers_run.append(analyzer)
        self.examined[analyzer] = examined
        self.findings.extend(findings)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def exit_code(self, strict: bool = False) -> int:
        """0 clean, 1 findings (errors always; warnings under strict)."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def apply_baseline(self, fingerprints: Set[str]) -> int:
        """Drop findings whose :meth:`Finding.fingerprint` is baselined.

        Returns the number suppressed (also accumulated on
        :attr:`suppressed`). Errors and warnings suppress alike: the
        baseline exists to let the strict gate stay green over *known*,
        deliberately deferred findings while anything new still fails.
        """
        kept = [f for f in self.findings if f.fingerprint() not in fingerprints]
        dropped = len(self.findings) - len(kept)
        self.findings = kept
        self.suppressed += dropped
        return dropped

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "analyzers": [
                {"name": name, "examined": self.examined.get(name, 0)}
                for name in self.analyzers_run
            ],
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "suppressed": self.suppressed,
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_sarif(self) -> Dict[str, object]:
        """The report as a SARIF 2.1.0 log (one run, one tool driver).

        Rules are collected from the findings in first-appearance order
        and referenced by index, as SARIF consumers expect; the whole
        document validates against the 2.1.0 schema
        (``json.schemastore.org/sarif-2.1.0.json``).
        """
        rule_index: Dict[str, int] = {}
        rules: List[Dict[str, object]] = []
        results: List[Dict[str, object]] = []
        for finding in self.findings:
            if finding.rule not in rule_index:
                rule_index[finding.rule] = len(rules)
                rules.append({
                    "id": finding.rule,
                    "defaultConfiguration": {"level": finding.severity},
                })
            results.append(finding.to_sarif(rule_index[finding.rule]))
        return {
            "version": SARIF_VERSION,
            "$schema": SARIF_SCHEMA_URI,
            "runs": [{
                "tool": {
                    "driver": {
                        "name": "repro.check",
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }],
        }

    def to_sarif_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_sarif(), indent=indent, sort_keys=False)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def format_text(self, verbose: bool = False) -> str:
        """Render the human-readable report."""
        lines: List[str] = []
        for name in self.analyzers_run:
            count = self.examined.get(name, 0)
            related = [f for f in self.findings if f.analyzer == name]
            status = "ok" if not any(f.severity == ERROR for f in related) else "FAIL"
            lines.append(f"[{status:>4}] {name:<12} examined {count} object(s), "
                         f"{len(related)} finding(s)")
        for finding in self.findings:
            lines.append("  " + finding.format())
        trailer = (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s) "
            f"from {len(self.analyzers_run)} analyzer(s)"
        )
        if self.suppressed:
            trailer += f"; {self.suppressed} finding(s) baseline-suppressed"
        lines.append(trailer)
        return "\n".join(lines)


def load_baseline(path: Union[str, Path]) -> Set[str]:
    """Fingerprints from a baseline-suppression file.

    Raises:
        ValueError: malformed file or unknown schema — a broken
            baseline must fail loudly, not silently suppress nothing
            (or worse, everything).
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: not a {BASELINE_SCHEMA} baseline file"
        )
    suppressions = data.get("suppressions")
    if not isinstance(suppressions, list):
        raise ValueError(f"{path}: 'suppressions' must be a list")
    fingerprints: Set[str] = set()
    for record in suppressions:
        if not isinstance(record, dict) or not isinstance(
            record.get("fingerprint"), str
        ):
            raise ValueError(f"{path}: each suppression needs a 'fingerprint'")
        fingerprints.add(record["fingerprint"])
    return fingerprints


def write_baseline(path: Union[str, Path], report: CheckReport) -> int:
    """Snapshot ``report``'s findings as the new baseline.

    Each suppression records the fingerprint plus the human-readable
    rule/location/message so the committed file is reviewable — the
    reviewer sees exactly what is being waved through. Returns the
    number of suppressions written.
    """
    seen: Set[str] = set()
    records: List[Dict[str, str]] = []
    for finding in report.findings:
        fingerprint = finding.fingerprint()
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        anchor, _ = _split_location(finding.location)
        records.append({
            "fingerprint": fingerprint,
            "rule": finding.rule,
            "location": _normalize_path(anchor),
            "message": finding.message,
        })
    records.sort(key=lambda r: (r["rule"], r["location"], r["fingerprint"]))
    payload = {"schema": BASELINE_SCHEMA, "suppressions": records}
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return len(records)
