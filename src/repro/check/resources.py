"""Resource-discipline lint for the trace/ledger I/O layer.

The trace substrate promises two things about durable files (PR 5/6):
no reader ever observes a torn file (writes go to a unique temporary
sibling and are published by one atomic rename), and a published file
is actually on disk (fsync before rename — ``os.replace`` alone only
orders the *name*, not the bytes, so a crash can publish an empty
file). Handles must be bounded too: an ``open``/``mmap`` with no
reachable ``close`` leaks a descriptor per call, which the parallel
sweeps turn into EMFILE. This analyzer enforces the discipline over
the ASTs of ``repro.trace.io``, ``repro.trace.stream``,
``repro.trace.cache`` and ``repro.obs.ledger``:

* ``res/unmanaged-handle`` — an ``open(...)``/``path.open(...)``/
  ``mmap.mmap(...)`` call that is not context-managed (``with``), not
  assigned to a local with a reachable ``.close()`` in the same
  function, not returned (ownership transfer), and not stored on
  ``self`` with a matching ``self.<attr>.close()`` somewhere in the
  same class (the writer/streamed-trace pattern).
* ``res/non-atomic-write`` — a durable write (``write_text``/
  ``write_bytes``/open-for-write) in a function with no
  ``os.replace``/``Path.replace`` publish step: readers can observe
  the half-written file, and a crash leaves it behind.
  Append-mode opens are exempt (an append-only log is its own
  discipline — see the next rule).
* ``res/replace-without-fsync`` — a function that writes and then
  atomically renames but never calls ``os.fsync``: after a power
  failure the rename may survive while the data does not, publishing
  a truncated file. The fix is flush + ``os.fsync(fileno())`` before
  ``os.replace`` (the pattern ``TraceWriter.finalize`` established).
* ``res/append-without-fsync`` — an append-mode open with no
  ``os.fsync`` in the same function; an append-only ledger's records
  must be durable once ``append`` returns.

Per-line escape hatch: ``# check: allow(<rule>)``, as everywhere in
:mod:`repro.check`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from .purity import _pragma_allows
from .report import ERROR, Finding

__all__ = [
    "check_resources",
    "default_paths",
    "scan_source",
]

_ANALYZER = "resources"

_WRITE_MODES = ("w", "a", "x", "+")


def _finding(rule: str, location: str, message: str, severity: str = ERROR) -> Finding:
    return Finding(_ANALYZER, f"res/{rule}", severity, location, message)


def _open_mode(node: ast.Call) -> Optional[str]:
    """The mode string of an ``open``-family call, if statically known.

    Returns the literal mode, ``"r"`` for a defaulted mode, or ``None``
    when the call is not an open or the mode is dynamic.
    """
    func = node.func
    mode_pos: Optional[int] = None
    if isinstance(func, ast.Name) and func.id == "open":
        mode_pos = 1
    elif isinstance(func, ast.Attribute) and func.attr == "open":
        mode_pos = 0
    if mode_pos is None:
        return None
    for kw in node.keywords:
        if kw.arg == "mode":
            if isinstance(kw.value, ast.Constant) and isinstance(kw.value.value, str):
                return kw.value.value
            return None
    if len(node.args) > mode_pos:
        arg = node.args[mode_pos]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        return None
    return "r"


def _targets_tmp(node: ast.Call) -> bool:
    """Whether a write call's destination is a temporary-sibling name.

    Writing a ``tmp``-named target is the sanctioned *first* step of the
    atomic-publish pattern — the durability obligations attach to the
    rename/fsync step, which other rules check — so such writes are not
    in-place durable writes. Recognized: ``tmp.open(...)``,
    ``self._tmp.open(...)``, ``open(tmp, ...)``, ``tmp.write_text(...)``.
    """
    candidates: List[ast.expr] = []
    func = node.func
    if isinstance(func, ast.Attribute):
        candidates.append(func.value)
    elif isinstance(func, ast.Name) and func.id == "open" and node.args:
        candidates.append(node.args[0])
    for expr in candidates:
        if isinstance(expr, ast.Name) and "tmp" in expr.id.lower():
            return True
        if isinstance(expr, ast.Attribute) and "tmp" in expr.attr.lower():
            return True
    return False


def _is_mmap_call(node: ast.Call) -> bool:
    func = node.func
    return (isinstance(func, ast.Attribute) and func.attr == "mmap"
            and isinstance(func.value, ast.Name) and func.value.id == "mmap")


def _is_handle_call(node: ast.Call) -> bool:
    return _open_mode(node) is not None or _is_mmap_call(node)


def _calls_in(node: ast.AST, attr: str) -> bool:
    """Whether any ``<x>.<attr>(...)`` call occurs under ``node``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute) \
                and sub.func.attr == attr:
            return True
    return False


def _has_fsync(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "fsync":
            return True
    return False


def _has_replace(fn: ast.AST) -> bool:
    """An atomic publish: ``os.replace(src, dst)`` or the single-argument
    ``Path.replace(target)`` (``str.replace`` needs two arguments, so a
    one-argument ``.replace`` is unambiguous)."""
    for node in ast.walk(fn):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr != "replace" or node.keywords:
            continue
        if isinstance(node.func.value, ast.Name) and node.func.value.id == "os" \
                and len(node.args) == 2:
            return True
        if len(node.args) == 1:
            return True
    return False


def _walk_shallow(fn: ast.AST):
    """Walk ``fn``'s body without descending into nested ``def``s —
    those are scanned as functions in their own right."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _closed_names(fn: ast.AST) -> Set[str]:
    """Local names with a reachable ``name.close()`` under ``fn``."""
    closed: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "close" \
                and isinstance(node.func.value, ast.Name):
            closed.add(node.func.value.id)
    return closed


def _returned_names(fn: ast.AST) -> Set[str]:
    """Names returned *as values* (ownership transfer): ``return x`` or
    ``return x, y``. A name merely used inside the return expression
    (``return stream.read()``) hands nothing to the caller."""
    returned: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and node.value is not None:
            values = (node.value.elts
                      if isinstance(node.value, (ast.Tuple, ast.List))
                      else [node.value])
            for value in values:
                if isinstance(value, ast.Name):
                    returned.add(value.id)
    return returned


def _with_context_calls(fn: ast.AST) -> Set[int]:
    """ids of Call nodes used as ``with`` context expressions (directly
    or through ``contextlib.closing(...)``)."""
    managed: Set[int] = set()
    for node in ast.walk(fn):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                managed.add(id(expr))
                for arg in expr.args:
                    if isinstance(arg, ast.Call):
                        managed.add(id(arg))
    return managed


def _with_entered_names(fn: ast.AST) -> Set[str]:
    """Names later entered as a ``with`` context (``f = open(...); with f:``)."""
    names: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Name):
                    names.add(item.context_expr.id)
    return names


def _self_closed_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attributes with a ``self.<attr>.close()`` anywhere in the class."""
    closed: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "close":
            receiver = node.func.value
            if isinstance(receiver, ast.Attribute) \
                    and isinstance(receiver.value, ast.Name) \
                    and receiver.value.id == "self":
                closed.add(receiver.attr)
    return closed


class _Scanner:
    def __init__(self, filename: str, source_lines: Sequence[str]) -> None:
        self.filename = filename
        self.source_lines = source_lines
        self.findings: List[Finding] = []

    def _add(self, rule: str, lineno: int, message: str) -> None:
        if _pragma_allows(self.source_lines, lineno, f"res/{rule}"):
            return
        self.findings.append(_finding(rule, f"{self.filename}:{lineno}", message))

    def scan_function(self, fn, cls: Optional[ast.ClassDef]) -> None:
        managed_calls = _with_context_calls(fn)
        closed = _closed_names(fn)
        returned = _returned_names(fn)
        entered = _with_entered_names(fn)
        class_closed = _self_closed_attrs(cls) if cls is not None else set()

        wrote = False          # any durable write happens in this body
        append_lines: List[int] = []
        nonatomic_lines: List[int] = []

        for node in _walk_shallow(fn):
            if not isinstance(node, ast.Call):
                continue
            # -- durable writes ----------------------------------------
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in ("write_text", "write_bytes"):
                wrote = True
                if not _targets_tmp(node):
                    nonatomic_lines.append(node.lineno)
            mode = _open_mode(node)
            if mode is not None and any(flag in mode for flag in _WRITE_MODES):
                wrote = True
                if "a" in mode:
                    append_lines.append(node.lineno)
                elif not _targets_tmp(node):
                    nonatomic_lines.append(node.lineno)
            # -- handle management -------------------------------------
            if not _is_handle_call(node) or id(node) in managed_calls:
                continue
            parent_assign = self._assignment_target(fn, node)
            if parent_assign is None:
                self._add(
                    "unmanaged-handle", node.lineno,
                    "open/mmap result is neither context-managed nor bound "
                    "to a name; the handle leaks until garbage collection",
                )
                continue
            kind, name = parent_assign
            if kind == "local":
                if name not in closed and name not in returned \
                        and name not in entered:
                    self._add(
                        "unmanaged-handle", node.lineno,
                        f"handle {name!r} is opened but never closed, "
                        "returned or entered as a context in this function",
                    )
            elif kind == "self":
                if name not in class_closed:
                    self._add(
                        "unmanaged-handle", node.lineno,
                        f"self.{name} holds an open handle but no "
                        f"self.{name}.close() exists anywhere in the class",
                    )
            # opaque targets (subscripts, tuple unpacks) are left alone:
            # the analyzer cannot track them without false positives

        if not wrote:
            return
        has_replace = _has_replace(fn)
        has_fsync = _has_fsync(fn)
        if has_replace and not has_fsync:
            self._add(
                "replace-without-fsync", fn.lineno,
                f"{fn.name!r} writes and atomically renames but never "
                "fsyncs; after a crash the rename can survive while the "
                "data does not, publishing a truncated file — flush and "
                "os.fsync(fileno()) before os.replace",
            )
        if not has_replace:
            for lineno in nonatomic_lines:
                self._add(
                    "non-atomic-write", lineno,
                    f"{fn.name!r} writes its destination in place with no "
                    "atomic-rename publish; readers can observe a torn "
                    "file — write a tmp sibling, fsync, then os.replace",
                )
        for lineno in append_lines:
            if not has_fsync:
                self._add(
                    "append-without-fsync", lineno,
                    f"append-mode write in {fn.name!r} is never fsynced; "
                    "records must be durable once the append returns",
                )

    @staticmethod
    def _assignment_target(fn, call: ast.Call) -> Optional[Tuple[str, str]]:
        """(kind, name) when ``call`` is the RHS of a simple assignment:
        ``("local", name)`` or ``("self", attr)``; else ``None``."""
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign) or node.value is not call:
                continue
            if len(node.targets) != 1:
                return None
            target = node.targets[0]
            if isinstance(target, ast.Name):
                return ("local", target.id)
            if isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                return ("self", target.attr)
            return None
        return None


def default_paths() -> List[Path]:
    """The durable-I/O surface covered by the resource discipline."""
    package = Path(__file__).resolve().parent.parent
    return [
        package / "trace" / "io.py",
        package / "trace" / "stream.py",
        package / "trace" / "cache.py",
        package / "obs" / "ledger.py",
    ]


class _TopWalk(ast.NodeVisitor):
    """Visit every function with its enclosing class (if any)."""

    def __init__(self, scanner: _Scanner) -> None:
        self.scanner = scanner
        self._cls: Optional[ast.ClassDef] = None

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        previous, self._cls = self._cls, node
        self.generic_visit(node)
        self._cls = previous

    def _visit_fn(self, node) -> None:
        self.scanner.scan_function(node, self._cls)
        self.generic_visit(node)  # nested defs are scanned independently

    visit_FunctionDef = _visit_fn
    visit_AsyncFunctionDef = _visit_fn


def scan_source(source: str, filename: str = "<string>") -> List[Finding]:
    """Scan one source string (unit-test entry point)."""
    tree = ast.parse(source, filename=filename)
    scanner = _Scanner(filename, source.splitlines())
    _TopWalk(scanner).visit(tree)
    return scanner.findings


def check_resources(
    paths: Optional[Iterable[Path]] = None,
) -> Tuple[List[Finding], int]:
    """Run the resource-discipline lint.

    Returns:
        (findings, number of files examined).
    """
    findings: List[Finding] = []
    count = 0
    for path in default_paths() if paths is None else paths:
        path = Path(path)
        findings.extend(scan_source(path.read_text(encoding="utf-8"), str(path)))
        count += 1
    return findings, count
