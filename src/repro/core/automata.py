"""Pattern-history automata (the paper's Figure 2).

Each entry of a pattern history table holds the state of a small finite
state machine (a Moore machine in the paper's formulation): the
prediction function ``lambda`` maps the state to a direction, and the
transition function ``delta`` maps (state, outcome) to the next state.

The paper studies five automata:

* **Last-Time (LT)** — one bit; predict whatever happened last time.
* **A1** — a two-bit shift register of the last two outcomes; predict
  not-taken only when *neither* of the last two outcomes was taken.
* **A2** — the classic two-bit saturating up/down counter; predict taken
  when the count is >= 2. (J. Smith's BTB counter, applied per pattern.)
* **A3, A4** — "variations of A2" (the paper's state-diagram figure is
  an image; see DESIGN.md §2.3 for the reconstruction). We implement A3
  as A2 with a fast fall (a not-taken observed in state 2 drops straight
  to 0) and A4 as A2 with a fast rise (a taken observed in state 1 jumps
  straight to 3). Both are classic Lee & Smith two-bit variants and
  reproduce the paper's ordering LT < A1 < {A2, A3, A4}.

For static training (GSg/PSg) the table entry is a frozen **preset bit
(PB)** whose state never changes.

Automata are represented as immutable :class:`AutomatonSpec` lookup
tables; predictor state is just an integer, so tables of automata are
plain integer arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple


@dataclass(frozen=True)
class AutomatonSpec:
    """An immutable prediction automaton.

    Attributes:
        name: short identifier used in configuration strings ("A2", "LT"...).
        bits: storage bits per table entry (the paper's ``s``).
        initial_state: reset state. The paper initialises A1–A4 to state
            3 and Last-Time to state 1 so cold entries predict taken.
        transitions: ``transitions[state][outcome]`` -> next state, with
            outcome 0 = not taken, 1 = taken.
        predictions: ``predictions[state]`` -> predicted direction.
    """

    name: str
    bits: int
    initial_state: int
    transitions: Tuple[Tuple[int, int], ...]
    predictions: Tuple[bool, ...]

    def __post_init__(self) -> None:
        num_states = len(self.transitions)
        if num_states == 0:
            raise ValueError("automaton needs at least one state")
        if num_states > (1 << self.bits):
            raise ValueError(
                f"{num_states} states do not fit in {self.bits} bits"
            )
        if len(self.predictions) != num_states:
            raise ValueError("predictions/transitions length mismatch")
        if not 0 <= self.initial_state < num_states:
            raise ValueError("initial state out of range")
        for state, (on_not_taken, on_taken) in enumerate(self.transitions):
            for nxt in (on_not_taken, on_taken):
                if not 0 <= nxt < num_states:
                    raise ValueError(
                        f"state {state} transitions to invalid state {nxt}"
                    )

    @property
    def num_states(self) -> int:
        return len(self.transitions)

    def next_state(self, state: int, taken: bool) -> int:
        """The transition function delta(S, R)."""
        return self.transitions[state][1 if taken else 0]

    def predict(self, state: int) -> bool:
        """The prediction decision function lambda(S)."""
        return self.predictions[state]

    def __str__(self) -> str:
        return self.name


def _shift2(state: int, taken: bool) -> int:
    return ((state << 1) | (1 if taken else 0)) & 0b11


LAST_TIME = AutomatonSpec(
    name="LT",
    bits=1,
    initial_state=1,
    transitions=((0, 1), (0, 1)),
    predictions=(False, True),
)
"""Predict the outcome of the previous occurrence of the pattern."""


A1 = AutomatonSpec(
    name="A1",
    bits=2,
    initial_state=3,
    transitions=tuple((_shift2(s, False), _shift2(s, True)) for s in range(4)),
    predictions=(False, True, True, True),
)
"""Two-bit shift register of the last two outcomes; predict not-taken
only when neither of the last two outcomes was taken (state 00)."""


A2 = AutomatonSpec(
    name="A2",
    bits=2,
    initial_state=3,
    transitions=((0, 1), (0, 2), (1, 3), (2, 3)),
    predictions=(False, False, True, True),
)
"""Two-bit saturating up/down counter; predict taken when state >= 2."""


A3 = AutomatonSpec(
    name="A3",
    bits=2,
    initial_state=3,
    transitions=((0, 1), (0, 2), (0, 3), (2, 3)),
    predictions=(False, False, True, True),
)
"""A2 variant with a fast fall: a not-taken in state 2 drops to 0."""


A4 = AutomatonSpec(
    name="A4",
    bits=2,
    initial_state=3,
    transitions=((0, 1), (0, 3), (1, 3), (2, 3)),
    predictions=(False, False, True, True),
)
"""A2 variant with a fast rise: a taken in state 1 jumps to 3."""


def preset_bit(direction: bool) -> AutomatonSpec:
    """A frozen one-bit entry used by the Static Training schemes.

    The state never changes regardless of observed outcomes; it encodes
    the profiled majority direction for the pattern.
    """
    state = 1 if direction else 0
    return AutomatonSpec(
        name="PB",
        bits=1,
        initial_state=state,
        transitions=((0, 0), (1, 1)),
        predictions=(False, True),
    )


PRESET_TAKEN = preset_bit(True)
PRESET_NOT_TAKEN = preset_bit(False)


def saturating_counter(bits: int, initial: int | None = None) -> AutomatonSpec:
    """A generalized n-bit saturating up/down counter.

    Predicts taken in the upper half of the state space. ``bits=2``
    reproduces :data:`A2` (up to the initial state). Provided as an
    extension knob beyond the paper's two-bit automata.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    num_states = 1 << bits
    top = num_states - 1
    transitions = tuple(
        (max(s - 1, 0), min(s + 1, top)) for s in range(num_states)
    )
    predictions = tuple(s >= num_states // 2 for s in range(num_states))
    init = top if initial is None else initial
    return AutomatonSpec(
        name=f"SC{bits}",
        bits=bits,
        initial_state=init,
        transitions=transitions,
        predictions=predictions,
    )


def shift_register_automaton(bits: int, threshold: int = 1) -> AutomatonSpec:
    """An n-bit outcome shift register predicting taken when the number
    of recorded taken outcomes is >= ``threshold``.

    ``bits=2, threshold=1`` reproduces :data:`A1`; ``bits=1`` reproduces
    Last-Time behaviour (with an all-ones initial state).
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    num_states = 1 << bits
    mask = num_states - 1
    transitions = tuple(
        (((s << 1) & mask), ((s << 1) | 1) & mask) for s in range(num_states)
    )
    predictions = tuple(bin(s).count("1") >= threshold for s in range(num_states))
    return AutomatonSpec(
        name=f"SR{bits}t{threshold}",
        bits=bits,
        initial_state=mask,
        transitions=transitions,
        predictions=predictions,
    )


_PACKED_STATES = 4
IDENTITY_CODE = 0b11100100
"""The packed code of the identity map on 4 states (see
:func:`packed_transition_code`)."""


def packed_transition_code(spec: AutomatonSpec, taken: bool) -> int:
    """Pack one outcome's transition function into a single byte.

    State ``s``'s successor occupies bits ``2s..2s+1``; states beyond
    ``num_states`` map to themselves so composition stays closed. The
    byte encoding is what lets the vectorized kernels compose automaton
    steps with a 256x256 lookup table (:mod:`repro.sim.kernels`).

    Raises:
        ValueError: when the automaton has more than 4 states (e.g.
            wide :func:`saturating_counter` extensions).
    """
    if spec.num_states > _PACKED_STATES:
        raise ValueError(
            f"packed transition codes hold at most {_PACKED_STATES} states, "
            f"{spec.name} has {spec.num_states}"
        )
    code = 0
    for state in range(_PACKED_STATES):
        nxt = spec.next_state(state, taken) if state < spec.num_states else state
        code |= nxt << (2 * state)
    return code


def _compose_code(first: int, second: int) -> int:
    """Packed code of ``second`` applied after ``first``."""
    code = 0
    for state in range(_PACKED_STATES):
        mid = (first >> (2 * state)) & 0b11
        code |= ((second >> (2 * mid)) & 0b11) << (2 * state)
    return code


def supports_vector_scan(spec: AutomatonSpec) -> bool:
    """Whether the vectorized kernels can drive this automaton.

    Requires at most 4 states (so a state fits two bits) and, for each
    outcome ``o``, ``f_o^4 == f_o^3`` — i.e. repeating one outcome
    reaches a fixed point within three steps, which lets a run of
    identical outcomes be scored in closed form. Every paper automaton
    (LT, A1-A4) and the preset bit satisfy this; it rules out only
    exotic extensions such as >2-bit counters.
    """
    if spec.num_states > _PACKED_STATES:
        return False
    for taken in (False, True):
        f1 = packed_transition_code(spec, taken)
        f2 = _compose_code(f1, f1)
        f3 = _compose_code(f2, f1)
        f4 = _compose_code(f3, f1)
        if f4 != f3:
            return False
    return True


PAPER_AUTOMATA: Dict[str, AutomatonSpec] = {
    "LT": LAST_TIME,
    "A1": A1,
    "A2": A2,
    "A3": A3,
    "A4": A4,
}
"""The five automata evaluated in the paper's Figure 5, by name."""


def automaton_by_name(name: str) -> AutomatonSpec:
    """Look up one of the paper's automata by its short name."""
    try:
        return PAPER_AUTOMATA[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown automaton {name!r}; expected one of {sorted(PAPER_AUTOMATA)}"
        ) from None


def simulate_sequence(spec: AutomatonSpec, outcomes: Sequence[bool]) -> Tuple[int, int]:
    """Run ``spec`` standalone over an outcome sequence.

    Returns:
        (correct predictions, total) — handy for tests and for studying
        an automaton in isolation from the table machinery.
    """
    state = spec.initial_state
    correct = 0
    for outcome in outcomes:
        if spec.predict(state) == bool(outcome):
            correct += 1
        state = spec.next_state(state, bool(outcome))
    return correct, len(outcomes)
