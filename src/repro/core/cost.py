"""Hardware cost model (the paper's §3.4, Equations 3-6).

The paper characterises the relative silicon cost of the three
variations with a parameterised expression over abstract constant base
costs — storage cell ``C_s``, decoder ``C_d``, comparator ``C_c``,
multiplexer ``C_m``, shifter ``C_sh``, LRU incrementor ``C_i``, and
pattern-update finite-state machine ``C_a``. The constants are never
given numeric values; the qualitative conclusions (GAg exponential in
k, PAg cheapest at iso-accuracy, PAp dominated by the BHT size) hold
for any positive choice. We default every constant to 1.0 and also ship
a transistor-count-flavoured alternative.

Terminology (paper's symbols):
    a — branch address bits;           h — BHT entries;
    j — log2(associativity);           i — log2(h);
    k — history register bits;         s — pattern entry bits;
    p — number of pattern tables (1 for GAg/PAg, h for PAp).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostParams:
    """Constant base costs and the machine's address width."""

    address_bits: int = 32
    c_storage: float = 1.0
    c_decoder: float = 1.0
    c_comparator: float = 1.0
    c_mux: float = 1.0
    c_shifter: float = 1.0
    c_incrementor: float = 1.0
    c_automaton: float = 1.0

    def scaled(self, factor: float) -> "CostParams":
        """All constants multiplied by ``factor`` (address width kept)."""
        return replace(
            self,
            c_storage=self.c_storage * factor,
            c_decoder=self.c_decoder * factor,
            c_comparator=self.c_comparator * factor,
            c_mux=self.c_mux * factor,
            c_shifter=self.c_shifter * factor,
            c_incrementor=self.c_incrementor * factor,
            c_automaton=self.c_automaton * factor,
        )


UNIT_COSTS = CostParams()
"""Every constant = 1.0: the paper's abstract relative-cost view."""

TRANSISTOR_COSTS = CostParams(
    address_bits=32,
    c_storage=6.0,      # 6T SRAM cell per stored bit
    c_decoder=8.0,      # per decoded row
    c_comparator=10.0,  # per compared bit
    c_mux=4.0,          # per multiplexed bit
    c_shifter=8.0,      # per shift-register bit
    c_incrementor=12.0, # per LRU counter bit
    c_automaton=6.0,    # per state-updater gate-equivalent
)
"""Rough transistor-count weights, for absolute-flavoured comparisons."""


def _log2_int(value: int, what: str) -> int:
    result = int(math.log2(value))
    if 1 << result != value:
        raise ValueError(f"{what} must be a power of two, got {value}")
    return result


@dataclass(frozen=True)
class CostBreakdown:
    """Itemised cost of one configuration (paper Equation 3 terms)."""

    bht_storage: float
    bht_access_logic: float
    bht_update_logic: float
    pht_storage: float
    pht_access_logic: float
    pht_update_logic: float
    pattern_tables: int

    @property
    def bht_total(self) -> float:
        return self.bht_storage + self.bht_access_logic + self.bht_update_logic

    @property
    def pht_total(self) -> float:
        """Cost of all ``pattern_tables`` pattern history tables."""
        return self.pattern_tables * (
            self.pht_storage + self.pht_access_logic + self.pht_update_logic
        )

    @property
    def total(self) -> float:
        return self.bht_total + self.pht_total


def cost_two_level(
    bht_entries: int,
    associativity: int,
    history_bits: int,
    pattern_entry_bits: int = 2,
    pattern_tables: int = 1,
    params: CostParams = UNIT_COSTS,
) -> CostBreakdown:
    """Paper Equation 3 — the full itemised cost.

    Args:
        bht_entries: h (use 1 for GAg's single register).
        associativity: 2^j ways (use 1 for GAg / direct-mapped).
        history_bits: k.
        pattern_entry_bits: s (2 for the A automata, 1 for LT/PB).
        pattern_tables: p (1 for GAg/PAg, h for PAp).
        params: constant base costs.
    """
    h = bht_entries
    k = history_bits
    s = pattern_entry_bits
    p = pattern_tables
    a = params.address_bits
    if h < 1 or k < 1 or s < 1 or p < 1:
        raise ValueError("all structural parameters must be >= 1")
    j = _log2_int(associativity, "associativity")
    i = _log2_int(h, "bht_entries") if h > 1 else 0
    if a + j < i:
        raise ValueError("address bits too small for this table (a + j < i)")
    tag_bits = a - i + j

    if h == 1:
        # GAg's single untagged register: no tags, no access logic.
        bht_storage = (k + 1) * params.c_storage
        bht_access = 0.0
        bht_update = k * params.c_shifter
    else:
        bht_storage = h * (tag_bits + k + 1 + j) * params.c_storage
        bht_access = (
            h * params.c_decoder
            + (1 << j) * tag_bits * params.c_comparator
            + (1 << j) * k * params.c_mux
        )
        bht_update = h * k * params.c_shifter + (1 << j) * j * params.c_incrementor

    pht_storage = (1 << k) * s * params.c_storage
    pht_access = (1 << k) * params.c_decoder
    pht_update = s * (1 << (s + 1)) * params.c_automaton

    return CostBreakdown(
        bht_storage=bht_storage,
        bht_access_logic=bht_access,
        bht_update_logic=bht_update,
        pht_storage=pht_storage,
        pht_access_logic=pht_access,
        pht_update_logic=pht_update,
        pattern_tables=p,
    )


def cost_gag(
    history_bits: int,
    pattern_entry_bits: int = 2,
    params: CostParams = UNIT_COSTS,
) -> float:
    """Paper Equation 4 — simplified GAg cost.

    cost ≈ (k+1)·C_s + k·C_sh + 2^k·(s·C_s + C_d); exponential in k.
    """
    k = history_bits
    s = pattern_entry_bits
    return (
        (k + 1) * params.c_storage
        + k * params.c_shifter
        + (1 << k) * (s * params.c_storage + params.c_decoder)
    )


def cost_pag(
    bht_entries: int,
    associativity: int,
    history_bits: int,
    pattern_entry_bits: int = 2,
    params: CostParams = UNIT_COSTS,
) -> float:
    """Paper Equation 5 — simplified PAg cost.

    Exponential in k (the single pattern table), linear in h (the BHT).
    """
    h = bht_entries
    k = history_bits
    s = pattern_entry_bits
    a = params.address_bits
    j = _log2_int(associativity, "associativity")
    i = _log2_int(h, "bht_entries")
    if a + j < i:
        raise ValueError("address bits too small for this table (a + j < i)")
    bht = h * (
        (a + 2 * j + k + 1 - i) * params.c_storage
        + params.c_decoder
        + k * params.c_shifter
    )
    pht = (1 << k) * (s * params.c_storage + params.c_decoder)
    return bht + pht


def cost_pap(
    bht_entries: int,
    associativity: int,
    history_bits: int,
    pattern_entry_bits: int = 2,
    params: CostParams = UNIT_COSTS,
) -> float:
    """Paper Equation 6 — simplified PAp cost.

    Like PAg but with h pattern tables: the BHT size h multiplies the
    exponential pattern-table term and dominates.
    """
    h = bht_entries
    k = history_bits
    s = pattern_entry_bits
    a = params.address_bits
    j = _log2_int(associativity, "associativity")
    i = _log2_int(h, "bht_entries")
    if a + j < i:
        raise ValueError("address bits too small for this table (a + j < i)")
    bht = h * (
        (a + 2 * j + k + 1 - i) * params.c_storage
        + params.c_decoder
        + k * params.c_shifter
    )
    pht = h * (1 << k) * (s * params.c_storage + params.c_decoder)
    return bht + pht


def storage_bits(
    bht_entries: int,
    associativity: int,
    history_bits: int,
    pattern_entry_bits: int = 2,
    pattern_tables: int = 1,
    address_bits: int = 32,
) -> int:
    """Pure storage-bit count (no logic), a common secondary metric."""
    h = bht_entries
    k = history_bits
    j = _log2_int(associativity, "associativity")
    i = _log2_int(h, "bht_entries") if h > 1 else 0
    tag_bits = max(address_bits - i + j, 0)
    if h == 1:
        bht_bits = k + 1
    else:
        bht_bits = h * (tag_bits + k + 1 + j)
    pht_bits = pattern_tables * (1 << k) * pattern_entry_bits
    return bht_bits + pht_bits
