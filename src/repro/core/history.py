"""First-level branch history: history registers and branch history tables.

The first level of a two-level predictor records the directions of
recent branches in k-bit shift registers. GAg keeps a single **global
history register**; PAg and PAp keep one register per static branch in a
**per-address branch history table (BHT)** which, in any real
implementation, is a tagged cache (the paper simulates direct-mapped and
4-way set-associative 256/512-entry tables plus an infinite "ideal" one).

This module provides:

* history-register bit manipulation helpers,
* :class:`BHTEntry` — one (tag, history, LRU) record,
* :class:`IdealBHT` — unbounded, never evicts (the paper's IBHT),
* :class:`CacheBHT` — set-associative/direct-mapped with true-LRU
  replacement, per the paper's §3.3,
* hit/miss statistics used to explain the Fig 10 accuracy differences.

The paper's initialisation protocol (§4.2) is honoured by callers via
the ``fresh`` flag: a newly-allocated history register is set to all 1s
(branches are taken-biased); after the *first* resolution of the branch
that missed, the outcome bit is extended through the whole register
rather than shifted in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple


def history_mask(bits: int) -> int:
    """All-ones mask for a ``bits``-wide history register."""
    if bits < 1:
        raise ValueError("history register needs at least one bit")
    return (1 << bits) - 1


def history_update(value: int, taken: bool, bits: int) -> int:
    """Shift ``taken`` into the least-significant end of the register."""
    return ((value << 1) | (1 if taken else 0)) & history_mask(bits)


def history_fill(taken: bool, bits: int) -> int:
    """A register with ``taken`` extended through every bit position.

    This is the paper's post-miss initialisation: "After the result of
    the branch which causes the branch history table miss is known, the
    result bit is extended throughout the history register."
    """
    return history_mask(bits) if taken else 0


def history_bits_string(value: int, bits: int) -> str:
    """Render a register as the paper writes patterns, e.g. ``11100101``."""
    return format(value & history_mask(bits), f"0{bits}b")


@dataclass
class BHTEntry:
    """One branch-history-table entry.

    Attributes:
        tag: upper address bits identifying the resident branch.
        value: the entry payload — a history-register value for
            two-level schemes, or an automaton state for BTB designs.
        fresh: True until the entry's first update after allocation
            (drives the outcome-extension initialisation).
        slot: stable physical slot index (set * associativity + way);
            PAp hangs one pattern history table off each slot.
        lru: last-use tick for LRU replacement.
        valid: whether the entry currently holds a branch.
    """

    tag: int = 0
    value: int = 0
    fresh: bool = True
    slot: int = 0
    lru: int = 0
    valid: bool = False


@dataclass
class BHTStats:
    """Access statistics for a branch history table."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-compatible snapshot (used by the observability probes)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "flushes": self.flushes,
            "hit_rate": self.hit_rate,
        }

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.flushes = 0


class IdealBHT:
    """The paper's IBHT: one history register per static branch, no
    capacity limit, no tags, no evictions."""

    def __init__(self, init_value: int = 0) -> None:
        self._init_value = init_value
        self._entries: Dict[int, BHTEntry] = {}
        self._next_slot = 0
        self.stats = BHTStats()

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    @property
    def occupancy(self) -> int:
        """Resident entries — for the ideal table, every branch seen."""
        return len(self._entries)

    def access(self, pc: int) -> Tuple[BHTEntry, bool]:
        """Find (or allocate) the entry for ``pc``.

        Returns:
            (entry, hit) — ``hit`` is False when the entry was allocated
            by this access.
        """
        entry = self._entries.get(pc)
        if entry is not None:
            self.stats.hits += 1
            return entry, True
        self.stats.misses += 1
        entry = BHTEntry(
            tag=pc,
            value=self._init_value,
            fresh=True,
            slot=self._next_slot,
            valid=True,
        )
        self._next_slot += 1
        self._entries[pc] = entry
        return entry, False

    def peek(self, pc: int) -> Optional[BHTEntry]:
        """Look up without allocating or touching statistics."""
        return self._entries.get(pc)

    def probe_victim(self, pc: int) -> Tuple[int, bool]:
        """Read-only: the (slot, would_evict) a missing ``pc`` would get.

        The ideal BHT never evicts; a miss always opens a brand-new slot.
        """
        return self._next_slot, False

    def flush(self) -> None:
        """Context switch: drop all history (slots are retired too)."""
        self._entries.clear()
        self.stats.flushes += 1

    def entries_snapshot(self) -> Dict[int, Tuple[int, bool, int, bool]]:
        """``pc -> (value, fresh, slot, valid)`` for every resident entry.

        A cheap, copy-safe dump used by the vectorized-backend
        equivalence tests to assert kernels never mutate first-level
        state.
        """
        return {
            pc: (entry.value, entry.fresh, entry.slot, entry.valid)
            for pc, entry in self._entries.items()
        }

    def __iter__(self) -> Iterator[BHTEntry]:
        return iter(self._entries.values())


class CacheBHT:
    """A practical branch history table (paper §3.3).

    A ``num_entries``-entry, ``associativity``-way set-associative cache
    with true-LRU replacement within each set. ``associativity=1`` gives
    the direct-mapped configurations. The low bits of the branch address
    index the set; the remaining bits are the tag.
    """

    def __init__(
        self,
        num_entries: int,
        associativity: int = 1,
        init_value: int = 0,
    ) -> None:
        if num_entries < 1:
            raise ValueError("num_entries must be >= 1")
        if associativity < 1:
            raise ValueError("associativity must be >= 1")
        if num_entries % associativity != 0:
            raise ValueError("num_entries must be a multiple of associativity")
        self.num_entries = num_entries
        self.associativity = associativity
        self.num_sets = num_entries // associativity
        self._init_value = init_value
        self._tick = 0
        self._sets: List[List[BHTEntry]] = [
            [
                BHTEntry(slot=set_index * associativity + way)
                for way in range(associativity)
            ]
            for set_index in range(self.num_sets)
        ]
        self.stats = BHTStats()
        self.evicted_slots: List[int] = []

    def _locate(self, pc: int) -> Tuple[List[BHTEntry], int]:
        set_index = pc % self.num_sets
        tag = pc // self.num_sets
        return self._sets[set_index], tag

    def access(self, pc: int) -> Tuple[BHTEntry, bool]:
        """Find (or allocate, evicting LRU) the entry for ``pc``.

        Returns:
            (entry, hit). On a miss the returned entry is freshly
            initialised; if a valid victim was displaced its slot id is
            appended to :attr:`evicted_slots` so PAp can reinitialise the
            slot's pattern table.
        """
        entries, tag = self._locate(pc)
        self._tick += 1
        for entry in entries:
            if entry.valid and entry.tag == tag:
                entry.lru = self._tick
                self.stats.hits += 1
                return entry, True
        self.stats.misses += 1
        victim = self._select_victim(entries)
        if victim.valid:
            self.stats.evictions += 1
            self.evicted_slots.append(victim.slot)
        victim.tag = tag
        victim.value = self._init_value
        victim.fresh = True
        victim.valid = True
        victim.lru = self._tick
        return victim, False

    @staticmethod
    def _select_victim(entries: List[BHTEntry]) -> BHTEntry:
        """LRU victim choice within a set (invalid ways claimed first)."""
        victim = entries[0]
        for entry in entries[1:]:
            if not victim.valid:
                break
            if not entry.valid or entry.lru < victim.lru:
                victim = entry
        return victim

    def peek(self, pc: int) -> Optional[BHTEntry]:
        """Look up without allocating, LRU update, or statistics."""
        entries, tag = self._locate(pc)
        for entry in entries:
            if entry.valid and entry.tag == tag:
                return entry
        return None

    def probe_victim(self, pc: int) -> Tuple[int, bool]:
        """Read-only: the (slot, would_evict) a miss on ``pc`` would take.

        Lets predictors reason about the consequences of a future miss
        (e.g. PAp's pattern-table reset policy) without mutating the
        table the way :meth:`access` does.
        """
        entries, _tag = self._locate(pc)
        victim = self._select_victim(entries)
        return victim.slot, victim.valid

    def flush(self) -> None:
        """Context switch: invalidate every entry (paper §4.2)."""
        for entries in self._sets:
            for entry in entries:
                entry.valid = False
                entry.fresh = True
        self.stats.flushes += 1

    def drain_evicted_slots(self) -> List[int]:
        """Return and clear the list of slots whose occupant changed."""
        slots = self.evicted_slots
        self.evicted_slots = []
        return slots

    def entries_snapshot(self) -> Dict[int, Tuple[int, bool, int, bool]]:
        """``slot -> (value, fresh, tag, valid)`` for every way.

        Invalid ways are included (their stale tags matter to LRU victim
        choice); see :meth:`IdealBHT.entries_snapshot` for the intended
        use by equivalence tests.
        """
        return {
            entry.slot: (entry.value, entry.fresh, entry.tag, entry.valid)
            for entries in self._sets
            for entry in entries
        }

    def __iter__(self) -> Iterator[BHTEntry]:
        for entries in self._sets:
            for entry in entries:
                if entry.valid:
                    yield entry

    @property
    def occupancy(self) -> int:
        return sum(1 for _ in self)


def make_bht(
    num_entries: Optional[int],
    associativity: int = 1,
    init_value: int = 0,
):
    """Factory: ``num_entries=None`` yields the ideal BHT."""
    if num_entries is None:
        return IdealBHT(init_value=init_value)
    return CacheBHT(num_entries, associativity, init_value=init_value)
