"""The paper's predictor naming convention (§4.2, Table 3).

Configurations are written
``Scheme(History(Size,Associativity,Entry_Content), SetSize x Pattern(Size,Entry_Content), ContextSwitch)``
e.g. ``PAg(BHT(512,4,12-sr),1xPHT(2^12,A2),c)``. Fields a scheme lacks
are left blank: ``BTB(BHT(512,4,A2),,)``.

:class:`SchemeSpec` is the structured form; it parses from and formats
to the paper's strings and can instantiate the corresponding predictor.
Static-training schemes (GSg/PSg) need a training trace to instantiate,
supplied via the ``training_trace`` argument.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from ..predictors.base import BranchPredictor
from ..trace.events import Trace
from .automata import AutomatonSpec, automaton_by_name
from .static_training import GSgPredictor, PSgPredictor
from .twolevel import (
    GAgPredictor,
    GApPredictor,
    GsharePredictor,
    PAgPredictor,
    PApPredictor,
    TwoLevelConfig,
)

_SR_RE = re.compile(r"^(\d+)-sr$")
_POW_RE = re.compile(r"^2\^(\d+)$")

_SPEC_RE = re.compile(
    r"""^
    (?P<scheme>[A-Za-z]+)\(
      (?P<hist_entity>HR|BHT|IBHT|SHR)\(
        (?P<hist_size>inf|\d*),
        (?P<hist_assoc>\d*),
        (?P<hist_content>[^)]*)
      \),
      (?:
        (?P<pat_tables>inf|\d+)xPHT\(
          (?P<pat_size>2\^\d+|\d+),
          (?P<pat_content>[^)]*)
        \)
      )?,?
      (?P<ctx>c)?
    \)$""",
    re.VERBOSE,
)


class SchemeParseError(ValueError):
    """Raised when a configuration string does not follow the convention."""


@dataclass(frozen=True)
class SchemeSpec:
    """Structured form of one Table 3 configuration row.

    Attributes:
        scheme: GAg / PAg / PAp / GAp / GSg / PSg / BTB / GSHARE.
        history_entity: HR (single register), BHT (practical cache),
            IBHT (ideal, unbounded) or SHR (per-set registers, no tags
            — the SAg/SAs extension variants).
        history_size: BHT entry count; None for HR/IBHT.
        history_assoc: set associativity; None when not applicable.
        history_content: ``"<k>-sr"`` for a k-bit shift register, or an
            automaton name for BTB designs.
        pattern_tables: number of pattern history tables (the paper's
            set size p); None for schemes with no second level.
        pattern_bits: k such that each PHT has 2^k entries.
        pattern_content: automaton name ("A2", "LT", ...) or "PB".
        context_switch: simulate context switches for this config.
    """

    scheme: str
    history_entity: str = "BHT"
    history_size: Optional[int] = 512
    history_assoc: Optional[int] = 4
    history_content: str = "12-sr"
    pattern_tables: Optional[int] = 1
    pattern_bits: Optional[int] = 12
    pattern_content: Optional[str] = "A2"
    context_switch: bool = False

    # ------------------------------------------------------------------
    # Derived accessors
    # ------------------------------------------------------------------
    @property
    def history_bits(self) -> Optional[int]:
        """k when the history entry is a shift register, else None."""
        match = _SR_RE.match(self.history_content)
        return int(match.group(1)) if match else None

    @property
    def ideal_history(self) -> bool:
        return self.history_entity == "IBHT"

    def automaton(self) -> Optional[AutomatonSpec]:
        """The pattern-table automaton, or None for PB / no pattern level."""
        if self.pattern_content in (None, "", "PB"):
            return None
        return automaton_by_name(self.pattern_content)

    def history_automaton(self) -> Optional[AutomatonSpec]:
        """BTB designs keep an automaton in the history table itself."""
        if _SR_RE.match(self.history_content):
            return None
        return automaton_by_name(self.history_content)

    # ------------------------------------------------------------------
    # Formatting / parsing
    # ------------------------------------------------------------------
    def format(self) -> str:
        """Render the canonical Table 3 string."""
        if self.history_size is not None:
            size = str(self.history_size)
        elif self.ideal_history:
            size = "inf"
        elif self.history_entity == "HR":
            size = "1"
        else:
            size = ""
        assoc = "" if self.history_assoc is None else str(self.history_assoc)
        history = f"{self.history_entity}({size},{assoc},{self.history_content})"
        if self.pattern_tables is None:
            pattern = ""
        else:
            tables = "inf" if self.pattern_tables == 0 else str(self.pattern_tables)
            pattern = f"{tables}xPHT(2^{self.pattern_bits},{self.pattern_content})"
        ctx = "c" if self.context_switch else ""
        return f"{self.scheme}({history},{pattern},{ctx})"

    def __str__(self) -> str:
        return self.format()

    @classmethod
    def parse(cls, text: str) -> "SchemeSpec":
        """Parse a Table 3 configuration string."""
        compact = re.sub(r"\s+", "", text)
        match = _SPEC_RE.match(compact)
        if match is None:
            raise SchemeParseError(f"cannot parse scheme string {text!r}")
        groups = match.groupdict()
        hist_size_text = groups["hist_size"]
        if hist_size_text in ("", "inf"):
            history_size: Optional[int] = None
        else:
            history_size = int(hist_size_text)
        history_assoc = int(groups["hist_assoc"]) if groups["hist_assoc"] else None

        pattern_tables: Optional[int]
        pattern_bits: Optional[int]
        pattern_content: Optional[str]
        if groups["pat_tables"] is None:
            pattern_tables = pattern_bits = None
            pattern_content = None
        else:
            pattern_tables = 0 if groups["pat_tables"] == "inf" else int(groups["pat_tables"])
            size_text = groups["pat_size"]
            pow_match = _POW_RE.match(size_text)
            if pow_match:
                pattern_bits = int(pow_match.group(1))
            else:
                entries = int(size_text)
                pattern_bits = entries.bit_length() - 1
                if 1 << pattern_bits != entries:
                    raise SchemeParseError(
                        f"pattern table size {entries} is not a power of two"
                    )
            pattern_content = groups["pat_content"]
        return cls(
            scheme=groups["scheme"],
            history_entity=groups["hist_entity"],
            history_size=history_size,
            history_assoc=history_assoc,
            history_content=groups["hist_content"],
            pattern_tables=pattern_tables,
            pattern_bits=pattern_bits,
            pattern_content=pattern_content,
            context_switch=groups["ctx"] == "c",
        )

    # ------------------------------------------------------------------
    # Instantiation
    # ------------------------------------------------------------------
    def build(self, training_trace: Optional[Trace] = None) -> BranchPredictor:
        """Instantiate the predictor this spec describes.

        Args:
            training_trace: required for GSg/PSg (profiled presets);
                ignored by the adaptive schemes.
        """
        scheme = self.scheme.upper().replace("GSHARE", "GSHARE")
        k = self.history_bits if self.history_bits is not None else self.pattern_bits
        if scheme in ("GAG", "GAP", "GSHARE") and k is None:
            raise SchemeParseError(f"{self.scheme} needs a shift-register history")

        if scheme == "GAG":
            return GAgPredictor(k, self._automaton_or_a2(), name=self.format())
        if scheme == "GAP":
            return GApPredictor(k, self._automaton_or_a2(), name=self.format())
        if scheme == "GSHARE":
            return GsharePredictor(k, self._automaton_or_a2(), name=self.format())
        if scheme in ("PAG", "PAP"):
            config = TwoLevelConfig(
                history_bits=k,
                automaton=self._automaton_or_a2(),
                bht_entries=None if self.ideal_history else self.history_size,
                bht_associativity=self.history_assoc or 1,
            )
            if scheme == "PAG":
                return PAgPredictor(config, name=self.format())
            return PApPredictor(config, name=self.format())
        if scheme in ("SAG", "SAS"):
            from .perset import SAgPredictor, SAsPredictor

            num_sets = self.history_size or 16
            cls = SAgPredictor if scheme == "SAG" else SAsPredictor
            return cls(k, num_sets, self._automaton_or_a2(), name=self.format())
        if scheme == "GSG":
            if training_trace is None:
                raise SchemeParseError("GSg needs a training trace")
            predictor = GSgPredictor.trained_on(training_trace, k)
            predictor.name = self.format()
            return predictor
        if scheme == "PSG":
            if training_trace is None:
                raise SchemeParseError("PSg needs a training trace")
            predictor = PSgPredictor.trained_on(
                training_trace,
                k,
                bht_entries=None if self.ideal_history else self.history_size,
                bht_associativity=self.history_assoc or 1,
            )
            predictor.name = self.format()
            return predictor
        if scheme == "BTB":
            from ..predictors.btb import BTBPredictor

            automaton = self.history_automaton()
            if automaton is None:
                raise SchemeParseError("BTB needs an automaton history content")
            return BTBPredictor(
                num_entries=self.history_size or 512,
                associativity=self.history_assoc or 1,
                automaton=automaton,
                name=self.format(),
            )
        raise SchemeParseError(f"unknown scheme {self.scheme!r}")

    def _automaton_or_a2(self) -> AutomatonSpec:
        automaton = self.automaton()
        if automaton is None:
            from .automata import A2

            return A2
        return automaton
