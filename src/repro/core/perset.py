"""Per-set two-level variants (SAg / SAp / SAs).

This paper's taxonomy (GAg / PAg / PAp) resolves branch history either
globally or per-address. Yeh & Patt's follow-up work ("A Comparison of
Dynamic Branch Predictors that use Two Levels of Branch History",
ISCA 1993) fills in the middle ground: partition static branches into
**sets** by address bits and keep one history register per set — much
cheaper than per-address (no tags: the register is selected by an
address field) while still separating mutually-interfering branches
better than a single global register. The second level can likewise be
global (SAg), per-set (SAs) or per-address (SAp).

We implement the practical corners used in that follow-up:

* :class:`SAgPredictor` — per-set history registers, one global PHT;
* :class:`SAsPredictor` — per-set history registers, one PHT per set.

These sit strictly between GAg and PAg in both cost and accuracy,
which the extension bench verifies on the analog suite — the
cost/accuracy frontier the 1993 paper maps.
"""

from __future__ import annotations

from typing import List, Optional

from ..predictors.base import BranchPredictor
from .automata import A2, AutomatonSpec
from .cost import CostParams, UNIT_COSTS
from .history import history_mask
from .pht import PatternHistoryTable


def _set_index(pc: int, num_sets: int) -> int:
    """Set selection by low address bits (word-granular)."""
    return (pc >> 2) % num_sets


class SAgPredictor(BranchPredictor):
    """Per-set history registers sharing one global pattern table."""

    def __init__(
        self,
        history_bits: int,
        num_sets: int = 16,
        automaton: AutomatonSpec = A2,
        name: Optional[str] = None,
    ) -> None:
        if num_sets < 1:
            raise ValueError("num_sets must be >= 1")
        self.history_bits = history_bits
        self.num_sets = num_sets
        self._mask = history_mask(history_bits)
        self.registers: List[int] = [self._mask] * num_sets
        self.pht = PatternHistoryTable(history_bits, automaton)
        self.name = name or (
            f"SAg(SHR({num_sets},,{history_bits}-sr),1xPHT(2^{history_bits},{automaton.name}))"
        )

    def predict(self, pc: int, target: int = 0) -> bool:
        return self.pht.predict(self.registers[_set_index(pc, self.num_sets)])

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        index = _set_index(pc, self.num_sets)
        history = self.registers[index]
        self.pht.update(history, taken)
        self.registers[index] = ((history << 1) | (1 if taken else 0)) & self._mask

    def on_context_switch(self) -> None:
        """Per-set registers are untagged state: reinitialise them all."""
        self.registers = [self._mask] * self.num_sets

    def reset(self) -> None:
        self.on_context_switch()
        self.pht.reset()


class SAsPredictor(BranchPredictor):
    """Per-set history registers, each with its own pattern table."""

    def __init__(
        self,
        history_bits: int,
        num_sets: int = 16,
        automaton: AutomatonSpec = A2,
        name: Optional[str] = None,
    ) -> None:
        if num_sets < 1:
            raise ValueError("num_sets must be >= 1")
        self.history_bits = history_bits
        self.num_sets = num_sets
        self._mask = history_mask(history_bits)
        self.registers: List[int] = [self._mask] * num_sets
        self.tables: List[PatternHistoryTable] = [
            PatternHistoryTable(history_bits, automaton) for _ in range(num_sets)
        ]
        self.name = name or (
            f"SAs(SHR({num_sets},,{history_bits}-sr),{num_sets}xPHT(2^{history_bits},{automaton.name}))"
        )

    def predict(self, pc: int, target: int = 0) -> bool:
        index = _set_index(pc, self.num_sets)
        return self.tables[index].predict(self.registers[index])

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        index = _set_index(pc, self.num_sets)
        history = self.registers[index]
        self.tables[index].update(history, taken)
        self.registers[index] = ((history << 1) | (1 if taken else 0)) & self._mask

    def on_context_switch(self) -> None:
        self.registers = [self._mask] * self.num_sets

    def reset(self) -> None:
        self.on_context_switch()
        for table in self.tables:
            table.reset()


def cost_sag(
    history_bits: int,
    num_sets: int,
    pattern_entry_bits: int = 2,
    params: CostParams = UNIT_COSTS,
) -> float:
    """SAg cost by the paper's methodology.

    ``num_sets`` untagged registers (storage + shifters, no tags or
    comparators — set selection is pure decode) plus one global PHT.
    """
    k = history_bits
    s = pattern_entry_bits
    registers = num_sets * ((k + 1) * params.c_storage + k * params.c_shifter)
    decoder = num_sets * params.c_decoder
    pht = (1 << k) * (s * params.c_storage + params.c_decoder)
    return registers + decoder + pht


def cost_sas(
    history_bits: int,
    num_sets: int,
    pattern_entry_bits: int = 2,
    params: CostParams = UNIT_COSTS,
) -> float:
    """SAs cost: SAg's first level plus one PHT per set."""
    k = history_bits
    s = pattern_entry_bits
    registers = num_sets * ((k + 1) * params.c_storage + k * params.c_shifter)
    decoder = num_sets * params.c_decoder
    pht = num_sets * (1 << k) * (s * params.c_storage + params.c_decoder)
    return registers + decoder + pht
