"""Second-level pattern history tables.

A pattern history table (PHT) has one entry per possible history-register
pattern — 2^k entries for k history bits — each holding the state of a
prediction automaton (see :mod:`repro.core.automata`).

GAg and PAg use a single global PHT; PAp uses one PHT per branch-history
slot, modelled here by :class:`PHTBank` which materialises tables lazily
(most slots are never touched, and the hardware cost model — not this
simulator — accounts for the full silicon).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .automata import AutomatonSpec


@dataclass
class PHTCounters:
    """Lightweight update counters a pattern table can be asked to keep.

    Attached via :meth:`PatternHistoryTable.attach_counters` (observability
    probes do this at run start); never attached, never paid for — the
    update path performs a single ``is None`` check when detached.

    Attributes:
        updates: total ``update`` calls.
        state_changes: updates that moved the entry to a new automaton
            state (the automaton "learned" something).
        direction_flips: updates that changed the entry's *predicted
            direction* — the destructive subset of state changes, and the
            per-entry signature of second-level interference when many
            static branches share the table.
    """

    updates: int = 0
    state_changes: int = 0
    direction_flips: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "updates": self.updates,
            "state_changes": self.state_changes,
            "direction_flips": self.direction_flips,
        }

    def merged_with(self, other: "PHTCounters") -> "PHTCounters":
        return PHTCounters(
            updates=self.updates + other.updates,
            state_changes=self.state_changes + other.state_changes,
            direction_flips=self.direction_flips + other.direction_flips,
        )


class PatternHistoryTable:
    """A 2^k-entry table of automaton states indexed by history pattern."""

    def __init__(self, history_bits: int, automaton: AutomatonSpec) -> None:
        if history_bits < 1:
            raise ValueError("history_bits must be >= 1")
        self.history_bits = history_bits
        self.automaton = automaton
        self.num_entries = 1 << history_bits
        self._states: List[int] = [automaton.initial_state] * self.num_entries
        # Local bindings of the automaton tables keep the per-branch
        # simulation loop free of attribute lookups.
        self._predictions = automaton.predictions
        self._transitions = automaton.transitions
        self._counters: Optional[PHTCounters] = None

    def predict(self, pattern: int) -> bool:
        """lambda(S_c) for the entry addressed by ``pattern``."""
        return self._predictions[self._states[pattern]]

    def update(self, pattern: int, taken: bool) -> None:
        """S_{c+1} = delta(S_c, R_c) for the entry addressed by ``pattern``."""
        states = self._states
        counters = self._counters
        if counters is None:
            states[pattern] = self._transitions[states[pattern]][1 if taken else 0]
            return
        previous = states[pattern]
        state = self._transitions[previous][1 if taken else 0]
        states[pattern] = state
        counters.updates += 1
        if state != previous:
            counters.state_changes += 1
            if self._predictions[state] != self._predictions[previous]:
                counters.direction_flips += 1

    def state(self, pattern: int) -> int:
        """The raw automaton state for ``pattern`` (for inspection/tests)."""
        return self._states[pattern]

    def set_state(self, pattern: int, state: int) -> None:
        """Force an entry's state (used by static-training presets)."""
        if not 0 <= state < self.automaton.num_states:
            raise ValueError(f"state {state} out of range for {self.automaton.name}")
        self._states[pattern] = state

    def reset(self) -> None:
        """Reinitialise every entry to the automaton's initial state."""
        self._states = [self.automaton.initial_state] * self.num_entries
        self._predictions = self.automaton.predictions
        self._transitions = self.automaton.transitions

    def states_snapshot(self) -> List[int]:
        """A copy of all entry states (for tests and analysis)."""
        return list(self._states)

    def attach_counters(self, counters: Optional[PHTCounters] = None) -> PHTCounters:
        """Start keeping :class:`PHTCounters` on this table.

        Args:
            counters: an existing counter block to accumulate into (used
                by :class:`PHTBank` to share one block across its
                tables); a fresh block is created when omitted.

        Returns:
            The attached counter block.
        """
        if counters is None:
            counters = PHTCounters()
        self._counters = counters
        return counters

    def detach_counters(self) -> None:
        """Stop counting; the update path returns to the fast branch."""
        self._counters = None

    @property
    def counters(self) -> Optional[PHTCounters]:
        """The attached counter block, or ``None`` when detached."""
        return self._counters

    def occupancy(self) -> int:
        """Entries that have left the automaton's initial state.

        A cheap proxy for "patterns this program actually exercised";
        computed on demand so the update path stays counter-free.
        """
        initial = self.automaton.initial_state
        return sum(1 for state in self._states if state != initial)

    @property
    def storage_bits(self) -> int:
        """Raw storage this table represents in hardware."""
        return self.num_entries * self.automaton.bits

    def __len__(self) -> int:
        return self.num_entries


class PresetPatternTable:
    """A frozen pattern table of preset prediction bits (Static Training).

    Built from profiled per-pattern statistics; :meth:`update` is a
    no-op because Lee & Smith's scheme never changes pattern bits at
    run time. Patterns never seen in training fall back to
    ``default_direction`` (taken, matching the taken-biased
    initialisation used everywhere else).
    """

    def __init__(
        self,
        history_bits: int,
        preset: Dict[int, bool],
        default_direction: bool = True,
    ) -> None:
        if history_bits < 1:
            raise ValueError("history_bits must be >= 1")
        self.history_bits = history_bits
        self.num_entries = 1 << history_bits
        self._default_direction = bool(default_direction)
        self._bits: List[bool] = [default_direction] * self.num_entries
        for pattern, direction in preset.items():
            if not 0 <= pattern < self.num_entries:
                raise ValueError(f"pattern {pattern:#x} out of range")
            self._bits[pattern] = bool(direction)

    def predict(self, pattern: int) -> bool:
        return self._bits[pattern]

    def update(self, pattern: int, taken: bool) -> None:
        """Pattern bits are preset: run-time outcomes are ignored."""

    def bits_snapshot(self) -> List[bool]:
        """A copy of every preset bit, indexed by pattern.

        The vectorized kernels turn this into a lookup array; the copy
        keeps the frozen table immutable from the outside.
        """
        return list(self._bits)

    def occupancy(self) -> int:
        """Entries whose preset bit differs from the fallback direction."""
        default = self._default_direction
        return sum(1 for bit in self._bits if bit != default)

    def reset(self) -> None:
        """Preset tables persist across context switches; nothing to do."""

    @property
    def storage_bits(self) -> int:
        return self.num_entries

    def __len__(self) -> int:
        return self.num_entries


class PHTBank:
    """A set of per-address pattern history tables (PAp's PPHT).

    One table per branch-history slot, materialised on first use.
    ``reset_slot`` reinitialises a slot's table when its BHT entry is
    reallocated to a different branch (the default PAp policy — see
    DESIGN.md), and ``reset`` drops everything.
    """

    def __init__(self, history_bits: int, automaton: AutomatonSpec) -> None:
        self.history_bits = history_bits
        self.automaton = automaton
        self._tables: Dict[int, PatternHistoryTable] = {}
        self._counters: Optional[PHTCounters] = None
        self.slot_resets = 0

    def table_for(self, slot: int) -> PatternHistoryTable:
        table = self._tables.get(slot)
        if table is None:
            table = PatternHistoryTable(self.history_bits, self.automaton)
            if self._counters is not None:
                table.attach_counters(self._counters)
            self._tables[slot] = table
        return table

    def attach_counters(self, counters: Optional[PHTCounters] = None) -> PHTCounters:
        """Share one :class:`PHTCounters` block across every table.

        Tables materialised later inherit the block, so the counts cover
        the bank's whole lifetime regardless of allocation order.
        """
        if counters is None:
            counters = PHTCounters()
        self._counters = counters
        for table in self._tables.values():
            table.attach_counters(counters)
        return counters

    def detach_counters(self) -> None:
        self._counters = None
        for table in self._tables.values():
            table.detach_counters()

    @property
    def counters(self) -> Optional[PHTCounters]:
        return self._counters

    def occupancy(self) -> int:
        """Non-initial entries summed over the materialised tables."""
        return sum(table.occupancy() for table in self._tables.values())

    def reset_slot(self, slot: int) -> None:
        table = self._tables.get(slot)
        if table is not None:
            table.reset()
            self.slot_resets += 1

    def reset(self) -> None:
        self._tables.clear()

    def states_snapshot(self) -> Dict[int, List[int]]:
        """Per-slot copies of the materialised tables' entry states.

        Used by the vectorized-backend equivalence tests to assert that
        a kernel run left the predictor's state untouched.
        """
        return {slot: table.states_snapshot() for slot, table in self._tables.items()}

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[PatternHistoryTable]:
        return iter(self._tables.values())

    def peek(self, slot: int) -> Optional[PatternHistoryTable]:
        return self._tables.get(slot)
