"""Second-level pattern history tables.

A pattern history table (PHT) has one entry per possible history-register
pattern — 2^k entries for k history bits — each holding the state of a
prediction automaton (see :mod:`repro.core.automata`).

GAg and PAg use a single global PHT; PAp uses one PHT per branch-history
slot, modelled here by :class:`PHTBank` which materialises tables lazily
(most slots are never touched, and the hardware cost model — not this
simulator — accounts for the full silicon).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .automata import AutomatonSpec


class PatternHistoryTable:
    """A 2^k-entry table of automaton states indexed by history pattern."""

    def __init__(self, history_bits: int, automaton: AutomatonSpec) -> None:
        if history_bits < 1:
            raise ValueError("history_bits must be >= 1")
        self.history_bits = history_bits
        self.automaton = automaton
        self.num_entries = 1 << history_bits
        self._states: List[int] = [automaton.initial_state] * self.num_entries
        # Local bindings of the automaton tables keep the per-branch
        # simulation loop free of attribute lookups.
        self._predictions = automaton.predictions
        self._transitions = automaton.transitions

    def predict(self, pattern: int) -> bool:
        """lambda(S_c) for the entry addressed by ``pattern``."""
        return self._predictions[self._states[pattern]]

    def update(self, pattern: int, taken: bool) -> None:
        """S_{c+1} = delta(S_c, R_c) for the entry addressed by ``pattern``."""
        states = self._states
        states[pattern] = self._transitions[states[pattern]][1 if taken else 0]

    def state(self, pattern: int) -> int:
        """The raw automaton state for ``pattern`` (for inspection/tests)."""
        return self._states[pattern]

    def set_state(self, pattern: int, state: int) -> None:
        """Force an entry's state (used by static-training presets)."""
        if not 0 <= state < self.automaton.num_states:
            raise ValueError(f"state {state} out of range for {self.automaton.name}")
        self._states[pattern] = state

    def reset(self) -> None:
        """Reinitialise every entry to the automaton's initial state."""
        self._states = [self.automaton.initial_state] * self.num_entries
        self._predictions = self.automaton.predictions
        self._transitions = self.automaton.transitions

    def states_snapshot(self) -> List[int]:
        """A copy of all entry states (for tests and analysis)."""
        return list(self._states)

    @property
    def storage_bits(self) -> int:
        """Raw storage this table represents in hardware."""
        return self.num_entries * self.automaton.bits

    def __len__(self) -> int:
        return self.num_entries


class PresetPatternTable:
    """A frozen pattern table of preset prediction bits (Static Training).

    Built from profiled per-pattern statistics; :meth:`update` is a
    no-op because Lee & Smith's scheme never changes pattern bits at
    run time. Patterns never seen in training fall back to
    ``default_direction`` (taken, matching the taken-biased
    initialisation used everywhere else).
    """

    def __init__(
        self,
        history_bits: int,
        preset: Dict[int, bool],
        default_direction: bool = True,
    ) -> None:
        if history_bits < 1:
            raise ValueError("history_bits must be >= 1")
        self.history_bits = history_bits
        self.num_entries = 1 << history_bits
        self._bits: List[bool] = [default_direction] * self.num_entries
        for pattern, direction in preset.items():
            if not 0 <= pattern < self.num_entries:
                raise ValueError(f"pattern {pattern:#x} out of range")
            self._bits[pattern] = bool(direction)

    def predict(self, pattern: int) -> bool:
        return self._bits[pattern]

    def update(self, pattern: int, taken: bool) -> None:
        """Pattern bits are preset: run-time outcomes are ignored."""

    def reset(self) -> None:
        """Preset tables persist across context switches; nothing to do."""

    @property
    def storage_bits(self) -> int:
        return self.num_entries

    def __len__(self) -> int:
        return self.num_entries


class PHTBank:
    """A set of per-address pattern history tables (PAp's PPHT).

    One table per branch-history slot, materialised on first use.
    ``reset_slot`` reinitialises a slot's table when its BHT entry is
    reallocated to a different branch (the default PAp policy — see
    DESIGN.md), and ``reset`` drops everything.
    """

    def __init__(self, history_bits: int, automaton: AutomatonSpec) -> None:
        self.history_bits = history_bits
        self.automaton = automaton
        self._tables: Dict[int, PatternHistoryTable] = {}

    def table_for(self, slot: int) -> PatternHistoryTable:
        table = self._tables.get(slot)
        if table is None:
            table = PatternHistoryTable(self.history_bits, self.automaton)
            self._tables[slot] = table
        return table

    def reset_slot(self, slot: int) -> None:
        table = self._tables.get(slot)
        if table is not None:
            table.reset()

    def reset(self) -> None:
        self._tables.clear()

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[PatternHistoryTable]:
        return iter(self._tables.values())

    def peek(self, slot: int) -> Optional[PatternHistoryTable]:
        return self._tables.get(slot)
