"""Lee & Smith Static Training schemes (the paper's GSg and PSg).

Static Training has the same two-level *structure* as the adaptive
schemes, but the second level is **preset by profiling**: a training run
tallies, for every history pattern, how often the next branch was taken;
the majority direction becomes a frozen prediction bit per pattern. At
test time the first-level history registers still update dynamically,
but the pattern bits never change.

* **GSg** — global history register, preset global pattern table.
* **PSg** — per-address history registers (same BHT configurations as
  the adaptive schemes, for the paper's "fair comparison"), preset
  global pattern table.

The paper's PSp (per-address preset tables) was not simulated there
("requires a lot of storage") and is likewise omitted here.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

from ..predictors.base import BranchPredictor
from ..trace.events import BranchClass, Trace
from .history import history_mask
from .pht import PresetPatternTable
from .twolevel import TwoLevelConfig, _PerAddressBase


def train_global_presets(trace: Trace, history_bits: int) -> Dict[int, bool]:
    """Profile a training trace through a global history register.

    Returns:
        pattern -> majority direction, for every pattern observed.
        Ties resolve to taken (branches are taken-biased overall).
    """
    mask = history_mask(history_bits)
    ghr = mask
    taken_counts: Counter = Counter()
    total_counts: Counter = Counter()
    for pc, taken, cls, _target, _instret, _trap in trace.iter_tuples():
        if cls != BranchClass.CONDITIONAL:
            continue
        total_counts[ghr] += 1
        if taken:
            taken_counts[ghr] += 1
        ghr = ((ghr << 1) | (1 if taken else 0)) & mask
    return {
        pattern: taken_counts[pattern] * 2 >= total_counts[pattern]
        for pattern in total_counts
    }


def train_per_address_presets(
    trace: Trace,
    history_bits: int,
    bht_entries: Optional[int] = None,
    bht_associativity: int = 4,
) -> Dict[int, bool]:
    """Profile a training trace through per-address history registers.

    The first level mirrors the PSg test-time structure (ideal when
    ``bht_entries`` is None). All branches feed one global pattern
    tally, exactly as all PSg history registers index one global preset
    table.
    """
    config = TwoLevelConfig(
        history_bits=history_bits,
        bht_entries=bht_entries,
        bht_associativity=bht_associativity,
    )
    first_level = _TrainingFirstLevel(config)
    taken_counts: Counter = Counter()
    total_counts: Counter = Counter()
    for pc, taken, cls, _target, _instret, _trap in trace.iter_tuples():
        if cls != BranchClass.CONDITIONAL:
            continue
        pattern = first_level.pattern_for(pc)
        total_counts[pattern] += 1
        if taken:
            taken_counts[pattern] += 1
        first_level.record(pc, taken)
    return {
        pattern: taken_counts[pattern] * 2 >= total_counts[pattern]
        for pattern in total_counts
    }


class _TrainingFirstLevel(_PerAddressBase):
    """A first level only — used to replay training traces."""

    name = "training-first-level"

    def pattern_for(self, pc: int) -> int:
        return self._access_entry(pc).value

    def record(self, pc: int, taken: bool) -> None:
        entry = self.bht.peek(pc)
        if entry is None:
            entry = self._access_entry(pc)
        self._advance_history(entry, taken)

    def predict(self, pc: int, target: int = 0) -> bool:  # pragma: no cover
        raise NotImplementedError("training structure does not predict")

    def update(self, pc: int, taken: bool, target: int = 0) -> None:  # pragma: no cover
        raise NotImplementedError("training structure does not predict")


class GSgPredictor(BranchPredictor):
    """Global Static Training: GHR + preset global pattern table."""

    def __init__(
        self,
        history_bits: int,
        presets: Dict[int, bool],
        default_direction: bool = True,
        name: Optional[str] = None,
    ) -> None:
        self.history_bits = history_bits
        self._mask = history_mask(history_bits)
        self.ghr = self._mask
        self.table = PresetPatternTable(history_bits, presets, default_direction)
        self.name = name or f"GSg(HR(1,,{history_bits}-sr),1xPHT(2^{history_bits},PB))"

    @classmethod
    def trained_on(cls, trace: Trace, history_bits: int) -> "GSgPredictor":
        """Build a GSg predictor profiled on ``trace``."""
        return cls(history_bits, train_global_presets(trace, history_bits))

    def predict(self, pc: int, target: int = 0) -> bool:
        return self.table.predict(self.ghr)

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        self.ghr = ((self.ghr << 1) | (1 if taken else 0)) & self._mask

    def on_context_switch(self) -> None:
        self.ghr = self._mask


class PSgPredictor(_PerAddressBase):
    """Per-address Static Training: BHT of HRs + preset global table."""

    def __init__(
        self,
        config: TwoLevelConfig,
        presets: Dict[int, bool],
        default_direction: bool = True,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(config)
        self.table = PresetPatternTable(config.history_bits, presets, default_direction)
        self.name = name or (
            f"PSg({self._bht_label()},1xPHT(2^{config.history_bits},PB))"
        )

    @classmethod
    def trained_on(
        cls,
        trace: Trace,
        history_bits: int,
        bht_entries: Optional[int] = 512,
        bht_associativity: int = 4,
    ) -> "PSgPredictor":
        """Build a PSg predictor profiled on ``trace``.

        Training uses an ideal first level (profiling is offline and has
        no capacity constraint); test time uses the practical BHT.
        """
        presets = train_per_address_presets(trace, history_bits)
        config = TwoLevelConfig(
            history_bits=history_bits,
            bht_entries=bht_entries,
            bht_associativity=bht_associativity,
        )
        return cls(config, presets)

    def predict(self, pc: int, target: int = 0) -> bool:
        # Pure read: a miss would allocate the all-ones taken-biased fill.
        entry = self.bht.peek(pc)
        pattern = entry.value if entry is not None else self._mask
        return self.table.predict(pattern)

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        entry = self._access_entry(pc)
        self._advance_history(entry, taken)
