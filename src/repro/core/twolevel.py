"""Two-Level Adaptive Branch Prediction — the paper's contribution.

Three variations, differentiated by how finely each level resolves its
history (paper §2.2):

* :class:`GAgPredictor` — one **G**\\ lobal history register, one global
  pattern history table. Cheap, but both levels suffer cross-branch
  interference; needs long history registers to perform.
* :class:`PAgPredictor` — **P**\\ er-address history registers (kept in a
  branch history table) sharing one **g**\\ lobal pattern table. First-
  level interference removed; the paper's cost/accuracy sweet spot.
* :class:`PApPredictor` — **p**\\ er-address history *and* per-address
  pattern tables. All interference removed; most expensive.

Plus two extensions beyond the paper (its taxonomy admits them, and the
follow-up literature made them famous):

* :class:`GApPredictor` — global history, per-address pattern tables.
* :class:`GsharePredictor` — global history XOR-folded with the branch
  address into a single table (McFarling's gshare), included as the
  "future work" predictor the paper's 3 %-miss-rate remarks anticipate.

Initialisation follows the paper's §4.2: history registers initialise
to all 1s on a BHT miss, the first resolved outcome is then extended
through the register; pattern-table entries start in the automaton's
taken-leaning initial state. Context switches flush the first level
only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..predictors.base import BranchPredictor
from .automata import A2, AutomatonSpec
from .history import (
    CacheBHT,
    IdealBHT,
    history_fill,
    history_mask,
    make_bht,
)
from .pht import PatternHistoryTable, PHTBank


@dataclass(frozen=True)
class TwoLevelConfig:
    """Configuration shared by the two-level variants.

    Attributes:
        history_bits: k, the history register length.
        automaton: the pattern-table automaton (default A2, as in the
            paper's headline results).
        bht_entries: branch history table capacity for the per-address
            variants; ``None`` selects the ideal (infinite) BHT. Ignored
            by the global-history variants.
        bht_associativity: 1 for direct-mapped, 4 for the paper's
            four-way tables.
        reset_pht_on_evict: PAp policy — reinitialise a slot's pattern
            table when its BHT entry is reallocated to a new branch.
    """

    history_bits: int
    automaton: AutomatonSpec = A2
    bht_entries: Optional[int] = 512
    bht_associativity: int = 4
    reset_pht_on_evict: bool = True

    def __post_init__(self) -> None:
        if self.history_bits < 1:
            raise ValueError("history_bits must be >= 1")
        if self.bht_entries is not None and self.bht_entries < 1:
            raise ValueError("bht_entries must be >= 1 or None for ideal")


class GAgPredictor(BranchPredictor):
    """Global history register + global pattern history table."""

    def __init__(
        self,
        history_bits: int,
        automaton: AutomatonSpec = A2,
        name: Optional[str] = None,
    ) -> None:
        self.history_bits = history_bits
        self.automaton = automaton
        self._mask = history_mask(history_bits)
        self.pht = PatternHistoryTable(history_bits, automaton)
        self.ghr = self._mask  # taken-biased initial fill
        self.name = name or f"GAg(HR(1,,{history_bits}-sr),1xPHT(2^{history_bits},{automaton.name}))"

    def predict(self, pc: int, target: int = 0) -> bool:
        return self.pht.predict(self.ghr)

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        self.pht.update(self.ghr, taken)
        self.ghr = ((self.ghr << 1) | (1 if taken else 0)) & self._mask

    def on_context_switch(self) -> None:
        """Reinitialise the (degenerate, single-register) first level.

        The pattern table is deliberately left alone: the paper found
        the saved process's pattern table is a better starting point
        than a reinitialised one.
        """
        self.ghr = self._mask

    def reset(self) -> None:
        self.ghr = self._mask
        self.pht.reset()


class _PerAddressBase(BranchPredictor):
    """Shared first-level machinery for PAg and PAp."""

    def __init__(self, config: TwoLevelConfig) -> None:
        self.config = config
        self.history_bits = config.history_bits
        self._mask = history_mask(config.history_bits)
        self.bht: Union[IdealBHT, CacheBHT] = make_bht(
            config.bht_entries,
            config.bht_associativity,
            init_value=self._mask,
        )

    def _access_entry(self, pc: int):
        entry, _hit = self.bht.access(pc)
        if isinstance(self.bht, CacheBHT) and self.bht.evicted_slots:
            for slot in self.bht.drain_evicted_slots():
                self._slot_reallocated(slot)
        return entry

    def _slot_reallocated(self, slot: int) -> None:
        """Hook: a BHT slot now holds a different static branch."""

    def _advance_history(self, entry, taken: bool) -> None:
        if entry.fresh:
            entry.value = history_fill(taken, self.history_bits)
            entry.fresh = False
        else:
            entry.value = ((entry.value << 1) | (1 if taken else 0)) & self._mask

    def on_context_switch(self) -> None:
        self.bht.flush()

    def _bht_label(self) -> str:
        config = self.config
        if config.bht_entries is None:
            return f"IBHT(inf,,{config.history_bits}-sr)"
        return f"BHT({config.bht_entries},{config.bht_associativity},{config.history_bits}-sr)"


class PAgPredictor(_PerAddressBase):
    """Per-address history registers + one global pattern history table."""

    def __init__(self, config: TwoLevelConfig, name: Optional[str] = None) -> None:
        super().__init__(config)
        self.automaton = config.automaton
        self.pht = PatternHistoryTable(config.history_bits, config.automaton)
        self.name = name or (
            f"PAg({self._bht_label()},1xPHT(2^{config.history_bits},{config.automaton.name}))"
        )

    def predict(self, pc: int, target: int = 0) -> bool:
        # Pure read: a BHT miss predicts from the all-ones taken-biased
        # fill the entry *would* be allocated with; update() performs
        # the actual allocation and LRU accounting.
        entry = self.bht.peek(pc)
        pattern = entry.value if entry is not None else self._mask
        return self.pht.predict(pattern)

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        entry = self._access_entry(pc)
        self.pht.update(entry.value, taken)
        self._advance_history(entry, taken)

    def reset(self) -> None:
        self.bht.flush()
        self.pht.reset()


class PApPredictor(_PerAddressBase):
    """Per-address history registers + per-address pattern history tables.

    Each physical BHT slot owns one pattern table; by default
    (``reset_pht_on_evict=True``) the table is reinitialised whenever
    the slot is reallocated, since the new resident branch has no claim
    to the previous branch's pattern statistics. With an ideal BHT,
    slots map one-to-one to static branches and nothing is ever reset.
    """

    def __init__(self, config: TwoLevelConfig, name: Optional[str] = None) -> None:
        super().__init__(config)
        self.automaton = config.automaton
        self.bank = PHTBank(config.history_bits, config.automaton)
        pht_count = config.bht_entries if config.bht_entries is not None else "inf"
        self.name = name or (
            f"PAp({self._bht_label()},{pht_count}xPHT(2^{config.history_bits},{config.automaton.name}))"
        )

    def _slot_reallocated(self, slot: int) -> None:
        if self.config.reset_pht_on_evict:
            self.bank.reset_slot(slot)

    def predict(self, pc: int, target: int = 0) -> bool:
        # Pure read mirroring what update()'s allocation would produce:
        # a resident branch reads its slot's table; a miss anticipates
        # the victim slot (whose table resets on eviction under the
        # default policy, or persists under keep-policy) and predicts
        # from the all-ones taken-biased history fill.
        entry = self.bht.peek(pc)
        initial = self.automaton.predictions[self.automaton.initial_state]
        if entry is not None:
            table = self.bank.peek(entry.slot)
            return table.predict(entry.value) if table is not None else initial
        slot, would_evict = self.bht.probe_victim(pc)
        if would_evict and self.config.reset_pht_on_evict:
            return initial
        table = self.bank.peek(slot)
        return table.predict(self._mask) if table is not None else initial

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        entry = self._access_entry(pc)
        self.bank.table_for(entry.slot).update(entry.value, taken)
        self._advance_history(entry, taken)

    def reset(self) -> None:
        self.bht.flush()
        self.bank.reset()


class GApPredictor(BranchPredictor):
    """Global history register + per-address pattern history tables.

    Completes the taxonomy (the paper names GAg/PAg/PAp; GAp is the
    remaining corner and reappears in Yeh & Patt's follow-up work).
    Pattern tables are addressed by branch PC with no capacity limit —
    an idealised model, provided as an extension.
    """

    def __init__(
        self,
        history_bits: int,
        automaton: AutomatonSpec = A2,
        name: Optional[str] = None,
    ) -> None:
        self.history_bits = history_bits
        self.automaton = automaton
        self._mask = history_mask(history_bits)
        self.ghr = self._mask
        self.bank = PHTBank(history_bits, automaton)
        self.name = name or f"GAp(HR(1,,{history_bits}-sr),infxPHT(2^{history_bits},{automaton.name}))"

    def predict(self, pc: int, target: int = 0) -> bool:
        # Pure read: an unmaterialised per-address table would predict
        # from its initial state, so answer that without creating it.
        table = self.bank.peek(pc)
        if table is None:
            return self.automaton.predictions[self.automaton.initial_state]
        return table.predict(self.ghr)

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        self.bank.table_for(pc).update(self.ghr, taken)
        self.ghr = ((self.ghr << 1) | (1 if taken else 0)) & self._mask

    def on_context_switch(self) -> None:
        self.ghr = self._mask

    def reset(self) -> None:
        self.ghr = self._mask
        self.bank.reset()


class GsharePredictor(BranchPredictor):
    """McFarling's gshare: global history XORed with the branch address.

    Not in the paper (it postdates it), included as the natural
    "future work" predictor: it attacks exactly the second-level
    interference the paper measures, at GAg-like cost.
    """

    def __init__(
        self,
        history_bits: int,
        automaton: AutomatonSpec = A2,
        name: Optional[str] = None,
    ) -> None:
        self.history_bits = history_bits
        self.automaton = automaton
        self._mask = history_mask(history_bits)
        self.ghr = 0
        self.pht = PatternHistoryTable(history_bits, automaton)
        self.name = name or f"gshare({history_bits})"

    def _index(self, pc: int) -> int:
        return (self.ghr ^ pc) & self._mask

    def predict(self, pc: int, target: int = 0) -> bool:
        return self.pht.predict(self._index(pc))

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        self.pht.update(self._index(pc), taken)
        self.ghr = ((self.ghr << 1) | (1 if taken else 0)) & self._mask

    def on_context_switch(self) -> None:
        self.ghr = 0

    def reset(self) -> None:
        self.ghr = 0
        self.pht.reset()


def make_gag(history_bits: int, automaton: AutomatonSpec = A2) -> GAgPredictor:
    """Convenience constructor for GAg."""
    return GAgPredictor(history_bits, automaton)


def make_pag(
    history_bits: int,
    automaton: AutomatonSpec = A2,
    bht_entries: Optional[int] = 512,
    bht_associativity: int = 4,
) -> PAgPredictor:
    """Convenience constructor for PAg (paper default: 512-entry 4-way)."""
    return PAgPredictor(
        TwoLevelConfig(
            history_bits=history_bits,
            automaton=automaton,
            bht_entries=bht_entries,
            bht_associativity=bht_associativity,
        )
    )


def make_pap(
    history_bits: int,
    automaton: AutomatonSpec = A2,
    bht_entries: Optional[int] = 512,
    bht_associativity: int = 4,
    reset_pht_on_evict: bool = True,
) -> PApPredictor:
    """Convenience constructor for PAp (paper default: 512-entry 4-way)."""
    return PApPredictor(
        TwoLevelConfig(
            history_bits=history_bits,
            automaton=automaton,
            bht_entries=bht_entries,
            bht_associativity=bht_associativity,
            reset_pht_on_evict=reset_pht_on_evict,
        )
    )
