"""Reproduction drivers for every table and figure in the paper."""

from .figures import (
    ALL_FIGURES,
    FigureResult,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
)
from .export import export_result, matrix_from_json, matrix_to_csv, matrix_to_json
from .extras import (
    ALL_EXTRAS,
    extra_fetch,
    extra_interference,
    extra_speculative,
    extra_taxonomy,
)
from .report import render_accuracy_matrix, render_table
from .tables import ALL_TABLES, TableResult, table1, table2, table3
from .cli import run_experiment

__all__ = [
    "ALL_EXTRAS",
    "ALL_FIGURES",
    "ALL_TABLES",
    "export_result",
    "extra_fetch",
    "extra_interference",
    "extra_speculative",
    "extra_taxonomy",
    "matrix_from_json",
    "matrix_to_csv",
    "matrix_to_json",
    "FigureResult",
    "TableResult",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "render_accuracy_matrix",
    "render_table",
    "run_experiment",
    "table1",
    "table2",
    "table3",
]
