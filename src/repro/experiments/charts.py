"""ASCII charts for figure renderings.

The paper's figures are line graphs of accuracy (76–100 %) per
benchmark. The text tables carry the exact numbers; these helpers add
a visual layer that survives a terminal: horizontal bar charts and
multi-series sparklines.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

__all__ = ["accuracy_bars_from_matrix", "render_bars", "render_series", "render_sparkline"]

_BAR_CHARS = "▏▎▍▌▋▊▉█"
_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    floor: Optional[float] = None,
    ceiling: Optional[float] = None,
    percent: bool = True,
    title: Optional[str] = None,
) -> str:
    """Horizontal bars, scaled between ``floor`` and ``ceiling``.

    Defaults mirror the paper's axes: when all values are accuracies,
    the floor defaults to just below the minimum (so differences are
    visible, as the paper's 76 %-baseline does) and the ceiling to the
    maximum.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        return title or ""
    low = floor if floor is not None else min(values) - 0.02 * (max(values) - min(values) + 1e-9) - 1e-9
    high = ceiling if ceiling is not None else max(values)
    span = max(high - low, 1e-12)
    label_width = max(len(label) for label in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        fraction = min(max((value - low) / span, 0.0), 1.0)
        cells = fraction * width
        full = int(cells)
        remainder = cells - full
        bar = "█" * full
        if remainder > 1e-9 and full < width:
            bar += _BAR_CHARS[min(int(remainder * len(_BAR_CHARS)), len(_BAR_CHARS) - 1)]
        shown = f"{value * 100:6.2f}%" if percent else f"{value:8.4g}"
        lines.append(f"{label.rjust(label_width)} |{bar.ljust(width)}| {shown}")
    return "\n".join(lines)


def render_sparkline(values: Sequence[float], floor: Optional[float] = None, ceiling: Optional[float] = None) -> str:
    """One compact row of block characters for a series."""
    if not values:
        return ""
    low = floor if floor is not None else min(values)
    high = ceiling if ceiling is not None else max(values)
    span = max(high - low, 1e-12)
    cells = []
    for value in values:
        fraction = min(max((value - low) / span, 0.0), 1.0)
        cells.append(_SPARK_CHARS[min(int(fraction * len(_SPARK_CHARS)), len(_SPARK_CHARS) - 1)])
    return "".join(cells)


def render_series(
    series: Mapping[str, Sequence[float]],
    x_labels: Optional[Sequence[object]] = None,
    percent: bool = True,
    title: Optional[str] = None,
) -> str:
    """Multiple named series as aligned sparklines with endpoints.

    All series share one vertical scale so their relative positions
    read correctly (the way the paper overlays GAg/PAg/PAp curves).
    """
    if not series:
        return title or ""
    every_value = [v for values in series.values() for v in values]
    low, high = min(every_value), max(every_value)
    name_width = max(len(name) for name in series)
    lines: List[str] = []
    if title:
        lines.append(title)
    if x_labels is not None:
        lines.append(
            " " * (name_width + 1)
            + " ".join(str(x) for x in x_labels)
        )
    for name, values in series.items():
        spark = render_sparkline(values, floor=low, ceiling=high)
        first = f"{values[0] * 100:.1f}%" if percent else f"{values[0]:.4g}"
        last = f"{values[-1] * 100:.1f}%" if percent else f"{values[-1]:.4g}"
        lines.append(f"{name.rjust(name_width)} {spark}  {first} -> {last}")
    return "\n".join(lines)


def accuracy_bars_from_matrix(matrix, category: Optional[str] = None, title: Optional[str] = None) -> str:
    """Bars of per-scheme geometric means from a ResultMatrix."""
    labels = list(matrix.schemes)
    values = [matrix.gmean(scheme, category) for scheme in labels]
    order = sorted(range(len(labels)), key=lambda i: -values[i])
    return render_bars(
        [labels[i] for i in order],
        [values[i] for i in order],
        title=title,
    )
