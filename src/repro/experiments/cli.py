"""Command-line entry point: regenerate any table or figure.

Usage::

    repro-experiments list
    repro-experiments fig11
    repro-experiments fig6 --scale 2
    repro-experiments all --out results/
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from ..workloads.suite import SuiteConfig, build_cases
from .extras import ALL_EXTRAS
from .figures import ALL_FIGURES
from .tables import ALL_TABLES

_TRACELESS = {"table2", "table3"}


def _experiment_ids() -> List[str]:
    return list(ALL_TABLES) + list(ALL_FIGURES) + list(ALL_EXTRAS)


def run_experiment(experiment_id: str, scale: int = 1, cases=None):
    """Run one experiment by id, returning its result object."""
    if experiment_id in ALL_TABLES:
        if experiment_id in _TRACELESS:
            return ALL_TABLES[experiment_id]()
        return ALL_TABLES[experiment_id](cases=cases, scale=scale)
    if experiment_id in ALL_FIGURES:
        return ALL_FIGURES[experiment_id](cases=cases, scale=scale)
    if experiment_id in ALL_EXTRAS:
        return ALL_EXTRAS[experiment_id](cases=cases, scale=scale)
    raise KeyError(
        f"unknown experiment {experiment_id!r}; known: {', '.join(_experiment_ids())}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of Yeh & Patt's "
        "'Alternative Implementations of Two-Level Adaptive Branch Prediction'.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (table1..table3, fig4..fig11), 'all', or 'list'",
    )
    parser.add_argument("--scale", type=int, default=1, help="suite work multiplier")
    parser.add_argument("--out", type=Path, default=None, help="directory for .txt outputs")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for experiment_id in _experiment_ids():
            print(experiment_id)
        return 0

    targets = _experiment_ids() if args.experiment == "all" else [args.experiment]
    unknown = [
        t for t in targets
        if t not in ALL_TABLES and t not in ALL_FIGURES and t not in ALL_EXTRAS
    ]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    cases = None
    if any(t not in _TRACELESS for t in targets):
        started = time.time()
        cases = build_cases(SuiteConfig(scale=args.scale))
        print(f"# suite traces ready in {time.time() - started:.1f}s", file=sys.stderr)

    for experiment_id in targets:
        started = time.time()
        result = run_experiment(experiment_id, scale=args.scale, cases=cases)
        elapsed = time.time() - started
        text = result.render()
        print(text)
        print(f"# {experiment_id} in {elapsed:.1f}s\n", file=sys.stderr)
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{experiment_id}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
