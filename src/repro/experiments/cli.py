"""Command-line entry point: regenerate any table or figure.

Usage::

    repro-experiments list
    repro-experiments fig11
    repro-experiments fig6 --scale 2 --workers 4
    repro-experiments all --out results/ --workers 4
    repro-experiments fig11 --no-cache          # force recomputation

Execution knobs:

* ``--workers N`` fans each figure's (scheme x benchmark) cells out
  over N worker processes. Results are bit-identical to ``--workers 1``.
* Results are cached on disk (default ``results/cache``) keyed by a
  content-hash of trace + scheme + context-switch configuration, so a
  rerun only recomputes changed cells. ``--cache-dir`` relocates the
  cache; ``--no-cache`` disables it.

* ``--log text|json`` enables run-id-scoped structured logging on
  stderr (:mod:`repro.obs.log`); ``--ledger [DIR]`` appends every
  experiment cell to the persistent run ledger, where
  ``repro-obs history`` / ``regress`` can audit it later.

After each experiment the CLI prints a one-line telemetry summary
(cells simulated / cache hits / wall time) to stderr, and a final
structured run summary; ``--out`` also writes it as
``run_summary.json``.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from ..sim.engine import SIM_BACKENDS
from ..trace.cache import ResultCache
from ..workloads.suite import SuiteConfig, build_cases
from .extras import ALL_EXTRAS
from .figures import ALL_FIGURES
from .tables import ALL_TABLES

__all__ = ["main", "run_experiment"]

_TRACELESS = {"table2", "table3"}

DEFAULT_CACHE_DIR = Path("results") / "cache"


def _experiment_ids() -> List[str]:
    return list(ALL_TABLES) + list(ALL_FIGURES) + list(ALL_EXTRAS)


def run_experiment(
    experiment_id: str,
    scale: int = 1,
    cases=None,
    n_workers: int = 1,
    result_cache: Optional[ResultCache] = None,
    backend: str = "auto",
    shards: Optional[int] = None,
):
    """Run one experiment by id, returning its result object.

    Args:
        experiment_id: a table/figure/extra id (see ``list``).
        scale: suite work multiplier (ignored when ``cases`` is given).
        cases: pre-built benchmark cases shared across experiments.
        n_workers: worker processes for matrix-producing drivers.
        result_cache: on-disk result cache for matrix-producing drivers.
        backend: simulation backend for matrix-producing drivers
            (``"auto"`` / ``"python"`` / ``"vectorized"``; results are
            bit-identical, see :data:`repro.sim.engine.SIM_BACKENDS`).
        shards: trace-sharded kernel chunk count for matrix-producing
            drivers (:mod:`repro.sim.shard`); bit-identical at every
            shard count.

    Drivers that run no simulations (e.g. ``table2``) ignore the
    execution knobs; the knobs are forwarded only to drivers whose
    signature accepts them, so custom drivers stay compatible.
    """
    if experiment_id in ALL_TABLES:
        if experiment_id in _TRACELESS:
            return ALL_TABLES[experiment_id]()
        return ALL_TABLES[experiment_id](cases=cases, scale=scale)
    driver = ALL_FIGURES.get(experiment_id) or ALL_EXTRAS.get(experiment_id)
    if driver is None:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(_experiment_ids())}"
        )
    kwargs = {"cases": cases, "scale": scale}
    parameters = inspect.signature(driver).parameters
    if "n_workers" in parameters:
        kwargs["n_workers"] = n_workers
    if "result_cache" in parameters:
        kwargs["result_cache"] = result_cache
    if "backend" in parameters:
        kwargs["backend"] = backend
    if "shards" in parameters:
        kwargs["shards"] = shards
    return driver(**kwargs)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of Yeh & Patt's "
        "'Alternative Implementations of Two-Level Adaptive Branch Prediction'.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment id (table1..table3, fig4..fig11), a group "
        "('tables', 'figures', 'extras', 'all'), or 'list'; optional "
        "when --characterize is given",
    )
    parser.add_argument(
        "--characterize",
        action="store_true",
        help="also run the predictability characterization sweep over the "
        "nine-benchmark suite (the extra-characterize experiment); usable "
        "alone or alongside an experiment id",
    )
    parser.add_argument("--scale", type=int, default=1, help="suite work multiplier")
    parser.add_argument("--out", type=Path, default=None, help="directory for .txt outputs")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes per experiment (results are identical for any value)",
    )
    parser.add_argument(
        "--backend",
        choices=SIM_BACKENDS,
        default="auto",
        help="simulation backend: auto (vectorized kernels where available, "
        "default), python (interpreted loop), vectorized (fail if no kernel "
        "applies); results are bit-identical",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="trace-sharded kernel chunk count per cell (repro.sim.shard); "
        "results are bit-identical at every shard count",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=DEFAULT_CACHE_DIR,
        help=f"result-cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache (always recompute)",
    )
    parser.add_argument(
        "--log",
        choices=("text", "json"),
        default=None,
        help="enable run-id-scoped structured logging on stderr (see repro.obs.log)",
    )
    parser.add_argument(
        "--ledger",
        type=Path,
        nargs="?",
        const=Path("results") / "ledger",
        default=None,
        help="append every experiment cell to the run ledger "
        "(bare flag uses results/ledger)",
    )
    args = parser.parse_args(argv)

    if args.workers < 1:
        parser.error("--workers must be >= 1")

    if args.log is not None:
        from ..obs import log as obs_log

        obs_log.configure(fmt=args.log)
        obs_log.new_run_id("exp")

    if args.experiment == "list":
        for experiment_id in _experiment_ids():
            print(experiment_id)
        return 0

    groups = {
        "all": _experiment_ids(),
        "tables": list(ALL_TABLES),
        "figures": list(ALL_FIGURES),
        "extras": list(ALL_EXTRAS),
    }
    if args.experiment is None:
        if not args.characterize:
            parser.error("an experiment id is required (or pass --characterize)")
        targets = []
    else:
        targets = groups.get(args.experiment, [args.experiment])
    if args.characterize and "extra-characterize" not in targets:
        targets = targets + ["extra-characterize"]
    unknown = [
        t for t in targets
        if t not in ALL_TABLES and t not in ALL_FIGURES and t not in ALL_EXTRAS
    ]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    # Tables run no simulations; avoid creating a cache directory for them.
    needs_cache = not args.no_cache and any(t not in ALL_TABLES for t in targets)
    result_cache = ResultCache(args.cache_dir) if needs_cache else None

    cases = None
    if any(t not in _TRACELESS for t in targets):
        started = time.time()
        cases = build_cases(SuiteConfig(scale=args.scale))
        print(f"# suite traces ready in {time.time() - started:.1f}s", file=sys.stderr)

    run_summary = {
        "scale": args.scale,
        "workers": args.workers,
        "backend": args.backend,
        "shards": args.shards,
        "cache": None if result_cache is None else str(result_cache.directory),
        "experiments": {},
    }
    for experiment_id in targets:
        started = time.time()
        result = run_experiment(
            experiment_id,
            scale=args.scale,
            cases=cases,
            n_workers=args.workers,
            result_cache=result_cache,
            backend=args.backend,
            shards=args.shards,
        )
        elapsed = time.time() - started
        text = result.render()
        print(text)
        entry = {"wall_time_s": round(elapsed, 3)}
        matrix = getattr(result, "matrix", None)
        telemetry = getattr(matrix, "telemetry", None)
        if telemetry is not None:
            entry["telemetry"] = telemetry.as_dict()
            print(f"# {experiment_id}: {telemetry.summary_line()}", file=sys.stderr)
        if args.ledger is not None and matrix is not None:
            from ..obs.ledger import RunLedger, entries_from_matrix

            recorded = RunLedger(args.ledger).extend(entries_from_matrix(matrix))
            print(
                f"# {experiment_id}: {len(recorded)} cells -> ledger {args.ledger}",
                file=sys.stderr,
            )
        char_reports = getattr(result, "extra", {}).get("reports")
        if args.ledger is not None and experiment_id == "extra-characterize" and char_reports:
            from ..obs.ledger import RunLedger, entry_from_characterization

            ledger = RunLedger(args.ledger)
            for name in sorted(char_reports):
                ledger.append(entry_from_characterization(char_reports[name]))
            print(
                f"# {experiment_id}: {len(char_reports)} characterizations "
                f"-> ledger {args.ledger}",
                file=sys.stderr,
            )
        run_summary["experiments"][experiment_id] = entry
        print(f"# {experiment_id} in {elapsed:.1f}s\n", file=sys.stderr)
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{experiment_id}.txt").write_text(text + "\n")

    totals = {
        "simulations": 0,
        "cache_hits": 0,
        "cache_misses": 0,
        "wall_time_s": 0.0,
    }
    for entry in run_summary["experiments"].values():
        totals["wall_time_s"] += entry["wall_time_s"]
        telemetry = entry.get("telemetry")
        if telemetry:
            totals["simulations"] += telemetry["simulations"]
            totals["cache_hits"] += telemetry["cache_hits"]
            totals["cache_misses"] += telemetry["cache_misses"]
    totals["wall_time_s"] = round(totals["wall_time_s"], 3)
    run_summary["totals"] = totals
    print(f"# run summary: {json.dumps(run_summary['totals'])}", file=sys.stderr)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "run_summary.json").write_text(json.dumps(run_summary, indent=2) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
