"""Machine-readable export of experiment results (CSV / JSON).

The figure drivers return :class:`~repro.sim.results.ResultMatrix`
objects and render fixed-width text; downstream analysis (spreadsheets,
plotting) wants structured data. These helpers serialise any result
matrix — and whole experiment results — losslessly.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Optional, Union

from ..sim.results import ResultMatrix

__all__ = [
    "export_result",
    "load_matrix_json",
    "matrix_from_json",
    "matrix_to_csv",
    "matrix_to_json",
]

PathLike = Union[str, Path]


def matrix_to_csv(matrix: ResultMatrix, stream: Optional[io.TextIOBase] = None) -> str:
    """Serialise a result matrix as CSV (schemes x benchmarks + GMeans).

    Accuracy cells are fractions (0..1); missing cells are empty.
    Returns the CSV text (also written to ``stream`` when given).
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    headers = ["scheme"] + list(matrix.benchmarks) + ["Int GMean", "FP GMean", "Tot GMean"]
    writer.writerow(headers)
    for row in matrix.as_rows():
        writer.writerow(
            ["" if row.get(column) is None else row.get(column) for column in headers]
        )
    text = buffer.getvalue()
    if stream is not None:
        stream.write(text)
    return text


def matrix_to_json(matrix: ResultMatrix, indent: int = 2) -> str:
    """Serialise a result matrix as JSON with full per-cell detail.

    The payload embeds both a human-oriented view (``accuracy`` floats,
    per-scheme GMean summaries) and the exact integer representation
    (``exact``, via :meth:`ResultMatrix.to_dict`), so
    :func:`matrix_from_json` reconstructs a matrix that compares equal
    to the original — floats are re-derived from the integers, never
    parsed back from decimal text.
    """
    payload = {
        "benchmarks": list(matrix.benchmarks),
        "categories": dict(matrix.categories),
        "schemes": {},
        "exact": matrix.to_dict(),
    }
    for scheme, cells in matrix.cells.items():
        payload["schemes"][scheme] = {
            "cells": {
                benchmark: {
                    "accuracy": result.accuracy,
                    "conditional_branches": result.conditional_branches,
                    "correct_predictions": result.correct_predictions,
                    "context_switches": result.context_switches,
                }
                for benchmark, result in cells.items()
            },
            "summary": matrix.summary(scheme),
        }
    return json.dumps(payload, indent=indent, sort_keys=True)


def matrix_from_json(text: str) -> ResultMatrix:
    """Reconstruct a :class:`ResultMatrix` from :func:`matrix_to_json`.

    Round-trips exactly: ``matrix_from_json(matrix_to_json(m)) == m``
    for every matrix, including those with blank
    (``TrainingUnavailable``) cells.
    """
    payload = json.loads(text)
    if "exact" not in payload:
        raise ValueError(
            "payload has no 'exact' section; it was not produced by matrix_to_json"
        )
    return ResultMatrix.from_dict(payload["exact"])


def export_result(result, directory: PathLike, formats: tuple = ("txt", "csv", "json")) -> list:
    """Write a figure/table result to ``directory`` in several formats.

    ``txt`` is always available; ``csv``/``json`` require the result to
    carry a matrix (table results and figure4-style results export txt
    only). Returns the list of files written.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    identifier = getattr(result, "figure_id", None) or result.table_id
    written = []
    if "txt" in formats:
        path = directory / f"{identifier}.txt"
        path.write_text(result.render() + "\n")
        written.append(path)
    matrix = getattr(result, "matrix", None)
    if matrix is not None:
        if "csv" in formats:
            path = directory / f"{identifier}.csv"
            path.write_text(matrix_to_csv(matrix))
            written.append(path)
        if "json" in formats:
            path = directory / f"{identifier}.json"
            path.write_text(matrix_to_json(matrix))
            written.append(path)
    return written


def load_matrix_json(path: PathLike) -> dict:
    """Load a JSON export back as a plain dict (round-trip helper)."""
    return json.loads(Path(path).read_text())
