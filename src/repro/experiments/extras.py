"""Extension experiments beyond the paper's figures.

These drivers quantify the paper's §3 implementation considerations and
its follow-up taxonomy on the same analog suite, with the same result
plumbing as the figure drivers:

* ``extra-speculative`` — §3.1: stale vs speculative branch history
  under deep resolution latency.
* ``extra-fetch`` — §3.2: front-end cycles per instruction with and
  without target-address caching.
* ``extra-interference`` — first/second-level interference measured
  directly, per benchmark.
* ``extra-taxonomy`` — the full {G,S,P} x {g,s,p}-flavoured ladder at
  one history length: GAg, SAg, SAs, PAg, PAp (+ gshare/gselect/
  tournament), with cost estimates.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.interference import (
    bht_pressure,
    first_level_interference,
    second_level_interference,
)
from ..core.cost import cost_gag, cost_pag, cost_pap
from ..core.perset import cost_sag, cost_sas
from ..core.twolevel import make_gag, make_pag, make_pap
from ..predictors.extensions import tournament_pag_gshare
from ..sim.fetch import BranchTargetCache, FetchEngine, ReturnAddressStack
from ..sim.parallel import spec
from ..sim.pipeline import RecoveryPolicy, SpeculativeTwoLevel, simulate_delayed
from ..sim.runner import BenchmarkCase, run_matrix
from .figures import FigureResult, _cases
from .report import render_accuracy_matrix, render_table

__all__ = [
    "ALL_EXTRAS",
    "extra_characterize",
    "extra_fetch",
    "extra_interference",
    "extra_ipc",
    "extra_sensitivity",
    "extra_speculative",
    "extra_taxonomy",
]


def extra_speculative(
    cases: Optional[Sequence[BenchmarkCase]] = None,
    scale: int = 1,
    latency: int = 8,
    history_bits: int = 12,
) -> FigureResult:
    """§3.1 quantified: GAg accuracy vs resolution latency and policy."""
    cases = _cases(cases, scale)
    headers = ["benchmark", "immediate", f"stale D={latency}", "spec repair", "spec reinit"]
    rows = []
    summary = {}
    for case in cases:
        trace = case.test_trace
        immediate = simulate_delayed(make_gag(history_bits), trace, 0).result.accuracy
        stale = simulate_delayed(make_gag(history_bits), trace, latency).result.accuracy
        repair = simulate_delayed(
            make_gag(history_bits), trace, latency,
            speculative=SpeculativeTwoLevel(make_gag(history_bits), RecoveryPolicy.REPAIR),
        ).result.accuracy
        reinit = simulate_delayed(
            make_gag(history_bits), trace, latency,
            speculative=SpeculativeTwoLevel(make_gag(history_bits), RecoveryPolicy.REINITIALISE),
        ).result.accuracy
        rows.append([case.name, immediate, stale, repair, reinit])
        summary[case.name] = {"immediate": immediate, "stale": stale, "repair": repair}
    rendered = render_table(
        headers, rows, percent_columns=[1, 2, 3, 4],
        title=f"Extra: speculative history update (GAg-{history_bits}, resolution latency {latency})",
    )
    return FigureResult(
        figure_id="extra-speculative",
        description="Stale vs speculatively-updated branch history (paper §3.1)",
        extra={"rows": summary, "latency": latency},
        rendered=rendered,
    )


def extra_fetch(
    cases: Optional[Sequence[BenchmarkCase]] = None,
    scale: int = 1,
    history_bits: int = 12,
) -> FigureResult:
    """§3.2 quantified: fetch CPI with and without target caching."""
    cases = _cases(cases, scale)
    headers = ["benchmark", "CPI no BTAC", "CPI with BTAC", "BTAC hit rate", "dir. accuracy"]
    rows = []
    summary = {}
    for case in cases:
        trace = case.test_trace
        without = FetchEngine(make_pag(history_bits), btac=None).run(trace)
        with_btac = FetchEngine(
            make_pag(history_bits),
            btac=BranchTargetCache(512, 4),
            ras=ReturnAddressStack(32),
        ).run(trace)
        rows.append(
            [
                case.name,
                round(without.cycles_per_instruction, 4),
                round(with_btac.cycles_per_instruction, 4),
                with_btac.btac_hit_rate,
                with_btac.direction_accuracy,
            ]
        )
        summary[case.name] = {
            "cpi_without": without.cycles_per_instruction,
            "cpi_with": with_btac.cycles_per_instruction,
        }
    rendered = render_table(
        headers, rows, percent_columns=[3, 4],
        title="Extra: target address caching (paper §3.2)",
    )
    return FigureResult(
        figure_id="extra-fetch",
        description="Front-end cycles per instruction with/without a BTAC",
        extra={"rows": summary},
        rendered=rendered,
    )


def extra_interference(
    cases: Optional[Sequence[BenchmarkCase]] = None,
    scale: int = 1,
    history_bits: int = 6,
) -> FigureResult:
    """Interference measured directly, next to the variation accuracies."""
    cases = _cases(cases, scale)
    headers = [
        "benchmark", "1st-level pollution", "2nd-level destructive",
        "BHT 512x4 hit rate", "GAg", "PAg", "PAp", "k-history bound",
    ]
    rows = []
    summary = {}
    from ..analysis.bounds import history_bound
    from ..sim.engine import simulate

    for case in cases:
        trace = case.test_trace
        first = first_level_interference(trace, history_bits)
        second = second_level_interference(trace, history_bits)
        pressure = bht_pressure(trace)
        gag = simulate(make_gag(history_bits), trace).accuracy
        pag = simulate(make_pag(history_bits), trace).accuracy
        pap = simulate(make_pap(history_bits), trace).accuracy
        bound = history_bound(trace, history_bits)
        rows.append(
            [case.name, first.pollution_rate, second.destructive_rate,
             pressure.hit_rate, gag, pag, pap, bound]
        )
        summary[case.name] = {
            "pollution": first.pollution_rate,
            "destructive": second.destructive_rate,
            "bound": bound,
        }
    rendered = render_table(
        headers, rows, percent_columns=[1, 2, 3, 4, 5, 6, 7],
        title=f"Extra: interference analysis (k={history_bits})",
    )
    return FigureResult(
        figure_id="extra-interference",
        description="First/second-level interference vs variation accuracy",
        extra={"rows": summary},
        rendered=rendered,
    )


def extra_taxonomy(
    cases: Optional[Sequence[BenchmarkCase]] = None,
    scale: int = 1,
    history_bits: int = 8,
    n_workers: int = 1,
    result_cache=None,
    backend: str = "auto",
    shards: Optional[int] = None,
) -> FigureResult:
    """The widened taxonomy ladder at one history length, with costs.

    All rungs but the tournament are expressed as picklable registry
    specs (parallelizable, cacheable); the tournament's non-default
    chooser width keeps it a plain callable, which the runner simply
    executes in the parent process.
    """
    cases = _cases(cases, scale)
    k = history_bits
    builders = {
        f"GAg-{k}": spec(f"gag-{k}"),
        f"SAg-{k}x16": spec(f"sag-{k}x16"),
        f"SAs-{k}x16": spec(f"sas-{k}x16"),
        f"PAg-{k}": spec(f"pag-{k}"),
        f"PAp-{k}": spec(f"pap-{k}"),
        f"gshare-{k}": spec(f"gshare-{k}"),
        f"gselect-{k // 2}+{k - k // 2}": spec(f"gselect-{k // 2}+{k - k // 2}"),
        "tournament": lambda t: tournament_pag_gshare(k, k, 10),
    }
    matrix = run_matrix(
        builders, cases, n_workers=n_workers, result_cache=result_cache,
        backend=backend, shards=shards,
    )
    costs = {
        f"GAg-{k}": cost_gag(k),
        f"SAg-{k}x16": cost_sag(k, 16),
        f"SAs-{k}x16": cost_sas(k, 16),
        f"PAg-{k}": cost_pag(512, 4, k),
        f"PAp-{k}": cost_pap(512, 4, k),
    }
    cost_rows = [
        [scheme, matrix.gmean(scheme), costs.get(scheme)]
        for scheme in builders
    ]
    rendered = (
        render_accuracy_matrix(matrix, title=f"Extra: taxonomy ladder at k={k}")
        + "\n\n"
        + render_table(
            ["scheme", "Tot GMean", "cost (eqs. 4-6 style)"],
            cost_rows,
            percent_columns=[1],
            title="Taxonomy cost/accuracy",
        )
    )
    return FigureResult(
        figure_id="extra-taxonomy",
        description="GAg/SAg/SAs/PAg/PAp (+post-paper schemes) at equal history",
        matrix=matrix,
        extra={"costs": costs},
        rendered=rendered,
    )


def extra_sensitivity(
    cases: Optional[Sequence[BenchmarkCase]] = None,
    scale: int = 1,
    history_bits: int = 12,
) -> FigureResult:
    """Dataset-shift sensitivity of profiled vs adaptive schemes.

    The paper notes static training's accuracy "depends greatly on the
    similarities between the data sets used for training and testing".
    This experiment makes that claim quantitative: for each benchmark
    with both a training set and an alternate input, it trains the
    profiled schemes once (on the Table 2 training set) and tests them
    on (a) the Table 2 testing set and (b) the alternate input, next to
    the adaptive PAg which trains itself wherever it runs.
    """
    del cases  # this experiment generates its own dataset pairs
    from ..core.static_training import PSgPredictor
    from ..predictors.static import ProfileGuided
    from ..sim.engine import simulate
    from ..workloads.suite import all_workloads

    headers = [
        "benchmark", "test input",
        "PAg (adaptive)", "PSg (trained once)", "Profile (trained once)",
    ]
    rows = []
    summary = {}
    for name, workload in all_workloads().items():
        if not workload.has_training or not workload.alternate_datasets:
            continue
        training = workload.generate("training", scale=scale)
        targets = [("testing", workload.generate("testing", scale=scale))]
        targets += [
            (spec.name, workload.generate(spec.name, scale=scale))
            for spec in workload.alternate_datasets
        ]
        for label, trace in targets:
            pag = simulate(make_pag(history_bits), trace).accuracy
            psg = simulate(
                PSgPredictor.trained_on(training, history_bits, 512, 4), trace
            ).accuracy
            profile = simulate(ProfileGuided.trained_on(training), trace).accuracy
            rows.append([name, label, pag, psg, profile])
            summary.setdefault(name, {})[label] = {
                "pag": pag, "psg": psg, "profile": profile,
            }
    rendered = render_table(
        headers, rows, percent_columns=[2, 3, 4],
        title="Extra: dataset-shift sensitivity (profiled schemes trained on Table 2 inputs)",
    )
    return FigureResult(
        figure_id="extra-sensitivity",
        description="Profiled schemes under dataset shift vs adaptive PAg",
        extra={"rows": summary},
        rendered=rendered,
    )


def extra_ipc(
    cases: Optional[Sequence[BenchmarkCase]] = None,
    scale: int = 1,
    width: int = 8,
    resolve_depth: int = 12,
) -> FigureResult:
    """The paper's §1 motivation, quantified: predictor accuracy turned
    into first-order effective IPC on a wide, deep machine.

    Compares the paper's PAg against the best pre-paper dynamic scheme
    (BTB with 2-bit counters) per benchmark, reporting the IPC each
    would deliver and the speedup the two-level predictor buys.
    """
    cases = _cases(cases, scale)
    from ..predictors.btb import btb_a2
    from ..sim.engine import simulate
    from ..sim.ipc import MachineModel, ipc_from_result

    machine = MachineModel(width=width, resolve_depth=resolve_depth)
    headers = [
        "benchmark", "PAg-12 acc", "BTB-A2 acc",
        f"IPC PAg ({width}-wide)", "IPC BTB", "speedup",
    ]
    rows = []
    summary = {}
    for case in cases:
        trace = case.test_trace
        pag_result = simulate(make_pag(12), trace)
        btb_result = simulate(btb_a2(), trace)
        pag_ipc = ipc_from_result(pag_result, machine).effective_ipc
        btb_ipc = ipc_from_result(btb_result, machine).effective_ipc
        rows.append(
            [case.name, pag_result.accuracy, btb_result.accuracy,
             round(pag_ipc, 3), round(btb_ipc, 3), round(pag_ipc / btb_ipc, 3)]
        )
        summary[case.name] = {"pag_ipc": pag_ipc, "btb_ipc": btb_ipc}
    rendered = render_table(
        headers, rows, percent_columns=[1, 2],
        title=f"Extra: first-order IPC impact ({width}-wide, resolve depth {resolve_depth})",
    )
    return FigureResult(
        figure_id="extra-ipc",
        description="Prediction accuracy converted to effective IPC (paper §1)",
        extra={"rows": summary, "machine": machine},
        rendered=rendered,
    )


def extra_characterize(
    cases: Optional[Sequence[BenchmarkCase]] = None,
    scale: int = 1,
    max_k: Optional[int] = None,
    schemes: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Predictability characterization swept across the whole suite.

    Runs :func:`repro.analysis.predictability.characterize` on every
    benchmark and condenses each report to one row: outcome entropy,
    residual entropy under K bits of global/local history, the
    ideal-accuracy bound, the H2P dynamic share, the dominant
    predictability cluster, and the best-attributed paper scheme. The
    full serialised reports travel in ``extra["reports"]`` so callers
    (and the ledger) keep the whole attribution view.
    """
    from ..analysis.predictability import DEFAULT_MAX_K, characterize

    cases = _cases(cases, scale)
    k = max_k if max_k is not None else DEFAULT_MAX_K
    headers = [
        "benchmark", "sites", "H0", f"H|glo{k}", f"H|loc{k}", "ideal",
        "H2P share", "dominant cluster", "best scheme", "best acc",
    ]
    rows = []
    reports = {}
    for case in cases:
        report = characterize(
            case.test_trace,
            max_k=k,
            schemes=schemes,
            training_trace=case.training_trace,
            top=5,
        )
        global_tail = report.global_curve[-1]
        local_tail = report.local_curve[-1]
        ideal = max(global_tail.ideal_accuracy, local_tail.ideal_accuracy)
        dominant = max(report.clusters, key=lambda c: c.dynamic_share)
        best = max(report.schemes, key=lambda s: s["accuracy"])
        rows.append(
            [
                case.name,
                report.static_sites,
                round(report.outcome_entropy_bits, 4),
                round(global_tail.entropy_bits, 4),
                round(local_tail.entropy_bits, 4),
                ideal,
                report.h2p_dynamic_share,
                dominant.name,
                best["scheme"],
                best["accuracy"],
            ]
        )
        reports[case.name] = report.to_dict()
    rendered = render_table(
        headers, rows, percent_columns=[5, 6, 9],
        title=f"Extra: predictability characterization (K={k})",
    )
    return FigureResult(
        figure_id="extra-characterize",
        description="Entropy / H2P / cluster-winner characterization per benchmark",
        extra={"reports": reports, "max_k": k},
        rendered=rendered,
    )


ALL_EXTRAS = {
    "extra-speculative": extra_speculative,
    "extra-fetch": extra_fetch,
    "extra-interference": extra_interference,
    "extra-taxonomy": extra_taxonomy,
    "extra-sensitivity": extra_sensitivity,
    "extra-ipc": extra_ipc,
    "extra-characterize": extra_characterize,
}
