"""Drivers regenerating each figure of the paper's evaluation (§5).

Each ``figureN`` function simulates exactly the configurations the
corresponding figure plots and returns a :class:`FigureResult` holding
the structured data plus a text rendering. Figures share the suite's
cached traces, so running all of them costs one trace generation plus
the simulations.

Every matrix-producing driver accepts two execution knobs, threaded
straight into :func:`repro.sim.runner.run_matrix`:

* ``n_workers`` — fan the (scheme x benchmark) cells out over worker
  processes; results are bit-identical for every worker count.
* ``result_cache`` — a :class:`repro.trace.cache.ResultCache`; a warm
  cache makes a rerun recompute only changed cells (the matrix's
  ``telemetry`` records hits/misses).

Predictor configurations are expressed as picklable
:func:`repro.sim.parallel.spec` builders (registry names), which is
what makes the cells portable across process boundaries and cacheable.

Scaling note: trace lengths differ from the paper (DESIGN.md
substitution #2), so compare *shapes* — orderings, gaps, crossovers —
not absolute percentages. EXPERIMENTS.md records both sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.automata import PAPER_AUTOMATA
from ..core.cost import UNIT_COSTS, CostParams, cost_gag, cost_pag, cost_pap
from ..sim.engine import ContextSwitchConfig
from ..sim.parallel import spec
from ..sim.results import ResultMatrix, RunTelemetry
from ..sim.runner import BenchmarkCase, run_matrix
from ..trace.cache import ResultCache
from ..trace.stats import compute_stats
from ..workloads.suite import SuiteConfig, build_cases
from .charts import accuracy_bars_from_matrix, render_series
from .report import render_accuracy_matrix, render_table

__all__ = [
    "ALL_FIGURES",
    "FigureResult",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
]


@dataclass
class FigureResult:
    """One regenerated figure: data plus its text rendering."""

    figure_id: str
    description: str
    matrix: Optional[ResultMatrix] = None
    extra: Dict[str, object] = field(default_factory=dict)
    rendered: str = ""

    def render(self) -> str:
        return self.rendered


def _cases(cases: Optional[Sequence[BenchmarkCase]], scale: int) -> List[BenchmarkCase]:
    if cases is not None:
        return list(cases)
    return build_cases(SuiteConfig(scale=scale))


# ----------------------------------------------------------------------
# Figure 4 — distribution of dynamic branch instructions
# ----------------------------------------------------------------------

def figure4(cases: Optional[Sequence[BenchmarkCase]] = None, scale: int = 1) -> FigureResult:
    """Branch-class mix per benchmark (paper: ~80 % conditional)."""
    cases = _cases(cases, scale)
    headers = ["benchmark", "cond %", "uncond %", "call %", "return %", "branch/instr %"]
    rows = []
    mixes = {}
    for case in cases:
        stats = compute_stats(case.test_trace)
        mix = stats.class_mix()
        mixes[case.name] = mix
        rows.append(
            [
                case.name,
                mix.conditional,
                mix.unconditional,
                mix.call,
                mix.ret,
                stats.branch_fraction,
            ]
        )
    rendered = render_table(
        headers,
        rows,
        percent_columns=[1, 2, 3, 4, 5],
        title="Figure 4: distribution of dynamic branch instructions",
    )
    return FigureResult(
        figure_id="fig4",
        description="Distribution of dynamic branch instructions by class",
        extra={"mixes": mixes},
        rendered=rendered,
    )


# ----------------------------------------------------------------------
# Figure 5 — pattern history table automata
# ----------------------------------------------------------------------

def figure5(
    cases: Optional[Sequence[BenchmarkCase]] = None,
    scale: int = 1,
    history_bits: int = 12,
    n_workers: int = 1,
    result_cache: Optional[ResultCache] = None,
    backend: str = "auto",
    shards: Optional[int] = None,
) -> FigureResult:
    """PAg(512, 4-way, 12-bit) with automata LT / A1 / A2 / A3 / A4."""
    cases = _cases(cases, scale)
    builders = {
        f"PAg-{history_bits}-{name}": spec(f"pag-{history_bits}-{name.lower()}-512x4")
        for name in PAPER_AUTOMATA
    }
    matrix = run_matrix(
        builders, cases, n_workers=n_workers, result_cache=result_cache,
        backend=backend,
        shards=shards,
    )
    rendered = render_accuracy_matrix(
        matrix,
        title=f"Figure 5: PAg(BHT(512,4,{history_bits}-sr)) with different automata",
    )
    return FigureResult(
        figure_id="fig5",
        description="Effect of the pattern history table automaton",
        matrix=matrix,
        rendered=rendered,
    )


# ----------------------------------------------------------------------
# Figure 6 — three variations at equal history length
# ----------------------------------------------------------------------

def figure6(
    cases: Optional[Sequence[BenchmarkCase]] = None,
    scale: int = 1,
    lengths: Sequence[int] = (2, 4, 6, 8, 10, 12),
    n_workers: int = 1,
    result_cache: Optional[ResultCache] = None,
    backend: str = "auto",
    shards: Optional[int] = None,
) -> FigureResult:
    """GAg vs PAg vs PAp, all using the same history register length."""
    cases = _cases(cases, scale)
    builders = {}
    for k in lengths:
        builders[f"GAg-{k}"] = spec(f"gag-{k}")
        builders[f"PAg-{k}"] = spec(f"pag-{k}-512x4")
        builders[f"PAp-{k}"] = spec(f"pap-{k}-512x4")
    matrix = run_matrix(
        builders, cases, n_workers=n_workers, result_cache=result_cache,
        backend=backend,
        shards=shards,
    )
    summary_rows = []
    for k in lengths:
        summary_rows.append(
            [
                k,
                matrix.gmean(f"GAg-{k}"),
                matrix.gmean(f"PAg-{k}"),
                matrix.gmean(f"PAp-{k}"),
            ]
        )
    series = {
        variant: [matrix.gmean(f"{variant}-{k}") for k in lengths]
        for variant in ("GAg", "PAg", "PAp")
    }
    rendered = (
        render_accuracy_matrix(matrix, title="Figure 6: variations at equal history length")
        + "\n\n"
        + render_table(
            ["history bits", "GAg Tot GMean", "PAg Tot GMean", "PAp Tot GMean"],
            summary_rows,
            percent_columns=[1, 2, 3],
            title="Figure 6 summary",
        )
        + "\n\n"
        + render_series(series, x_labels=list(lengths), title="Tot GMean vs history bits")
    )
    return FigureResult(
        figure_id="fig6",
        description="GAg vs PAg vs PAp at equal history register length",
        matrix=matrix,
        extra={"lengths": list(lengths)},
        rendered=rendered,
    )


# ----------------------------------------------------------------------
# Figure 7 — GAg history length sweep
# ----------------------------------------------------------------------

def figure7(
    cases: Optional[Sequence[BenchmarkCase]] = None,
    scale: int = 1,
    lengths: Sequence[int] = (6, 8, 10, 12, 14, 16, 18),
    n_workers: int = 1,
    result_cache: Optional[ResultCache] = None,
    backend: str = "auto",
    shards: Optional[int] = None,
) -> FigureResult:
    """GAg accuracy as the history register grows 6 -> 18 bits."""
    cases = _cases(cases, scale)
    builders = {f"GAg-{k}": spec(f"gag-{k}") for k in lengths}
    matrix = run_matrix(
        builders, cases, n_workers=n_workers, result_cache=result_cache,
        backend=backend,
        shards=shards,
    )
    gain = matrix.gmean(f"GAg-{max(lengths)}") - matrix.gmean(f"GAg-{min(lengths)}")
    series = {
        "Int GMean": [matrix.gmean(f"GAg-{k}", "int") for k in lengths],
        "FP GMean": [matrix.gmean(f"GAg-{k}", "fp") for k in lengths],
        "Tot GMean": [matrix.gmean(f"GAg-{k}") for k in lengths],
    }
    rendered = (
        render_accuracy_matrix(matrix, title="Figure 7: GAg history register length sweep")
        + "\n\n"
        + render_series(series, x_labels=list(lengths), title="Accuracy vs history bits")
        + f"\n\nTot GMean gain {min(lengths)}->{max(lengths)} bits: {gain * 100:.2f} points"
    )
    return FigureResult(
        figure_id="fig7",
        description="Effect of history register length on GAg",
        matrix=matrix,
        extra={"lengths": list(lengths), "gain": gain},
        rendered=rendered,
    )


# ----------------------------------------------------------------------
# Figure 8 — iso-accuracy configurations and their hardware costs
# ----------------------------------------------------------------------

def figure8(
    cases: Optional[Sequence[BenchmarkCase]] = None,
    scale: int = 1,
    params: CostParams = UNIT_COSTS,
    n_workers: int = 1,
    result_cache: Optional[ResultCache] = None,
    backend: str = "auto",
    shards: Optional[int] = None,
) -> FigureResult:
    """GAg(18) / PAg(12) / PAp(6): ~equal accuracy, very unequal cost."""
    cases = _cases(cases, scale)
    builders = {
        "GAg-18": spec("gag-18"),
        "PAg-12": spec("pag-12-512x4"),
        "PAp-6": spec("pap-6-512x4"),
    }
    matrix = run_matrix(
        builders, cases, n_workers=n_workers, result_cache=result_cache,
        backend=backend,
        shards=shards,
    )
    costs = {
        "GAg-18": cost_gag(18, 2, params),
        "PAg-12": cost_pag(512, 4, 12, 2, params),
        "PAp-6": cost_pap(512, 4, 6, 2, params),
    }
    cost_rows = [
        [name, matrix.gmean(name), costs[name]] for name in builders
    ]
    rendered = (
        render_accuracy_matrix(matrix, title="Figure 8: iso-accuracy configurations")
        + "\n\n"
        + render_table(
            ["scheme", "Tot GMean", "estimated cost (paper eqs. 4-6)"],
            cost_rows,
            percent_columns=[1],
            title="Figure 8 cost comparison",
        )
    )
    return FigureResult(
        figure_id="fig8",
        description="Configurations achieving ~equal accuracy, and their costs",
        matrix=matrix,
        extra={"costs": costs},
        rendered=rendered,
    )


# ----------------------------------------------------------------------
# Figure 9 — effect of context switches
# ----------------------------------------------------------------------

def figure9(
    cases: Optional[Sequence[BenchmarkCase]] = None,
    scale: int = 1,
    interval: int = 500_000,
    n_workers: int = 1,
    result_cache: Optional[ResultCache] = None,
    backend: str = "auto",
    shards: Optional[int] = None,
) -> FigureResult:
    """GAg(18)/PAg(12)/PAp(6) with and without context switches."""
    cases = _cases(cases, scale)
    builders = {
        "GAg-18": spec("gag-18"),
        "PAg-12": spec("pag-12-512x4"),
        "PAp-6": spec("pap-6-512x4"),
    }
    plain = run_matrix(
        builders, cases, n_workers=n_workers, result_cache=result_cache,
        backend=backend,
        shards=shards,
    )
    switched_builders = {f"{name},c": builder for name, builder in builders.items()}
    switched = run_matrix(
        switched_builders,
        cases,
        context_switches=ContextSwitchConfig(interval=interval),
        n_workers=n_workers,
        result_cache=result_cache,
        backend=backend,
        shards=shards,
    )
    merged = ResultMatrix(
        benchmarks=plain.benchmarks,
        categories=plain.categories,
        telemetry=RunTelemetry.merge(plain.telemetry, switched.telemetry),
    )
    for scheme, cells in list(plain.cells.items()) + list(switched.cells.items()):
        for result in cells.values():
            merged.add(scheme, result)
    degradation = {
        name: plain.gmean(name) - switched.gmean(f"{name},c") for name in builders
    }
    deg_rows = [[name, plain.gmean(name), switched.gmean(f"{name},c"), degradation[name]] for name in builders]
    rendered = (
        render_accuracy_matrix(merged, title="Figure 9: effect of context switches")
        + "\n\n"
        + render_table(
            ["scheme", "no switches", "with switches", "degradation"],
            deg_rows,
            percent_columns=[1, 2, 3],
            title="Figure 9 summary (paper: average degradation < 1 point)",
        )
    )
    return FigureResult(
        figure_id="fig9",
        description="Context-switch impact on the three iso-accuracy configs",
        matrix=merged,
        extra={"degradation": degradation},
        rendered=rendered,
    )


# ----------------------------------------------------------------------
# Figure 10 — branch history table implementations
# ----------------------------------------------------------------------

def figure10(
    cases: Optional[Sequence[BenchmarkCase]] = None,
    scale: int = 1,
    history_bits: int = 12,
    n_workers: int = 1,
    result_cache: Optional[ResultCache] = None,
    backend: str = "auto",
    shards: Optional[int] = None,
) -> FigureResult:
    """PAg with practical BHTs (256/512 x direct/4-way) vs the IBHT,
    simulated in the presence of context switches, as the paper does."""
    cases = _cases(cases, scale)
    builders = {
        "PAg-IBHT": spec(f"pag-{history_bits}-ideal"),
        "PAg-512x4": spec(f"pag-{history_bits}-512x4"),
        "PAg-512x1": spec(f"pag-{history_bits}-512x1"),
        "PAg-256x4": spec(f"pag-{history_bits}-256x4"),
        "PAg-256x1": spec(f"pag-{history_bits}-256x1"),
    }
    matrix = run_matrix(
        builders,
        cases,
        context_switches=ContextSwitchConfig(),
        n_workers=n_workers,
        result_cache=result_cache,
        backend=backend,
        shards=shards,
    )
    rendered = render_accuracy_matrix(
        matrix, title="Figure 10: branch history table implementations (with context switches)"
    )
    return FigureResult(
        figure_id="fig10",
        description="BHT size/associativity vs the ideal BHT",
        matrix=matrix,
        rendered=rendered,
    )


# ----------------------------------------------------------------------
# Figure 11 — grand comparison
# ----------------------------------------------------------------------

def figure11(
    cases: Optional[Sequence[BenchmarkCase]] = None,
    scale: int = 1,
    n_workers: int = 1,
    result_cache: Optional[ResultCache] = None,
    backend: str = "auto",
    shards: Optional[int] = None,
) -> FigureResult:
    """PAg(12) against every other scheme family in the study."""
    cases = _cases(cases, scale)
    builders = {
        "PAg(512,4,12,A2)": spec("pag-12-a2-512x4"),
        "PSg(512,4,12)": spec("psg-12-512x4"),
        "GSg(12)": spec("gsg-12"),
        "BTB(512,4,A2)": spec("btb-a2"),
        "Profile": spec("profile"),
        "BTB(512,4,LT)": spec("btb-lt"),
        "BTFN": spec("btfn"),
        "AlwaysTaken": spec("always-taken"),
    }
    matrix = run_matrix(
        builders, cases, n_workers=n_workers, result_cache=result_cache,
        backend=backend,
        shards=shards,
    )
    rendered = (
        render_accuracy_matrix(
            matrix, title="Figure 11: comparison of branch prediction schemes"
        )
        + "\n\n"
        + accuracy_bars_from_matrix(matrix, title="Tot GMean by scheme")
    )
    return FigureResult(
        figure_id="fig11",
        description="Two-Level Adaptive vs all comparison schemes",
        matrix=matrix,
        rendered=rendered,
    )


ALL_FIGURES: Dict[str, Callable[..., FigureResult]] = {
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "fig11": figure11,
}
