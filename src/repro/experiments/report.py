"""Plain-text rendering of experiment results.

Every figure/table driver returns structured data; this module renders
it as fixed-width text tables (the closest analog of the paper's
figures that a terminal can show) and as machine-readable row dicts.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

__all__ = ["format_cell", "render_accuracy_matrix", "render_table", "rows_from_mapping"]

Cell = Union[str, int, float, None]


def format_cell(value: Cell, percent: bool = False) -> str:
    """One cell: floats as percentages (when asked), None as '--'."""
    if value is None:
        return "--"
    if isinstance(value, float):
        if percent:
            return f"{value * 100:.2f}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    percent_columns: Optional[Sequence[int]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width table.

    Args:
        headers: column names.
        rows: row cells (same arity as headers).
        percent_columns: column indices rendered as percentages.
        title: optional title line printed above the table.
    """
    percent = set(percent_columns or ())
    text_rows: List[List[str]] = [
        [format_cell(cell, percent=(index in percent)) for index, cell in enumerate(row)]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(h.rjust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in text_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_accuracy_matrix(
    matrix,
    title: Optional[str] = None,
    scheme_order: Optional[Sequence[str]] = None,
) -> str:
    """Render a :class:`~repro.sim.results.ResultMatrix` as the paper
    lays its figures out: benchmarks as columns, GMeans on the right."""
    benchmarks = list(matrix.benchmarks)
    headers = ["scheme"] + benchmarks + ["Int GMean", "FP GMean", "Tot GMean"]
    rows: List[List[Cell]] = []
    schemes = list(scheme_order) if scheme_order is not None else matrix.schemes
    for scheme in schemes:
        row: List[Cell] = [scheme]
        for benchmark in benchmarks:
            row.append(matrix.accuracy(scheme, benchmark))
        covered = set(matrix.row(scheme))
        for category in ("int", "fp", None):
            in_category = [
                b for b in benchmarks if category is None or matrix.categories.get(b) == category
            ]
            if covered & set(in_category):
                row.append(matrix.gmean(scheme, category))
            else:
                row.append(None)
        rows.append(row)
    percent_columns = list(range(1, len(headers)))
    return render_table(headers, rows, percent_columns=percent_columns, title=title)


def rows_from_mapping(mapping: Mapping[str, Mapping[str, Cell]], key_header: str) -> Dict[str, object]:
    """Convert nested mappings to (headers, rows) for render_table."""
    inner_keys: List[str] = []
    for inner in mapping.values():
        for key in inner:
            if key not in inner_keys:
                inner_keys.append(key)
    headers = [key_header] + inner_keys
    rows = [
        [outer_key] + [inner.get(k) for k in inner_keys]
        for outer_key, inner in mapping.items()
    ]
    return {"headers": headers, "rows": rows}
