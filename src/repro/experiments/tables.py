"""Drivers regenerating the paper's Tables 1-3."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.naming import SchemeSpec
from ..predictors.registry import paper_table3_specs
from ..sim.runner import BenchmarkCase
from ..trace.stats import compute_stats
from ..workloads.suite import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    SuiteConfig,
    build_cases,
    table2_datasets,
)
from .report import render_table

__all__ = ["ALL_TABLES", "TableResult", "table1", "table2", "table3"]


@dataclass
class TableResult:
    """One regenerated table: data plus its text rendering."""

    table_id: str
    description: str
    rows: List[List[object]] = field(default_factory=list)
    headers: List[str] = field(default_factory=list)
    rendered: str = ""

    def render(self) -> str:
        return self.rendered


def table1(
    cases: Optional[Sequence[BenchmarkCase]] = None, scale: int = 1
) -> TableResult:
    """Static conditional branch counts, ours next to the paper's.

    The analogs are smaller programs than SPEC89 binaries, so absolute
    counts are lower; the *ordering* (gcc largest by far) is what the
    BHT-capacity experiments depend on.
    """
    if cases is None:
        cases = build_cases(SuiteConfig(scale=scale))
    headers = ["benchmark", "static cond. branches (ours)", "paper Table 1"]
    rows: List[List[object]] = []
    for case in cases:
        stats = compute_stats(case.test_trace)
        rows.append([case.name, stats.static_conditional_sites, PAPER_TABLE1.get(case.name)])
    rendered = render_table(headers, rows, title="Table 1: static conditional branches")
    return TableResult(
        table_id="table1",
        description="Number of static conditional branches per benchmark",
        rows=rows,
        headers=headers,
        rendered=rendered,
    )


def table2() -> TableResult:
    """Training and testing datasets, ours next to the paper's."""
    ours = table2_datasets()
    headers = ["benchmark", "training (ours)", "testing (ours)", "training (paper)", "testing (paper)"]
    rows: List[List[object]] = []
    for name, datasets in ours.items():
        paper = PAPER_TABLE2.get(name, {})
        rows.append(
            [
                name,
                datasets["training"],
                datasets["testing"],
                paper.get("training"),
                paper.get("testing"),
            ]
        )
    rendered = render_table(headers, rows, title="Table 2: training and testing datasets")
    return TableResult(
        table_id="table2",
        description="Training and testing datasets per benchmark",
        rows=rows,
        headers=headers,
        rendered=rendered,
    )


def table3(history_bits: int = 12, context_switch: bool = False) -> TableResult:
    """The simulated predictor configurations in the paper's notation."""
    specs: List[SchemeSpec] = paper_table3_specs(history_bits, context_switch)
    headers = [
        "configuration",
        "BHT entries",
        "assoc",
        "BHT content",
        "PHT set size",
        "PHT entries",
        "PHT content",
    ]
    rows: List[List[object]] = []
    for spec in specs:
        rows.append(
            [
                spec.format(),
                "inf" if spec.history_size is None and spec.history_entity == "IBHT"
                else (1 if spec.history_entity == "HR" else spec.history_size),
                spec.history_assoc,
                spec.history_content,
                spec.pattern_tables,
                (1 << spec.pattern_bits) if spec.pattern_bits is not None else None,
                spec.pattern_content,
            ]
        )
    rendered = render_table(headers, rows, title="Table 3: simulated predictor configurations")
    return TableResult(
        table_id="table3",
        description="Configurations of simulated branch predictors",
        rows=rows,
        headers=headers,
        rendered=rendered,
    )


ALL_TABLES = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
}
