"""M88K-flavoured ISA substrate: assembler, CPU simulator, kernels."""

from .assembler import CODE_BASE, DATA_BASE, AssemblyError, Program, assemble
from .compiler import (
    CompileError,
    MiniCCompiler,
    compile_and_run,
    compile_source,
    reference_eval,
)
from .cpu import CPU, CPUState, ExecutionError, run_program
from .isa import (
    CMP_BITS,
    CONDITIONS,
    INSTRUCTION_SET,
    Instruction,
    InstructionSpec,
    Kind,
    NUM_REGISTERS,
    Operand,
    RETURN_REGISTER,
    WORD,
    compare_bits,
    evaluate_condition,
)
from .programs import PROGRAMS, assemble_program, program_trace

__all__ = [
    "AssemblyError",
    "CompileError",
    "MiniCCompiler",
    "compile_and_run",
    "compile_source",
    "reference_eval",
    "CMP_BITS",
    "CODE_BASE",
    "CONDITIONS",
    "CPU",
    "CPUState",
    "DATA_BASE",
    "ExecutionError",
    "INSTRUCTION_SET",
    "Instruction",
    "InstructionSpec",
    "Kind",
    "NUM_REGISTERS",
    "Operand",
    "PROGRAMS",
    "Program",
    "RETURN_REGISTER",
    "WORD",
    "assemble",
    "assemble_program",
    "compare_bits",
    "evaluate_condition",
    "program_trace",
    "run_program",
]
