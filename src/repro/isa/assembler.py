"""Two-pass assembler for the M88K-flavoured ISA.

Syntax::

    ; comment        (also '#')
    label:
        li   r2, 10
        loop:
        addi r2, r2, -1
        bcnd ne0, r2, loop
        halt

    .data            ; switches to the data segment
    table: .word 1 2 3 4
    buf:   .space 16

Pass 1 collects label addresses (code addresses advance one word per
instruction; data addresses one word per value); pass 2 encodes
operands. Code starts at :data:`CODE_BASE`, data at :data:`DATA_BASE`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .isa import (
    CMP_BITS,
    CONDITIONS,
    INSTRUCTION_SET,
    Instruction,
    NUM_REGISTERS,
    Operand,
    WORD,
)

CODE_BASE = 0x1000
DATA_BASE = 0x10000


class AssemblyError(ValueError):
    """Raised with a line number for any malformed assembly input."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


@dataclass
class Program:
    """The assembler's output: code, initialised data, and symbols."""

    instructions: List[Instruction]
    data: Dict[int, int] = field(default_factory=dict)
    labels: Dict[str, int] = field(default_factory=dict)

    @property
    def entry_point(self) -> int:
        return self.labels.get("main", CODE_BASE)

    def instruction_at(self, address: int) -> Optional[Instruction]:
        index = (address - CODE_BASE) // WORD
        if 0 <= index < len(self.instructions):
            return self.instructions[index]
        return None


_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_.]*):")
_REG_RE = re.compile(r"^r(\d+)$")


def _strip(line: str) -> str:
    for marker in (";", "#"):
        position = line.find(marker)
        if position >= 0:
            line = line[:position]
    return line.strip()


@dataclass
class _Line:
    number: int
    label: Optional[str]
    mnemonic: Optional[str]
    args: List[str]
    directive: Optional[str] = None


def _parse_lines(source: str) -> List[_Line]:
    lines: List[_Line] = []
    for number, raw in enumerate(source.splitlines(), start=1):
        text = _strip(raw)
        if not text:
            continue
        label = None
        match = _LABEL_RE.match(text)
        if match:
            label = match.group(1)
            text = text[match.end():].strip()
        if not text:
            lines.append(_Line(number, label, None, []))
            continue
        if text.startswith("."):
            directive, _, rest = text.partition(" ")
            args = rest.replace(",", " ").split()
            lines.append(_Line(number, label, None, args, directive=directive))
            continue
        mnemonic, _, rest = text.partition(" ")
        args = [a for a in rest.replace(",", " ").split() if a]
        lines.append(_Line(number, label, mnemonic.lower(), args))
    return lines


def assemble(source: str) -> Program:
    """Assemble ``source`` into a :class:`Program`."""
    lines = _parse_lines(source)
    labels: Dict[str, int] = {}
    code_address = CODE_BASE
    data_address = DATA_BASE
    in_data = False

    # Pass 1: label addresses and segment sizing.
    for line in lines:
        if line.directive == ".text":
            in_data = False
            if line.label:
                labels[line.label] = code_address
            continue
        if line.directive == ".data":
            in_data = True
            if line.label:
                labels[line.label] = data_address
            continue
        if line.label:
            labels[line.label] = data_address if in_data else code_address
        if line.directive == ".word":
            data_address += WORD * max(len(line.args), 1)
            continue
        if line.directive == ".space":
            if len(line.args) != 1:
                raise AssemblyError(line.number, ".space needs one size argument")
            data_address += WORD * int(line.args[0], 0)
            continue
        if line.directive is not None:
            raise AssemblyError(line.number, f"unknown directive {line.directive}")
        if line.mnemonic is not None:
            if in_data:
                raise AssemblyError(line.number, "instruction inside .data segment")
            code_address += WORD

    # Pass 2: encode.
    instructions: List[Instruction] = []
    data: Dict[int, int] = {}
    code_address = CODE_BASE
    data_address = DATA_BASE
    in_data = False
    for line in lines:
        if line.directive == ".text":
            in_data = False
            continue
        if line.directive == ".data":
            in_data = True
            continue
        if line.directive == ".word":
            values = line.args or ["0"]
            for value in values:
                data[data_address] = _resolve_value(value, labels, line.number)
                data_address += WORD
            continue
        if line.directive == ".space":
            count = int(line.args[0], 0)
            for _ in range(count):
                data[data_address] = 0
                data_address += WORD
            continue
        if line.mnemonic is None:
            continue
        spec = INSTRUCTION_SET.get(line.mnemonic)
        if spec is None:
            raise AssemblyError(line.number, f"unknown mnemonic {line.mnemonic!r}")
        if len(line.args) != len(spec.operands):
            raise AssemblyError(
                line.number,
                f"{line.mnemonic} expects {len(spec.operands)} operands, got {len(line.args)}",
            )
        operands = tuple(
            _encode_operand(kind, text, labels, line.number)
            for kind, text in zip(spec.operands, line.args)
        )
        instructions.append(
            Instruction(
                address=code_address,
                mnemonic=spec.mnemonic,
                kind=spec.kind,
                operands=operands,
            )
        )
        code_address += WORD

    return Program(instructions=instructions, data=data, labels=labels)


def _resolve_value(text: str, labels: Dict[str, int], line_number: int) -> int:
    if text in labels:
        return labels[text]
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblyError(line_number, f"cannot resolve value {text!r}") from None


def _encode_operand(
    kind: Operand, text: str, labels: Dict[str, int], line_number: int
) -> object:
    if kind is Operand.REG:
        match = _REG_RE.match(text)
        if not match:
            raise AssemblyError(line_number, f"expected register, got {text!r}")
        index = int(match.group(1))
        if not 0 <= index < NUM_REGISTERS:
            raise AssemblyError(line_number, f"register r{index} out of range")
        return index
    if kind is Operand.IMM:
        return _resolve_value(text, labels, line_number)
    if kind is Operand.LABEL:
        if text in labels:
            return labels[text]
        try:
            return int(text, 0)
        except ValueError:
            raise AssemblyError(line_number, f"undefined label {text!r}") from None
    if kind is Operand.COND:
        if text not in CONDITIONS:
            raise AssemblyError(
                line_number, f"unknown condition {text!r}; expected one of {CONDITIONS}"
            )
        return text
    if kind is Operand.BIT:
        if text in CMP_BITS:
            return CMP_BITS[text]
        try:
            bit = int(text, 0)
        except ValueError:
            raise AssemblyError(line_number, f"bad bit operand {text!r}") from None
        if not 0 <= bit < 32:
            raise AssemblyError(line_number, f"bit {bit} out of range")
        return bit
    raise AssemblyError(line_number, f"unhandled operand kind {kind}")  # pragma: no cover
