"""A compiler from the mini-C language to the M88K-flavoured ISA.

The gcc-analog workload (:mod:`repro.workloads.gcc_like`) defines a
small C-like language and a front end (lexer, recursive-descent parser,
AST). This module adds a real back end, closing the loop the paper's
toolchain had: **source -> compiler -> M88K binary -> instruction-level
simulator -> branch trace -> predictor**.

Supported language (exactly what the front end produces):

* ``int`` functions with up to three ``int`` parameters;
* statements: blocks, ``if``/``else``, ``while``, ``var`` declarations,
  assignments, ``return``;
* expressions: integer constants, variables, binary operators
  ``+ - * / < > == & |`` (comparisons yield 0/1; division by zero
  yields 0, matching the front end's folding rules), calls to other
  functions and to the ``__bN`` intrinsics.

Intrinsic semantics (defined here, emitted once per used intrinsic as a
tiny runtime routine): ``__bN(args...) = trem(sum(args) + N, 257)``
where ``trem`` is the truncated remainder the CPU's ``div`` induces.

Calling convention:

* arguments in ``r4 r5 r6``; result in ``r3``;
* ``r29`` is the stack pointer, ``r28`` the frame base;
* frame layout: ``[saved r1][saved r28][params...][locals...]``;
* expression temporaries live in ``r10..r24`` (caller-saved across
  calls by spilling to the stack).

:func:`reference_eval` is an independent interpreter of the same AST
with identical arithmetic, used by the tests to check compiled code
against a second implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..trace.events import TraceBuilder
from ..workloads.base import BranchProbe
from ..workloads.gcc_like import Node, Parser, lex
from .assembler import Program, assemble
from .cpu import CPUState, run_program

_ARG_REGISTERS = (4, 5, 6)
_FIRST_TEMP = 10
_LAST_TEMP = 24
_RESULT = 3
_FRAME = 28
_SP = 29
_STACK_BASE = 0x80000
_INTRINSIC_MOD = 257


class CompileError(ValueError):
    """Raised for programs the back end cannot lower."""


def _silent_front_end(source: str) -> List[Node]:
    """Run the instrumented front end with a throwaway probe."""
    probe = BranchProbe("compiler", TraceBuilder(name="compiler-internal"))
    tokens = lex(probe, source)
    return Parser(probe, tokens).parse_unit()


def trunc_div(a: int, b: int) -> int:
    """The CPU's truncating division, with the language's /0 -> 0 rule."""
    if b == 0:
        return 0
    return int(a / b)


def trunc_rem(a: int, b: int) -> int:
    """Truncated remainder matching ``a - trunc_div(a, b) * b``."""
    return a - trunc_div(a, b) * b


@dataclass
class _FunctionContext:
    name: str
    slots: Dict[str, int] = field(default_factory=dict)
    next_label: int = 0

    def slot_for(self, variable: str, create: bool = False) -> int:
        if variable not in self.slots:
            if not create:
                raise CompileError(
                    f"{self.name}: use of undeclared variable {variable!r}"
                )
            self.slots[variable] = len(self.slots)
        return self.slots[variable]

    def label(self, hint: str) -> str:
        self.next_label += 1
        return f"{self.name}_{hint}_{self.next_label}"


class MiniCCompiler:
    """Lowers a parsed translation unit to assembly text."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._intrinsics_used: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def compile_unit(self, source: str) -> str:
        """Compile every function in ``source``; no entry point."""
        functions = _silent_front_end(source)
        if not functions:
            raise CompileError("no functions in translation unit")
        self.lines = []
        self._intrinsics_used = {}
        for function in functions:
            self._compile_function(function)
        self._emit_intrinsic_runtime()
        return "\n".join(self.lines) + "\n"

    def compile_program(
        self, source: str, entry: str, args: Sequence[int] = ()
    ) -> str:
        """Compile and add a ``main`` that calls ``entry(args)``."""
        if len(args) > len(_ARG_REGISTERS):
            raise CompileError(f"at most {len(_ARG_REGISTERS)} arguments supported")
        body = self.compile_unit(source)
        header = [f"main:   li   r{_SP}, {_STACK_BASE:#x}"]
        for register, value in zip(_ARG_REGISTERS, args):
            header.append(f"        li   r{register}, {value}")
        header.append(f"        bsr  {entry}")
        header.append("        halt")
        return "\n".join(header) + "\n" + body

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------
    def _compile_function(self, function: Node) -> None:
        if function.kind != "function":
            raise CompileError(f"expected a function node, got {function.kind}")
        name, params = function.value
        context = _FunctionContext(name=name)
        for parameter in params:
            context.slot_for(parameter, create=True)
        body_lines: List[str] = []
        self._compile_block(function.children[0], context, body_lines, depth=_FIRST_TEMP)
        frame_bytes = 8 + 4 * len(context.slots)

        self._emit(f"{name}:")
        self._emit(f"        st   r1, r{_SP}, 0")
        self._emit(f"        st   r{_FRAME}, r{_SP}, 4")
        self._emit(f"        add  r{_FRAME}, r{_SP}, r0")
        self._emit(f"        addi r{_SP}, r{_SP}, {frame_bytes}")
        for index, register in enumerate(_ARG_REGISTERS[: len(params)]):
            self._emit(f"        st   r{register}, r{_FRAME}, {8 + 4 * index}")
        self.lines.extend(body_lines)
        # Fall-through return (functions without an explicit return
        # yield 0, like the front end's error-recovery style).
        self._emit(f"        li   r{_RESULT}, 0")
        self._emit_epilogue()

    def _emit_epilogue(self) -> None:
        self._emit(f"        add  r{_SP}, r{_FRAME}, r0")
        self._emit(f"        ld   r1, r{_FRAME}, 0")
        self._emit(f"        ld   r{_FRAME}, r{_FRAME}, 4")
        self._emit("        jmp  r1")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _compile_block(self, node: Node, ctx: _FunctionContext, out: List[str], depth: int) -> None:
        for statement in node.children:
            self._compile_statement(statement, ctx, out, depth)

    def _compile_statement(self, node: Node, ctx: _FunctionContext, out: List[str], depth: int) -> None:
        kind = node.kind
        if kind == "block":
            self._compile_block(node, ctx, out, depth)
        elif kind in ("declare", "assign"):
            register = self._compile_expression(node.children[0], ctx, out, depth)
            slot = ctx.slot_for(str(node.value), create=(kind == "declare"))
            out.append(f"        st   r{register}, r{_FRAME}, {8 + 4 * slot}")
        elif kind == "return":
            register = self._compile_expression(node.children[0], ctx, out, depth)
            out.append(f"        add  r{_RESULT}, r{register}, r0")
            out.append(f"        add  r{_SP}, r{_FRAME}, r0")
            out.append(f"        ld   r1, r{_FRAME}, 0")
            out.append(f"        ld   r{_FRAME}, r{_FRAME}, 4")
            out.append("        jmp  r1")
        elif kind == "if":
            self._compile_if(node, ctx, out, depth)
        elif kind == "while":
            self._compile_while(node, ctx, out, depth)
        elif kind == "expr-stmt":
            pass  # a bare identifier has no effect
        else:
            raise CompileError(f"unsupported statement kind {kind!r}")

    def _compile_if(self, node: Node, ctx: _FunctionContext, out: List[str], depth: int) -> None:
        register = self._compile_expression(node.children[0], ctx, out, depth)
        else_label = ctx.label("else")
        end_label = ctx.label("endif")
        out.append(f"        bcnd eq0, r{register}, {else_label}")
        self._compile_statement(node.children[1], ctx, out, depth)
        out.append(f"        br   {end_label}")
        out.append(f"{else_label}:")
        if len(node.children) > 2:
            self._compile_statement(node.children[2], ctx, out, depth)
        out.append(f"{end_label}:")

    def _compile_while(self, node: Node, ctx: _FunctionContext, out: List[str], depth: int) -> None:
        head_label = ctx.label("while")
        end_label = ctx.label("wend")
        out.append(f"{head_label}:")
        register = self._compile_expression(node.children[0], ctx, out, depth)
        out.append(f"        bcnd eq0, r{register}, {end_label}")
        self._compile_statement(node.children[1], ctx, out, depth)
        out.append(f"        br   {head_label}")
        out.append(f"{end_label}:")

    # ------------------------------------------------------------------
    # Expressions: result lands in register `depth`
    # ------------------------------------------------------------------
    def _compile_expression(self, node: Node, ctx: _FunctionContext, out: List[str], depth: int) -> int:
        if depth > _LAST_TEMP:
            raise CompileError("expression too deep for the temp register file")
        kind = node.kind
        if kind == "const":
            out.append(f"        li   r{depth}, {int(node.value)}")
            return depth
        if kind == "name":
            slot = ctx.slot_for(str(node.value))
            out.append(f"        ld   r{depth}, r{_FRAME}, {8 + 4 * slot}")
            return depth
        if kind == "binop":
            return self._compile_binop(node, ctx, out, depth)
        if kind == "call":
            return self._compile_call(node, ctx, out, depth)
        raise CompileError(f"unsupported expression kind {kind!r}")

    def _compile_binop(self, node: Node, ctx: _FunctionContext, out: List[str], depth: int) -> int:
        op = str(node.value)
        left = self._compile_expression(node.children[0], ctx, out, depth)
        right = self._compile_expression(node.children[1], ctx, out, depth + 1)
        simple = {"+": "add", "-": "sub", "*": "mul", "&": "and", "|": "or"}
        if op in simple:
            out.append(f"        {simple[op]:4s} r{left}, r{left}, r{right}")
            return left
        if op == "/":
            skip = ctx.label("divz")
            end = ctx.label("divend")
            out.append(f"        bcnd ne0, r{right}, {skip}")
            out.append(f"        li   r{left}, 0")
            out.append(f"        br   {end}")
            out.append(f"{skip}:")
            out.append(f"        div  r{left}, r{left}, r{right}")
            out.append(f"{end}:")
            return left
        if op in ("<", ">", "=="):
            bit = {"<": "lt", ">": "gt", "==": "eq"}[op]
            true_label = ctx.label("cmpt")
            end_label = ctx.label("cmpe")
            scratch = depth + 2
            if scratch > _LAST_TEMP:
                raise CompileError("comparison too deep for the temp register file")
            out.append(f"        cmp  r{scratch}, r{left}, r{right}")
            out.append(f"        bb1  {bit}, r{scratch}, {true_label}")
            out.append(f"        li   r{left}, 0")
            out.append(f"        br   {end_label}")
            out.append(f"{true_label}:")
            out.append(f"        li   r{left}, 1")
            out.append(f"{end_label}:")
            return left
        raise CompileError(f"unsupported operator {op!r}")

    def _compile_call(self, node: Node, ctx: _FunctionContext, out: List[str], depth: int) -> int:
        callee = str(node.value)
        if len(node.children) > len(_ARG_REGISTERS):
            raise CompileError(f"{callee}: more than {len(_ARG_REGISTERS)} arguments")
        if callee.startswith("__b"):
            self._intrinsics_used[callee] = len(node.children)
        # Evaluate arguments left to right into consecutive temps.
        registers: List[int] = []
        cursor = depth
        for argument in node.children:
            registers.append(self._compile_expression(argument, ctx, out, cursor))
            cursor += 1
        # Caller-save the live temps below `depth` plus the argument
        # temps themselves are consumed by the call.
        for index, register in enumerate(range(_FIRST_TEMP, depth)):
            out.append(f"        st   r{register}, r{_SP}, {4 * index}")
        live = depth - _FIRST_TEMP
        if live:
            out.append(f"        addi r{_SP}, r{_SP}, {4 * live}")
        for target, register in zip(_ARG_REGISTERS, registers):
            out.append(f"        add  r{target}, r{register}, r0")
        out.append(f"        bsr  {callee}")
        if live:
            out.append(f"        addi r{_SP}, r{_SP}, {-4 * live}")
        for index, register in enumerate(range(_FIRST_TEMP, depth)):
            out.append(f"        ld   r{register}, r{_SP}, {4 * index}")
        out.append(f"        add  r{depth}, r{_RESULT}, r0")
        return depth

    # ------------------------------------------------------------------
    # Intrinsic runtime
    # ------------------------------------------------------------------
    def _emit_intrinsic_runtime(self) -> None:
        for name, arity in sorted(self._intrinsics_used.items()):
            offset = int(name[3:])
            self._emit(f"{name}:")
            self._emit(f"        li   r10, {offset}")
            for register in _ARG_REGISTERS[:arity]:
                self._emit(f"        add  r10, r10, r{register}")
            # Truncated remainder mod 257: r3 = r10 - (r10 / 257) * 257.
            self._emit(f"        li   r11, {_INTRINSIC_MOD}")
            self._emit("        div  r12, r10, r11")
            self._emit("        mul  r12, r12, r11")
            self._emit(f"        sub  r{_RESULT}, r10, r12")
            self._emit("        jmp  r1")

    def _emit(self, line: str) -> None:
        self.lines.append(line)


# ----------------------------------------------------------------------
# Convenience drivers
# ----------------------------------------------------------------------

def compile_source(source: str, entry: str = "fn0", args: Sequence[int] = ()) -> Program:
    """Compile mini-C source to an assembled :class:`Program`."""
    assembly = MiniCCompiler().compile_program(source, entry, args)
    return assemble(assembly)


def compile_and_run(
    source: str,
    entry: str = "fn0",
    args: Sequence[int] = (),
    max_instructions: int = 2_000_000,
) -> Tuple[int, CPUState, "object"]:
    """Compile, execute, and return (result, cpu state, branch trace)."""
    program = compile_source(source, entry, args)
    state, trace = run_program(
        program, trace_name=f"minic-{entry}", max_instructions=max_instructions
    )
    return state.reg(_RESULT), state, trace


# ----------------------------------------------------------------------
# Reference interpreter (for differential testing)
# ----------------------------------------------------------------------

def reference_eval(source: str, entry: str = "fn0", args: Sequence[int] = ()) -> int:
    """Interpret mini-C with the compiler's exact arithmetic."""
    functions = {f.value[0]: f for f in _silent_front_end(source)}
    if entry not in functions:
        raise CompileError(f"no function named {entry!r}")
    return _call_reference(functions, entry, list(args))


def _call_reference(functions: Dict[str, Node], name: str, args: List[int]) -> int:
    if name.startswith("__b"):
        return trunc_rem(sum(args) + int(name[3:]), _INTRINSIC_MOD)
    function = functions[name]
    _name, params = function.value
    scope: Dict[str, int] = dict(zip(params, args))

    class _Return(Exception):
        def __init__(self, value: int) -> None:
            self.value = value

    def run_statement(node: Node) -> None:
        if node.kind == "block":
            for child in node.children:
                run_statement(child)
        elif node.kind in ("declare", "assign"):
            scope[str(node.value)] = run_expression(node.children[0])
        elif node.kind == "return":
            raise _Return(run_expression(node.children[0]))
        elif node.kind == "if":
            if run_expression(node.children[0]) != 0:
                run_statement(node.children[1])
            elif len(node.children) > 2:
                run_statement(node.children[2])
        elif node.kind == "while":
            while run_expression(node.children[0]) != 0:
                run_statement(node.children[1])
        elif node.kind == "expr-stmt":
            pass
        else:
            raise CompileError(f"reference: unsupported statement {node.kind!r}")

    def run_expression(node: Node) -> int:
        if node.kind == "const":
            return int(node.value)
        if node.kind == "name":
            variable = str(node.value)
            if variable not in scope:
                raise CompileError(f"reference: undeclared variable {variable!r}")
            return scope[variable]
        if node.kind == "binop":
            left = run_expression(node.children[0])
            right = run_expression(node.children[1])
            op = str(node.value)
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                return trunc_div(left, right)
            if op == "<":
                return int(left < right)
            if op == ">":
                return int(left > right)
            if op == "==":
                return int(left == right)
            if op == "&":
                return left & right
            if op == "|":
                return left | right
            raise CompileError(f"reference: unsupported operator {op!r}")
        if node.kind == "call":
            call_args = [run_expression(child) for child in node.children]
            return _call_reference(functions, str(node.value), call_args)
        raise CompileError(f"reference: unsupported expression {node.kind!r}")

    try:
        run_statement(function.children[0])
    except _Return as result:
        return result.value
    return 0
