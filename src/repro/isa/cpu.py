"""Instruction-level simulator with branch-trace capture.

Executes a :class:`~repro.isa.assembler.Program` and records every
control-transfer instruction into a :class:`~repro.trace.events.Trace`
via :class:`~repro.trace.events.TraceBuilder` — the same contract the
SPEC-analog workloads use, so ISA-generated traces feed the identical
prediction pipeline (this mirrors the paper's Motorola 88100 simulator
feeding its branch prediction simulator).

Branch classes recorded:

* ``bcnd`` / ``bb0`` / ``bb1`` — conditional (pc, target and direction);
* ``br`` — unconditional;
* ``bsr`` / ``jsr`` — call;
* ``jmp r1`` — return (any other ``jmp`` is an unconditional jump);
* ``trap`` — emits a trap marker (a context-switch opportunity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..trace.events import BranchClass, Trace, TraceBuilder
from .assembler import Program
from .isa import Kind, NUM_REGISTERS, RETURN_REGISTER, WORD, compare_bits, evaluate_condition


class ExecutionError(RuntimeError):
    """Raised on invalid execution (bad pc, division by zero, runaway)."""


@dataclass
class CPUState:
    """Architected state after a run (for tests and inspection)."""

    registers: List[int]
    memory: Dict[int, int]
    instructions_executed: int
    halted: bool

    def reg(self, index: int) -> int:
        return self.registers[index]


class CPU:
    """A simple interpreter for the M88K-flavoured ISA."""

    def __init__(
        self,
        program: Program,
        trace_name: str = "isa",
        max_instructions: int = 5_000_000,
    ) -> None:
        self.program = program
        self.max_instructions = max_instructions
        self.registers = [0] * NUM_REGISTERS
        self.memory: Dict[int, int] = dict(program.data)
        self.pc = program.entry_point
        self.halted = False
        self.instructions_executed = 0
        self._builder = TraceBuilder(name=trace_name, source="isa")

    # ------------------------------------------------------------------
    # Register helpers (r0 is hardwired to zero)
    # ------------------------------------------------------------------
    def _read(self, index: int) -> int:
        return 0 if index == 0 else self.registers[index]

    def _write(self, index: int, value: int) -> None:
        if index != 0:
            self.registers[index] = value

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> CPUState:
        """Execute until ``halt`` (or the instruction budget runs out)."""
        while not self.halted:
            self.step()
        return CPUState(
            registers=list(self.registers),
            memory=dict(self.memory),
            instructions_executed=self.instructions_executed,
            halted=self.halted,
        )

    def step(self) -> None:
        """Execute one instruction."""
        if self.instructions_executed >= self.max_instructions:
            raise ExecutionError(
                f"instruction budget exhausted ({self.max_instructions}); runaway program?"
            )
        instruction = self.program.instruction_at(self.pc)
        if instruction is None:
            raise ExecutionError(f"pc {self.pc:#x} outside the code segment")
        self.instructions_executed += 1
        next_pc = self.pc + WORD
        kind = instruction.kind
        ops = instruction.operands

        if kind is Kind.ALU:
            rd, rs1, rs2 = ops
            self._write(rd, self._alu(instruction.mnemonic, self._read(rs1), self._read(rs2)))
            self._builder.instructions(1)
        elif kind is Kind.ALU_IMM:
            if instruction.mnemonic == "li":
                rd, imm = ops
                self._write(rd, imm)
            else:
                rd, rs1, imm = ops
                base_op = {"addi": "add", "muli": "mul", "andi": "and", "ori": "or", "slli": "sll"}[
                    instruction.mnemonic
                ]
                self._write(rd, self._alu(base_op, self._read(rs1), imm))
            self._builder.instructions(1)
        elif kind is Kind.LOAD:
            rd, base, offset = ops
            self._write(rd, self.memory.get(self._read(base) + offset, 0))
            self._builder.instructions(1)
        elif kind is Kind.STORE:
            rs, base, offset = ops
            self.memory[self._read(base) + offset] = self._read(rs)
            self._builder.instructions(1)
        elif kind is Kind.CMP:
            rd, rs1, rs2 = ops
            self._write(rd, compare_bits(self._read(rs1), self._read(rs2)))
            self._builder.instructions(1)
        elif kind is Kind.BRANCH_COND:
            condition, rs, target = ops
            taken = evaluate_condition(condition, self._read(rs))
            self._builder.branch(self.pc, taken, BranchClass.CONDITIONAL, target=target)
            if taken:
                next_pc = target
        elif kind is Kind.BRANCH_BIT:
            bit, rs, target = ops
            bit_value = (self._read(rs) >> bit) & 1
            taken = bit_value == (1 if instruction.mnemonic == "bb1" else 0)
            self._builder.branch(self.pc, taken, BranchClass.CONDITIONAL, target=target)
            if taken:
                next_pc = target
        elif kind is Kind.BRANCH:
            (target,) = ops
            self._builder.branch(self.pc, True, BranchClass.UNCONDITIONAL, target=target)
            next_pc = target
        elif kind is Kind.CALL:
            (target,) = ops
            self._write(RETURN_REGISTER, next_pc)
            self._builder.branch(self.pc, True, BranchClass.CALL, target=target)
            next_pc = target
        elif kind is Kind.CALL_REG:
            (rs,) = ops
            target = self._read(rs)
            self._write(RETURN_REGISTER, next_pc)
            self._builder.branch(self.pc, True, BranchClass.CALL, target=target)
            next_pc = target
        elif kind is Kind.JUMP_REG:
            (rs,) = ops
            target = self._read(rs)
            branch_class = BranchClass.RETURN if rs == RETURN_REGISTER else BranchClass.UNCONDITIONAL
            self._builder.branch(self.pc, True, branch_class, target=target)
            next_pc = target
        elif kind is Kind.TRAP:
            self._builder.trap()
        elif kind is Kind.HALT:
            self.halted = True
            self._builder.instructions(1)
        elif kind is Kind.NOP:
            self._builder.instructions(1)
        else:  # pragma: no cover
            raise ExecutionError(f"unhandled instruction kind {kind}")

        self.pc = next_pc

    def _alu(self, op: str, left: int, right: int) -> int:
        if op == "add":
            return left + right
        if op == "sub":
            return left - right
        if op == "mul":
            return left * right
        if op == "div":
            if right == 0:
                raise ExecutionError("division by zero")
            return int(left / right)  # truncating, like hardware idiv
        if op == "and":
            return left & right
        if op == "or":
            return left | right
        if op == "xor":
            return left ^ right
        if op == "sll":
            return left << (right & 63)
        if op == "srl":
            return (left % (1 << 64)) >> (right & 63)
        raise ExecutionError(f"unhandled ALU op {op}")  # pragma: no cover

    def trace(self) -> Trace:
        """The branch trace captured so far."""
        return self._builder.build()


def run_program(
    program: Program, trace_name: str = "isa", max_instructions: int = 5_000_000
) -> "tuple[CPUState, Trace]":
    """Assemble-and-go helper: execute and return (final state, trace)."""
    cpu = CPU(program, trace_name=trace_name, max_instructions=max_instructions)
    state = cpu.run()
    return state, cpu.trace()
