"""An M88K-flavoured instruction set.

The paper generated its traces with a Motorola 88100 instruction-level
simulator. This module defines a compact ISA in the 88100's style —
32 general registers with ``r0`` hardwired to zero, ``cmp`` producing a
condition bit-field, ``bcnd``/``bb0``/``bb1`` conditional branches,
``bsr``/``jmp`` subroutine linkage through ``r1`` — rich enough to write
real kernels whose traces exercise the same predictor pipeline as the
SPEC-analog workloads.

Instructions are described declaratively; the assembler and CPU consume
:data:`INSTRUCTION_SET`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

NUM_REGISTERS = 32
RETURN_REGISTER = 1  # bsr/jsr store the return address in r1, as on the 88100
WORD = 4


class Operand(enum.Enum):
    """Operand kinds, used by the assembler for parsing/validation."""

    REG = "reg"
    IMM = "imm"
    LABEL = "label"
    COND = "cond"
    BIT = "bit"


class Kind(enum.Enum):
    """Execution classes the CPU dispatches on."""

    ALU = "alu"
    ALU_IMM = "alu-imm"
    LOAD = "load"
    STORE = "store"
    CMP = "cmp"
    BRANCH_COND = "branch-cond"
    BRANCH_BIT = "branch-bit"
    BRANCH = "branch"
    CALL = "call"
    JUMP_REG = "jump-reg"
    CALL_REG = "call-reg"
    TRAP = "trap"
    HALT = "halt"
    NOP = "nop"


@dataclass(frozen=True)
class InstructionSpec:
    """Mnemonic signature: execution kind + operand shapes."""

    mnemonic: str
    kind: Kind
    operands: Tuple[Operand, ...]


# Condition codes for bcnd, in 88100 spirit (test a register vs zero).
CONDITIONS = ("eq0", "ne0", "gt0", "lt0", "ge0", "le0")

# cmp writes a bit-field; these are the bit positions bb0/bb1 test.
CMP_BITS: Dict[str, int] = {"eq": 2, "ne": 3, "gt": 4, "le": 5, "lt": 6, "ge": 7}


def evaluate_condition(condition: str, value: int) -> bool:
    """bcnd semantics: test ``value`` against zero."""
    if condition == "eq0":
        return value == 0
    if condition == "ne0":
        return value != 0
    if condition == "gt0":
        return value > 0
    if condition == "lt0":
        return value < 0
    if condition == "ge0":
        return value >= 0
    if condition == "le0":
        return value <= 0
    raise ValueError(f"unknown condition {condition!r}")


def compare_bits(left: int, right: int) -> int:
    """The 88100 ``cmp`` result: a bit-field of all six relations."""
    bits = 0
    if left == right:
        bits |= 1 << CMP_BITS["eq"]
    if left != right:
        bits |= 1 << CMP_BITS["ne"]
    if left > right:
        bits |= 1 << CMP_BITS["gt"]
    if left <= right:
        bits |= 1 << CMP_BITS["le"]
    if left < right:
        bits |= 1 << CMP_BITS["lt"]
    if left >= right:
        bits |= 1 << CMP_BITS["ge"]
    return bits


_R = Operand.REG
_I = Operand.IMM
_L = Operand.LABEL

INSTRUCTION_SET: Dict[str, InstructionSpec] = {
    spec.mnemonic: spec
    for spec in (
        # Arithmetic / logic, register-register.
        InstructionSpec("add", Kind.ALU, (_R, _R, _R)),
        InstructionSpec("sub", Kind.ALU, (_R, _R, _R)),
        InstructionSpec("mul", Kind.ALU, (_R, _R, _R)),
        InstructionSpec("div", Kind.ALU, (_R, _R, _R)),
        InstructionSpec("and", Kind.ALU, (_R, _R, _R)),
        InstructionSpec("or", Kind.ALU, (_R, _R, _R)),
        InstructionSpec("xor", Kind.ALU, (_R, _R, _R)),
        InstructionSpec("sll", Kind.ALU, (_R, _R, _R)),
        InstructionSpec("srl", Kind.ALU, (_R, _R, _R)),
        # Immediate forms.
        InstructionSpec("addi", Kind.ALU_IMM, (_R, _R, _I)),
        InstructionSpec("muli", Kind.ALU_IMM, (_R, _R, _I)),
        InstructionSpec("andi", Kind.ALU_IMM, (_R, _R, _I)),
        InstructionSpec("ori", Kind.ALU_IMM, (_R, _R, _I)),
        InstructionSpec("slli", Kind.ALU_IMM, (_R, _R, _I)),
        InstructionSpec("li", Kind.ALU_IMM, (_R, _I)),
        # Memory: ld/st rd, rbase, offset.
        InstructionSpec("ld", Kind.LOAD, (_R, _R, _I)),
        InstructionSpec("st", Kind.STORE, (_R, _R, _I)),
        # Compare to a condition bit-field.
        InstructionSpec("cmp", Kind.CMP, (_R, _R, _R)),
        # Branches.
        InstructionSpec("bcnd", Kind.BRANCH_COND, (Operand.COND, _R, _L)),
        InstructionSpec("bb0", Kind.BRANCH_BIT, (Operand.BIT, _R, _L)),
        InstructionSpec("bb1", Kind.BRANCH_BIT, (Operand.BIT, _R, _L)),
        InstructionSpec("br", Kind.BRANCH, (_L,)),
        InstructionSpec("bsr", Kind.CALL, (_L,)),
        InstructionSpec("jmp", Kind.JUMP_REG, (_R,)),
        InstructionSpec("jsr", Kind.CALL_REG, (_R,)),
        # System.
        InstructionSpec("trap", Kind.TRAP, (_I,)),
        InstructionSpec("halt", Kind.HALT, ()),
        InstructionSpec("nop", Kind.NOP, ()),
    )
}


@dataclass(frozen=True)
class Instruction:
    """One assembled instruction."""

    address: int
    mnemonic: str
    kind: Kind
    operands: Tuple[object, ...]

    def __str__(self) -> str:
        shapes = INSTRUCTION_SET[self.mnemonic].operands
        parts = []
        for shape, operand in zip(shapes, self.operands):
            if shape is Operand.REG:
                parts.append(f"r{operand}")
            elif shape is Operand.LABEL:
                parts.append(f"{operand:#x}")
            else:
                parts.append(str(operand))
        return f"{self.address:#06x}: {self.mnemonic} {', '.join(parts)}".rstrip()
