"""Simulation observability: probes, metrics, profiling and reports.

The subsystem splits into four layers, each usable on its own:

* :mod:`repro.obs.probes` — the :class:`Probe` callback surface the
  engine invokes, and :class:`ProbeSet` for composing observers. The
  engine takes a separate zero-overhead path when no probe is attached,
  and probes can never change a result (they only observe; the
  ``repro.check`` lints enforce it statically, the equivalence tests
  dynamically).
* :mod:`repro.obs.metrics` — interval accuracy series, mispredict-streak
  histograms, top-K offender tables, post-flush warm-up curves, and
  PHT/BHT occupancy + interference counters.
* :mod:`repro.obs.profile` — per-phase ``perf_counter`` spans,
  per-call predict/update timing, optional cProfile capture.
* :mod:`repro.obs.report` / :mod:`repro.obs.export` /
  :mod:`repro.obs.runner` — the schema-stable :class:`RunReport`, JSONL
  event traces, and the :func:`observe` orchestration behind
  ``python -m repro.obs``.
* :mod:`repro.obs.ledger` — the persistent, append-only run ledger
  (``results/ledger/``, content-addressed by config hash) and the
  regression sentinel behind ``repro-obs history/compare/regress``.
* :mod:`repro.obs.live` — per-worker sweep heartbeats, the
  :class:`SweepMonitor` aggregator and the ``--follow`` status line.
* :mod:`repro.obs.spans` / :mod:`repro.obs.resources` — hierarchical
  span tracing across worker processes (sweep → cell → phase → block)
  with per-cell resource readings, exported as Perfetto-loadable
  Chrome trace-event JSON (``repro-obs sweep --trace-out`` /
  ``repro-obs trace``).
* :mod:`repro.obs.prom` — the run ledger rendered as Prometheus text
  exposition (``repro-obs metrics``).
* :mod:`repro.obs.log` — run-id-scoped structured logging
  (off by default; ``repro.obs.log.configure`` enables it).

Quick start::

    from repro.obs import observe
    report = observe("gag-12", workload="eqntott")
    print(report.result.accuracy, report.streaks, report.offenders[0])

Cross-run memory::

    from repro.obs import RunLedger, entry_from_report, regress
    ledger = RunLedger("results/ledger")
    ledger.append(entry_from_report(report))
    print(regress(ledger).format_text())
"""

from . import log
from .export import EventTraceProbe, write_report
from .ledger import (
    LEDGER_SCHEMA,
    LedgerEntry,
    RegressionFinding,
    RegressionReport,
    RunDelta,
    RunLedger,
    compare_entries,
    compute_config_hash,
    entries_from_matrix,
    entry_from_benchmark,
    entry_from_report,
    export_bench,
    format_history,
    git_revision,
    regress,
)
from .live import (
    FollowPrinter,
    Heartbeat,
    SweepMonitor,
    SweepStatus,
    WorkerState,
    format_status,
)
from .metrics import (
    DEFAULT_INTERVAL_INSTRUCTIONS,
    IntervalPoint,
    IntervalSeriesProbe,
    Offender,
    StreakHistogramProbe,
    TableStatsProbe,
    TopOffendersProbe,
    WarmupCurveProbe,
    WarmupWindow,
)
from .probes import Probe, ProbeSet
from .profile import PhaseTimer, SpanStats, TimingPredictor, run_cprofile
from .prom import render_metrics
from .report import SCHEMA, RunReport, format_report
from .resources import ResourceSample, read_resources
from .runner import normalize_scheme, observe
from .spans import Span, SpanCollector, SpanRecorder, recording, to_chrome_trace

__all__ = [
    "DEFAULT_INTERVAL_INSTRUCTIONS",
    "EventTraceProbe",
    "FollowPrinter",
    "Heartbeat",
    "IntervalPoint",
    "IntervalSeriesProbe",
    "LEDGER_SCHEMA",
    "LedgerEntry",
    "Offender",
    "PhaseTimer",
    "Probe",
    "ProbeSet",
    "RegressionFinding",
    "RegressionReport",
    "ResourceSample",
    "RunDelta",
    "RunLedger",
    "RunReport",
    "SCHEMA",
    "Span",
    "SpanCollector",
    "SpanRecorder",
    "SpanStats",
    "StreakHistogramProbe",
    "SweepMonitor",
    "SweepStatus",
    "TableStatsProbe",
    "TimingPredictor",
    "TopOffendersProbe",
    "WarmupCurveProbe",
    "WarmupWindow",
    "WorkerState",
    "compare_entries",
    "compute_config_hash",
    "entries_from_matrix",
    "entry_from_benchmark",
    "entry_from_report",
    "export_bench",
    "format_history",
    "format_report",
    "format_status",
    "git_revision",
    "log",
    "normalize_scheme",
    "observe",
    "read_resources",
    "recording",
    "regress",
    "render_metrics",
    "run_cprofile",
    "to_chrome_trace",
    "write_report",
]
