"""Simulation observability: probes, metrics, profiling and reports.

The subsystem splits into four layers, each usable on its own:

* :mod:`repro.obs.probes` — the :class:`Probe` callback surface the
  engine invokes, and :class:`ProbeSet` for composing observers. The
  engine takes a separate zero-overhead path when no probe is attached,
  and probes can never change a result (they only observe; the
  ``repro.check`` lints enforce it statically, the equivalence tests
  dynamically).
* :mod:`repro.obs.metrics` — interval accuracy series, mispredict-streak
  histograms, top-K offender tables, post-flush warm-up curves, and
  PHT/BHT occupancy + interference counters.
* :mod:`repro.obs.profile` — per-phase ``perf_counter`` spans,
  per-call predict/update timing, optional cProfile capture.
* :mod:`repro.obs.report` / :mod:`repro.obs.export` /
  :mod:`repro.obs.runner` — the schema-stable :class:`RunReport`, JSONL
  event traces, and the :func:`observe` orchestration behind
  ``python -m repro.obs``.

Quick start::

    from repro.obs import observe
    report = observe("gag-12", workload="eqntott")
    print(report.result.accuracy, report.streaks, report.offenders[0])
"""

from .export import EventTraceProbe, write_report
from .metrics import (
    DEFAULT_INTERVAL_INSTRUCTIONS,
    IntervalPoint,
    IntervalSeriesProbe,
    Offender,
    StreakHistogramProbe,
    TableStatsProbe,
    TopOffendersProbe,
    WarmupCurveProbe,
    WarmupWindow,
)
from .probes import Probe, ProbeSet
from .profile import PhaseTimer, SpanStats, TimingPredictor, run_cprofile
from .report import SCHEMA, RunReport, format_report
from .runner import normalize_scheme, observe

__all__ = [
    "DEFAULT_INTERVAL_INSTRUCTIONS",
    "EventTraceProbe",
    "IntervalPoint",
    "IntervalSeriesProbe",
    "Offender",
    "PhaseTimer",
    "Probe",
    "ProbeSet",
    "RunReport",
    "SCHEMA",
    "SpanStats",
    "StreakHistogramProbe",
    "TableStatsProbe",
    "TimingPredictor",
    "TopOffendersProbe",
    "WarmupCurveProbe",
    "WarmupWindow",
    "format_report",
    "normalize_scheme",
    "observe",
    "run_cprofile",
    "write_report",
]
