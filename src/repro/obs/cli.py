"""``python -m repro.obs`` / ``repro-obs`` — observe, record, compare.

Subcommands::

    repro-obs run --scheme GAg --workload eqntott [--ledger [DIR]]
    repro-obs history [--scheme S] [--workload W] [--limit N]
    repro-obs compare latest~1 latest
    repro-obs regress [--tolerance F] [--throughput-drop F] [--strict]
    repro-obs export-bench [--out BENCH_YYYYMMDD.json]
    repro-obs sweep gag-8 pag-8 gshare-8 --workers 4 --follow
    repro-obs sweep gag-8 pag-8 --trace-out results/sweep-trace.json
    repro-obs trace export results/sweep-spans.jsonl --out trace.json
    repro-obs trace summary results/sweep-spans.jsonl
    repro-obs metrics [--ledger DIR] [--out metrics.prom]
    repro-obs characterize --workload eqntott [--scheme S ...] [--max-k K]
    repro-obs attribute --scheme gag-12 --workload eqntott [--top N]

The original flat form (``python -m repro.obs --scheme GAg --workload
eqntott``) still works and means ``run`` — existing scripts and the
``make obs-demo`` target parse unchanged.

``run`` text output is the perf-style report of
:func:`repro.obs.report.format_report`; JSON output is the
schema-stable :meth:`RunReport.to_dict` payload (``schema:
"repro.obs/1"``). ``--ledger`` appends the run to the persistent run
ledger (:mod:`repro.obs.ledger`), where ``history`` / ``compare`` /
``regress`` audit it later. ``sweep --follow`` renders live per-worker
heartbeats (:mod:`repro.obs.live`) as a single status line on stderr.

``sweep --trace-out`` / ``--spans`` span-trace the whole sweep
(:mod:`repro.obs.spans`) and write a Perfetto-loadable Chrome trace /
a native spans JSONL; ``trace export`` / ``trace summary`` work with
those span files after the fact, and ``metrics`` renders the ledger as
Prometheus text exposition (:mod:`repro.obs.prom`).

``characterize`` runs the predictability characterization engine
(:mod:`repro.analysis.predictability`) on a workload or trace file and
prints / records the schema-stable ``repro.analysis.char`` report;
``attribute`` exposes the library-only misprediction breakdown,
per-site report and interference summary for one scheme without
writing python.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from ..sim.engine import SIM_BACKENDS, ContextSwitchConfig
from ..workloads.suite import BENCHMARK_ORDER
from . import log as obs_log
from .export import write_report
from .metrics import DEFAULT_INTERVAL_INSTRUCTIONS
from .report import format_report
from .runner import observe

__all__ = ["add_sweep_arguments", "build_parser", "main", "run_sweep"]

_SUBCOMMANDS = (
    "run", "history", "compare", "regress", "export-bench", "sweep", "trace",
    "metrics", "characterize", "attribute",
)

_DEFAULT_LEDGER = Path("results") / "ledger"


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scheme",
        required=True,
        help="registry scheme name (bare family names like 'GAg' mean the "
        "12-bit default, e.g. gag-12) or a Table 3 configuration string",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--workload",
        choices=BENCHMARK_ORDER,
        help="suite benchmark to generate and observe",
    )
    source.add_argument(
        "--trace", type=Path, help="pre-recorded trace file to observe instead"
    )
    parser.add_argument(
        "--training", type=Path, default=None,
        help="training trace file for gsg/psg/profile schemes "
        "(suite workloads supply their own when available)",
    )
    parser.add_argument(
        "--no-training", action="store_true",
        help="skip generating the workload's training trace",
    )
    parser.add_argument("--scale", type=int, default=1, help="workload scale factor")
    parser.add_argument(
        "--context-switches", action="store_true",
        help="enable the paper's context-switch model",
    )
    parser.add_argument(
        "--switch-interval", type=int, default=500_000,
        help="context-switch interval in instructions (default: 500000)",
    )
    parser.add_argument(
        "--interval", type=int, default=DEFAULT_INTERVAL_INSTRUCTIONS,
        help="interval-series window in instructions; 0 disables the series "
        f"(default: {DEFAULT_INTERVAL_INSTRUCTIONS})",
    )
    parser.add_argument(
        "--top", type=int, default=10, help="offender-table size (default: 10)"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt",
        help="report rendering (default: text)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="also write the report to this file (same format as --format)",
    )
    parser.add_argument(
        "--events", type=Path, default=None,
        help="stream a JSONL event trace to this file",
    )
    parser.add_argument(
        "--events-sample", type=int, default=1,
        help="keep every Nth branch event in the event trace (default: 1)",
    )
    parser.add_argument(
        "--events-limit", type=int, default=None,
        help="cap the number of branch events written (default: unlimited)",
    )
    parser.add_argument(
        "--profile-phases", action="store_true",
        help="time every predict/update call (adds overhead; results unchanged)",
    )
    parser.add_argument(
        "--cprofile", action="store_true",
        help="capture a cProfile table of the simulate phase",
    )
    parser.add_argument(
        "--characterize", action="store_true",
        help="embed a predictability characterization report "
        "(repro.analysis.char) under the run report's extra payload",
    )
    _add_log_argument(parser)
    _add_ledger_argument(parser, "record the run in the persistent run ledger")


def _add_log_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log", choices=("text", "json"), default=None,
        help="enable run-id-scoped structured logging on stderr",
    )


def _add_ledger_argument(parser: argparse.ArgumentParser, help_text: str) -> None:
    parser.add_argument(
        "--ledger", type=Path, nargs="?", const=_DEFAULT_LEDGER, default=None,
        help=f"{help_text} (bare flag uses {_DEFAULT_LEDGER})",
    )


def _ledger_argument(parser: argparse.ArgumentParser) -> None:
    """Read-side commands: the ledger location, defaulting to on-disk."""
    parser.add_argument(
        "--ledger", type=Path, default=_DEFAULT_LEDGER,
        help=f"run-ledger directory (default: {_DEFAULT_LEDGER})",
    )


def _format_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt",
        help="output rendering (default: text)",
    )


# ----------------------------------------------------------------------
# run
# ----------------------------------------------------------------------


def _cmd_run(args: argparse.Namespace) -> int:
    if args.log is not None:
        obs_log.configure(fmt=args.log)
        obs_log.new_run_id("obs")

    trace = None
    training_trace = None
    if args.trace is not None:
        from ..trace.io import load_trace

        trace = load_trace(args.trace)
    if args.training is not None:
        from ..trace.io import load_trace

        training_trace = load_trace(args.training)

    context = (
        ContextSwitchConfig(interval=args.switch_interval)
        if args.context_switches
        else None
    )

    try:
        report = observe(
            args.scheme,
            workload=args.workload,
            scale=args.scale,
            trace=trace,
            training_trace=training_trace,
            train=False if args.no_training else None,
            context_switches=context,
            interval_instructions=args.interval or None,
            top_k=args.top,
            profile_phases=args.profile_phases,
            with_cprofile=args.cprofile,
            events_path=args.events,
            events_sample_every=args.events_sample,
            events_branch_limit=args.events_limit,
            characterize=args.characterize,
        )
    except (KeyError, ValueError) as exc:
        print(f"repro.obs: {exc}", file=sys.stderr)
        return 2

    if args.fmt == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(format_report(report, top=args.top))
    if args.out is not None:
        write_report(report, args.out, fmt=args.fmt, top=args.top)
    if args.ledger is not None:
        from .ledger import RunLedger, entry_from_report

        entry = RunLedger(args.ledger).append(entry_from_report(report, context=context))
        print(
            f"# ledger: run {entry.run_id} (seq {entry.seq}) -> {args.ledger}",
            file=sys.stderr,
        )
    return 0


# ----------------------------------------------------------------------
# history / compare / regress / export-bench
# ----------------------------------------------------------------------


def _no_runs_recorded(ledger_dir: Path, fmt: str) -> int:
    """The friendly empty/missing-ledger outcome for read-side commands.

    An empty or never-created ledger is a normal state (a fresh clone,
    a CI job before its first recorded run) — not an error: say so
    plainly and exit 0 rather than tracebacking or failing the step.
    """
    if fmt == "json":
        print(json.dumps([]))
    else:
        print(f"no runs recorded (ledger: {ledger_dir})")
    return 0


def _cmd_history(args: argparse.Namespace) -> int:
    from .ledger import RunLedger, format_history

    ledger = RunLedger(args.ledger)
    entries = ledger.history(
        scheme=args.scheme, workload=args.workload, kind=args.kind, limit=args.limit
    )
    if not entries and not len(ledger):
        return _no_runs_recorded(args.ledger, args.fmt)
    if args.fmt == "json":
        print(json.dumps([entry.to_dict() for entry in entries], indent=2))
    else:
        print(format_history(entries))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .ledger import RunLedger, compare_entries

    ledger = RunLedger(args.ledger)
    if not len(ledger):
        return _no_runs_recorded(args.ledger, args.fmt)
    try:
        entry_a = ledger.find(args.run_a)
        entry_b = ledger.find(args.run_b)
    except KeyError as exc:
        print(f"repro.obs: {exc.args[0]}", file=sys.stderr)
        return 2
    delta = compare_entries(entry_a, entry_b)
    if args.fmt == "json":
        print(json.dumps(delta.to_dict(), indent=2))
    else:
        print(delta.format_text())
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    from .ledger import RunLedger, regress

    try:
        report = regress(
            RunLedger(args.ledger),
            tolerance=args.tolerance,
            throughput_drop=args.throughput_drop,
            window=args.window,
        )
    except ValueError as exc:
        print(f"repro.obs: {exc}", file=sys.stderr)
        return 2
    if args.fmt == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format_text())
    return report.exit_code(strict=args.strict)


def _cmd_export_bench(args: argparse.Namespace) -> int:
    from .ledger import RunLedger, export_bench

    ledger = RunLedger(args.ledger)
    if args.out is not None:
        target = export_bench(ledger, args.out, date_stamp=args.date)
    else:
        stamp = args.date
        if stamp is None:
            newest = max((entry.timestamp for entry in ledger.entries()), default=0.0)
            stamp = time.strftime("%Y%m%d", time.gmtime(newest))
        target = export_bench(ledger, Path(f"BENCH_{stamp}.json"), date_stamp=stamp)
    print(f"wrote {target}")
    return 0


# ----------------------------------------------------------------------
# trace / metrics
# ----------------------------------------------------------------------


def _cmd_trace_export(args: argparse.Namespace) -> int:
    from .export import load_spans, write_chrome_trace
    from .resources import counters_from_spans
    from .spans import validate_span_tree

    try:
        spans = load_spans(args.spans)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"repro.obs: cannot read spans from {args.spans}: {exc}", file=sys.stderr)
        return 2
    problems = validate_span_tree(spans)
    for problem in problems:
        print(f"repro.obs: span tree: {problem}", file=sys.stderr)
    if problems and args.strict:
        return 1
    target = write_chrome_trace(
        spans, args.out, counters=counters_from_spans(spans), label=args.label
    )
    print(f"wrote {target} ({len(spans)} spans; load at https://ui.perfetto.dev)")
    return 0


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    from .export import load_spans
    from .spans import span_totals, validate_span_tree

    try:
        spans = load_spans(args.spans)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"repro.obs: cannot read spans from {args.spans}: {exc}", file=sys.stderr)
        return 2
    if not spans:
        print("no spans recorded")
        return 0
    problems = validate_span_tree(spans)
    pids = sorted({span.pid for span in spans})
    print(f"{len(spans)} spans across {len(pids)} process(es)")
    totals = span_totals(spans)
    width = max(len(name) for name in totals)
    for name in sorted(totals, key=lambda n: -totals[n]["seconds"]):
        bucket = totals[name]
        print(f"  {name:{width}s}  {bucket['seconds']:10.4f}s  x{int(bucket['count'])}")
    if problems:
        for problem in problems:
            print(f"span tree: {problem}", file=sys.stderr)
        return 1
    print("span tree: valid")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .ledger import RunLedger
    from .prom import render_metrics

    text = render_metrics(RunLedger(args.ledger), kind=args.kind)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text, encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    return 0


# ----------------------------------------------------------------------
# characterize / attribute
# ----------------------------------------------------------------------


def _resolve_analysis_traces(args: argparse.Namespace):
    """(test trace, training trace) for the analysis subcommands.

    ``--trace`` loads a recorded file; ``--workload`` generates the
    suite benchmark (plus its training trace when it has one, so
    training-dependent schemes like gsg/psg work out of the box).
    An explicit ``--training`` file overrides either.
    """
    from ..trace.io import load_trace

    training = None
    if args.trace is not None:
        test = load_trace(args.trace)
    else:
        from ..workloads.suite import get_workload

        bench = get_workload(args.workload)
        test = bench.generate("testing", scale=args.scale)
        if bench.has_training:
            training = bench.generate("training", scale=args.scale)
    if args.training is not None:
        training = load_trace(args.training)
    return test, training


def _context_from_args(args: argparse.Namespace) -> Optional[ContextSwitchConfig]:
    if not args.context_switches:
        return None
    return ContextSwitchConfig(interval=args.switch_interval)


def _cmd_characterize(args: argparse.Namespace) -> int:
    from ..analysis.predictability import (
        DEFAULT_MAX_K,
        DEFAULT_SCHEMES,
        characterization_counts,
        characterize,
        format_characterization,
    )

    if args.log is not None:
        obs_log.configure(fmt=args.log)
        obs_log.new_run_id("char")

    try:
        test_trace, training_trace = _resolve_analysis_traces(args)
    except (KeyError, ValueError, OSError) as exc:
        print(f"repro.obs: {exc}", file=sys.stderr)
        return 2

    max_k = args.max_k if args.max_k is not None else DEFAULT_MAX_K
    schemes = tuple(args.scheme) if args.scheme else DEFAULT_SCHEMES

    started = time.perf_counter()
    try:
        if args.verify:
            counts = {
                backend: characterization_counts(
                    test_trace,
                    max_k=max_k,
                    block_size=args.block_size,
                    backend=backend,
                )
                for backend in ("python", "vectorized")
            }
            if counts["python"] != counts["vectorized"]:
                print(
                    "repro.obs: backend mismatch — python and vectorized "
                    "characterization counts differ",
                    file=sys.stderr,
                )
                return 1
            print("# verify: python and vectorized counts identical", file=sys.stderr)
        report = characterize(
            test_trace,
            max_k=max_k,
            block_size=args.block_size,
            backend=args.backend,
            schemes=schemes,
            training_trace=training_trace,
            context_switches=_context_from_args(args),
            top=args.top,
        )
    except (KeyError, ValueError) as exc:
        print(f"repro.obs: {exc}", file=sys.stderr)
        return 2
    wall = time.perf_counter() - started

    payload = report.to_dict()
    text = (
        json.dumps(payload, indent=2)
        if args.fmt == "json"
        else format_characterization(report, top=args.top)
    )
    print(text)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text + "\n", encoding="utf-8")
    if args.ledger is not None:
        from .ledger import RunLedger, entry_from_characterization

        entry = RunLedger(args.ledger).append(
            entry_from_characterization(payload, wall_time=wall)
        )
        print(
            f"# ledger: characterization {entry.run_id} (seq {entry.seq}) "
            f"-> {args.ledger}",
            file=sys.stderr,
        )
    return 0


def _cmd_attribute(args: argparse.Namespace) -> int:
    from ..analysis.breakdown import misprediction_breakdown, per_site_report
    from ..analysis.interference import interference_report
    from ..predictors.registry import make_predictor
    from .runner import normalize_scheme

    try:
        test_trace, training_trace = _resolve_analysis_traces(args)
    except (KeyError, ValueError, OSError) as exc:
        print(f"repro.obs: {exc}", file=sys.stderr)
        return 2

    scheme_name = normalize_scheme(args.scheme)
    context = _context_from_args(args)
    try:
        # Each replay needs a fresh predictor — the passes mutate state.
        breakdown = misprediction_breakdown(
            make_predictor(scheme_name, training_trace),
            test_trace,
            context_switches=context,
            block_size=args.block_size,
        )
        sites = per_site_report(
            make_predictor(scheme_name, training_trace),
            test_trace,
            top=args.top,
            block_size=args.block_size,
        )
        interference_text = interference_report(
            test_trace, history_bits=args.history_bits, block_size=args.block_size
        )
    except (KeyError, ValueError) as exc:
        print(f"repro.obs: {exc}", file=sys.stderr)
        return 2

    if args.fmt == "json":
        print(json.dumps(
            {
                "scheme": scheme_name,
                "workload": test_trace.meta.name,
                "dataset": test_trace.meta.dataset,
                "breakdown": {
                    "total_branches": breakdown.total_branches,
                    "total_misses": breakdown.total_misses,
                    "cold_misses": breakdown.cold_misses,
                    "post_flush_misses": breakdown.post_flush_misses,
                    "steady_misses": breakdown.steady_misses,
                    "accuracy": breakdown.accuracy,
                    "shares": breakdown.shares(),
                },
                "sites": [
                    {
                        "pc": site.pc,
                        "executions": site.executions,
                        "mispredictions": site.mispredictions,
                        "taken_rate": site.taken_rate,
                        "accuracy": site.accuracy,
                    }
                    for site in sites
                ],
                "interference": interference_text,
            },
            indent=2,
        ))
        return 0

    shares = breakdown.shares()
    lines = [
        f"# repro.obs attribute — {scheme_name} on {test_trace.meta.name}"
        + (f" ({test_trace.meta.dataset})" if test_trace.meta.dataset else ""),
        f"accuracy        : {breakdown.accuracy * 100:8.4f}%  "
        f"({breakdown.total_branches - breakdown.total_misses}"
        f"/{breakdown.total_branches} conditional branches)",
        "misprediction breakdown:",
        f"  cold       : {breakdown.cold_misses:8d}  ({shares['cold'] * 100:6.2f}%)",
        f"  post-flush : {breakdown.post_flush_misses:8d}  "
        f"({shares['post_flush'] * 100:6.2f}%)",
        f"  steady     : {breakdown.steady_misses:8d}  "
        f"({shares['steady'] * 100:6.2f}%)",
    ]
    if sites:
        lines.append("")
        lines.append(f"top {len(sites)} mispredicting static branches:")
        lines.append("          pc   mispred     execs   taken%   accuracy")
        for site in sites:
            lines.append(
                f"  {site.pc:#010x}  {site.mispredictions:8d}  "
                f"{site.executions:8d}   {site.taken_rate * 100:5.1f}%    "
                f"{site.accuracy * 100:6.2f}%"
            )
    lines.append("")
    lines.append(interference_text)
    print("\n".join(lines))
    return 0


# ----------------------------------------------------------------------
# sweep (shared with `repro-sim sweep`)
# ----------------------------------------------------------------------


def add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the sweep options (shared by repro-obs and repro-sim)."""
    parser.add_argument(
        "schemes", nargs="+",
        help="registry scheme names; bare family names mean the 12-bit default",
    )
    parser.add_argument(
        "--benchmarks", nargs="+", choices=BENCHMARK_ORDER, default=None,
        help="benchmark subset (default: all nine, paper order)",
    )
    parser.add_argument("--scale", type=int, default=1, help="workload scale factor")
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (results identical for any value)",
    )
    parser.add_argument(
        "--follow", action="store_true",
        help="render live per-worker heartbeats as a status line on stderr",
    )
    parser.add_argument(
        "--stale-after", type=float, default=30.0,
        help="seconds of worker silence before it is reported stale (default: 30)",
    )
    parser.add_argument(
        "--context-switches", action="store_true",
        help="enable the paper's context-switch model",
    )
    parser.add_argument(
        "--switch-interval", type=int, default=500_000,
        help="context-switch interval in instructions (default: 500000)",
    )
    parser.add_argument(
        "--backend", choices=SIM_BACKENDS, default="auto",
        help="simulation backend: auto (vectorized kernels where "
        "available, default), python (interpreted loop), vectorized "
        "(fail if no kernel applies); results are bit-identical",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="run every cell through the trace-sharded kernel driver "
        "with this many chunks (repro.sim.shard); results are "
        "bit-identical at every shard count",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=Path("results") / "cache",
        help="result-cache directory (default: results/cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache (always recompute)",
    )
    parser.add_argument(
        "--trace-out", type=Path, default=None,
        help="span-trace the sweep and write a Perfetto-loadable Chrome "
        "trace-event JSON file here (results are unaffected)",
    )
    parser.add_argument(
        "--spans", type=Path, default=None,
        help="span-trace the sweep and write the raw spans as JSONL here "
        "(one span per line; see 'repro-obs trace')",
    )
    _add_ledger_argument(parser, "record every cell in the persistent run ledger")
    _add_log_argument(parser)


def _render_matrix(matrix) -> List[str]:
    """Plain accuracy table: schemes x (benchmarks + the three GMeans)."""
    width = max([len(scheme) for scheme in matrix.schemes] + [6])
    columns = list(matrix.benchmarks) + ["Int GMean", "FP GMean", "Tot GMean"]
    lines = [" " * width + "  " + "  ".join(f"{name:>9s}" for name in columns)]
    for row in matrix.as_rows():
        cells = []
        for name in columns:
            value = row[name]
            if isinstance(value, float) and value > 0:
                cells.append(f"{value * 100:8.3f}%")
            else:
                cells.append(f"{'—':>9s}")
        lines.append(f"{row['scheme']:{width}s}  " + "  ".join(cells))
    return lines


def run_sweep(args: argparse.Namespace) -> int:
    """Execute a (schemes x benchmarks) sweep with optional --follow.

    Shared implementation behind ``repro-obs sweep`` and
    ``repro-sim sweep`` (both attach :func:`add_sweep_arguments`).
    """
    from ..sim.parallel import spec
    from ..sim.runner import run_matrix
    from ..trace.cache import ResultCache
    from ..workloads.suite import SuiteConfig, build_cases
    from .live import FollowPrinter, SweepMonitor
    from .runner import normalize_scheme

    if args.log is not None:
        obs_log.configure(fmt=args.log)
        obs_log.new_run_id("sweep")

    schemes = [normalize_scheme(name) for name in args.schemes]
    builders = {name: spec(name) for name in schemes}
    try:
        cases = build_cases(SuiteConfig(scale=args.scale, benchmarks=args.benchmarks))
    except ValueError as exc:
        print(f"repro.obs: {exc}", file=sys.stderr)
        return 2
    context = (
        ContextSwitchConfig(interval=args.switch_interval)
        if args.context_switches
        else None
    )
    result_cache = None if args.no_cache else ResultCache(args.cache_dir)

    tracer = None
    if args.trace_out is not None or args.spans is not None:
        from .spans import SpanCollector

        tracer = SpanCollector()

    progress = tick = None
    printer: Optional[FollowPrinter] = None
    if args.follow:
        monitor = SweepMonitor(
            total_cells=len(builders) * len(cases), stale_after=args.stale_after
        )
        printer = FollowPrinter(sys.stderr)

        def progress(beat) -> None:
            monitor.observe(beat)
            printer.update(monitor.status())

        def tick() -> None:
            printer.update(monitor.status())

    try:
        matrix = run_matrix(
            builders,
            cases,
            context_switches=context,
            n_workers=args.workers,
            result_cache=result_cache,
            progress=progress,
            tick=tick,
            backend=args.backend,
            tracer=tracer,
            shards=args.shards,
        )
    except (KeyError, ValueError) as exc:
        if printer is not None:
            printer.close()
        print(f"repro.obs: {exc}", file=sys.stderr)
        return 2
    if printer is not None:
        printer.close()

    for line in _render_matrix(matrix):
        print(line)
    if matrix.telemetry is not None:
        print(f"# {matrix.telemetry.summary_line()}", file=sys.stderr)
    if tracer is not None:
        from .export import write_chrome_trace, write_spans
        from .resources import counters_from_spans

        label = f"repro sweep: {' '.join(schemes)}"
        if args.spans is not None:
            target = write_spans(tracer.spans, args.spans)
            print(f"# spans: {len(tracer)} -> {target}", file=sys.stderr)
        if args.trace_out is not None:
            target = write_chrome_trace(
                tracer.spans,
                args.trace_out,
                counters=counters_from_spans(tracer.spans),
                label=label,
            )
            print(f"# trace: {len(tracer)} spans -> {target}", file=sys.stderr)
    if args.ledger is not None:
        from .ledger import RunLedger, entries_from_matrix

        recorded = RunLedger(args.ledger).extend(
            entries_from_matrix(matrix, context=context, spans=tracer)
        )
        print(f"# ledger: {len(recorded)} cells -> {args.ledger}", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# Parser assembly and dispatch
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Observe simulation runs, record them in the run ledger, "
        "and monitor sweeps live.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run", help="observe one predictor on one workload (the default command)"
    )
    _add_run_arguments(run)
    run.set_defaults(handler=_cmd_run)

    history = subparsers.add_parser("history", help="list recorded runs")
    _ledger_argument(history)
    history.add_argument("--scheme", default=None, help="filter by scheme label")
    history.add_argument("--workload", default=None, help="filter by workload name")
    history.add_argument(
        "--kind", choices=("obs", "matrix", "bench", "char"), default=None,
        help="filter by entry kind",
    )
    history.add_argument(
        "--limit", type=int, default=None, help="show only the newest N runs"
    )
    _format_argument(history)
    history.set_defaults(handler=_cmd_history)

    compare = subparsers.add_parser("compare", help="diff two recorded runs")
    compare.add_argument(
        "run_a", help="run selector: a run-id prefix, 'latest', or 'latest~N'"
    )
    compare.add_argument("run_b", help="second run selector")
    _ledger_argument(compare)
    _format_argument(compare)
    compare.set_defaults(handler=_cmd_compare)

    regress_cmd = subparsers.add_parser(
        "regress",
        help="flag accuracy drift and throughput drops across recorded runs",
    )
    _ledger_argument(regress_cmd)
    regress_cmd.add_argument(
        "--tolerance", type=float, default=0.0,
        help="max tolerated |accuracy delta| vs the previous run "
        "(default: 0.0 — the simulator is deterministic)",
    )
    regress_cmd.add_argument(
        "--throughput-drop", type=float, default=0.5,
        help="warn when branches/sec falls this fraction below the rolling "
        "baseline (default: 0.5)",
    )
    regress_cmd.add_argument(
        "--window", type=int, default=5,
        help="rolling-baseline width in runs (default: 5)",
    )
    regress_cmd.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on warnings too, not just errors",
    )
    _format_argument(regress_cmd)
    regress_cmd.set_defaults(handler=_cmd_regress)

    export = subparsers.add_parser(
        "export-bench", help="write the BENCH_<YYYYMMDD>.json perf snapshot"
    )
    _ledger_argument(export)
    export.add_argument(
        "--out", type=Path, default=None,
        help="output path (default: BENCH_<date-of-newest-entry>.json)",
    )
    export.add_argument(
        "--date", default=None,
        help="override the YYYYMMDD stamp (for reproducible snapshots)",
    )
    export.set_defaults(handler=_cmd_export_bench)

    sweep = subparsers.add_parser(
        "sweep", help="(schemes x suite) sweep with --follow live monitoring"
    )
    add_sweep_arguments(sweep)
    sweep.set_defaults(handler=run_sweep)

    trace = subparsers.add_parser(
        "trace", help="work with recorded span traces (see sweep --spans)"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    trace_export = trace_sub.add_parser(
        "export", help="convert a spans JSONL file to a Perfetto-loadable trace"
    )
    trace_export.add_argument("spans", type=Path, help="spans JSONL file")
    trace_export.add_argument(
        "--out", type=Path, default=Path("trace.json"),
        help="Chrome trace-event JSON output path (default: trace.json)",
    )
    trace_export.add_argument(
        "--label", default="repro sweep", help="trace label shown in otherData"
    )
    trace_export.add_argument(
        "--strict", action="store_true",
        help="fail (exit 1) when the span tree has integrity problems",
    )
    trace_export.set_defaults(handler=_cmd_trace_export)

    trace_summary = trace_sub.add_parser(
        "summary", help="per-name span totals and tree integrity check"
    )
    trace_summary.add_argument("spans", type=Path, help="spans JSONL file")
    trace_summary.set_defaults(handler=_cmd_trace_summary)

    metrics = subparsers.add_parser(
        "metrics", help="render the run ledger as Prometheus text exposition"
    )
    _ledger_argument(metrics)
    metrics.add_argument(
        "--kind", choices=("obs", "matrix", "bench", "char"), default=None,
        help="restrict to one entry kind",
    )
    metrics.add_argument(
        "--out", type=Path, default=None,
        help="write the exposition to this file instead of stdout",
    )
    metrics.set_defaults(handler=_cmd_metrics)

    characterize_cmd = subparsers.add_parser(
        "characterize",
        help="predictability characterization & mispredict-attribution report",
    )
    char_source = characterize_cmd.add_mutually_exclusive_group(required=True)
    char_source.add_argument(
        "--workload", choices=BENCHMARK_ORDER,
        help="suite benchmark to generate and characterize",
    )
    char_source.add_argument(
        "--trace", type=Path, help="pre-recorded trace file to characterize instead"
    )
    characterize_cmd.add_argument(
        "--training", type=Path, default=None,
        help="training trace file for training-dependent attribution schemes "
        "(suite workloads supply their own when available)",
    )
    characterize_cmd.add_argument(
        "--scale", type=int, default=1, help="workload scale factor"
    )
    characterize_cmd.add_argument(
        "--scheme", action="append", default=None,
        help="attribution scheme to replay (repeatable; default: the "
        "registered paper configurations)",
    )
    characterize_cmd.add_argument(
        "--max-k", type=int, default=None,
        help="history depth K of the entropy/ideal-accuracy curves "
        "(default: 8)",
    )
    characterize_cmd.add_argument(
        "--block-size", type=int, default=None,
        help="streaming block size in records (default: the source's "
        "natural blocks; results are identical for any value)",
    )
    characterize_cmd.add_argument(
        "--backend", choices=("auto", "python", "vectorized"), default="auto",
        help="counting backend (results are bit-identical; default: auto)",
    )
    characterize_cmd.add_argument(
        "--verify", action="store_true",
        help="run both backends and fail (exit 1) unless their count "
        "tables are identical",
    )
    characterize_cmd.add_argument(
        "--top", type=int, default=20,
        help="per-site table size in the report (default: 20)",
    )
    characterize_cmd.add_argument(
        "--context-switches", action="store_true",
        help="enable the paper's context-switch model in attribution replays",
    )
    characterize_cmd.add_argument(
        "--switch-interval", type=int, default=500_000,
        help="context-switch interval in instructions (default: 500000)",
    )
    _format_argument(characterize_cmd)
    characterize_cmd.add_argument(
        "--out", type=Path, default=None,
        help="also write the report to this file (same format as --format)",
    )
    _add_log_argument(characterize_cmd)
    _add_ledger_argument(
        characterize_cmd, "record the characterization in the run ledger"
    )
    characterize_cmd.set_defaults(handler=_cmd_characterize)

    attribute_cmd = subparsers.add_parser(
        "attribute",
        help="misprediction breakdown, per-site report, and interference "
        "summary for one scheme",
    )
    attribute_cmd.add_argument(
        "--scheme", required=True,
        help="registry scheme name to attribute (bare family names mean "
        "the 12-bit default)",
    )
    attr_source = attribute_cmd.add_mutually_exclusive_group(required=True)
    attr_source.add_argument(
        "--workload", choices=BENCHMARK_ORDER,
        help="suite benchmark to generate and attribute",
    )
    attr_source.add_argument(
        "--trace", type=Path, help="pre-recorded trace file to attribute instead"
    )
    attribute_cmd.add_argument(
        "--training", type=Path, default=None,
        help="training trace file for gsg/psg/profile schemes",
    )
    attribute_cmd.add_argument(
        "--scale", type=int, default=1, help="workload scale factor"
    )
    attribute_cmd.add_argument(
        "--top", type=int, default=10,
        help="per-site table size (default: 10)",
    )
    attribute_cmd.add_argument(
        "--history-bits", type=int, default=12,
        help="history depth of the interference summary (default: 12)",
    )
    attribute_cmd.add_argument(
        "--block-size", type=int, default=None,
        help="streaming block size in records (results identical for any value)",
    )
    attribute_cmd.add_argument(
        "--context-switches", action="store_true",
        help="enable the paper's context-switch model",
    )
    attribute_cmd.add_argument(
        "--switch-interval", type=int, default=500_000,
        help="context-switch interval in instructions (default: 500000)",
    )
    _format_argument(attribute_cmd)
    attribute_cmd.set_defaults(handler=_cmd_attribute)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in _SUBCOMMANDS:
        args = build_parser().parse_args(argv)
        return args.handler(args)
    # Legacy flat form: `python -m repro.obs --scheme ... --workload ...`
    # behaves exactly like the `run` subcommand.
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Run one predictor on one workload with full observability. "
        f"(Subcommands also available: {', '.join(_SUBCOMMANDS)}.)",
    )
    _add_run_arguments(parser)
    args = parser.parse_args(argv)
    return _cmd_run(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
