"""``python -m repro.obs`` — observe one simulation run end to end.

Examples::

    python -m repro.obs --scheme GAg --workload eqntott
    python -m repro.obs --scheme pag-12 --workload gcc --format json
    python -m repro.obs --scheme gshare-12 --workload li \\
        --context-switches --interval 50000 --top 20
    python -m repro.obs --scheme pap-12 --trace trace.btb \\
        --events events.jsonl --profile-phases
    python -m repro.obs --scheme GAg --workload eqntott \\
        --format text --out results/obs-eqntott.txt

Text output is the perf-style report of
:func:`repro.obs.report.format_report`; JSON output is the
schema-stable :meth:`RunReport.to_dict` payload (``schema:
"repro.obs/1"``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..sim.engine import ContextSwitchConfig
from ..workloads.suite import BENCHMARK_ORDER
from .export import write_report
from .metrics import DEFAULT_INTERVAL_INSTRUCTIONS
from .report import format_report
from .runner import observe

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Run one predictor on one workload with full observability.",
    )
    parser.add_argument(
        "--scheme",
        required=True,
        help="registry scheme name (bare family names like 'GAg' mean the "
        "12-bit default, e.g. gag-12) or a Table 3 configuration string",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--workload",
        choices=BENCHMARK_ORDER,
        help="suite benchmark to generate and observe",
    )
    source.add_argument(
        "--trace", type=Path, help="pre-recorded trace file to observe instead"
    )
    parser.add_argument(
        "--training", type=Path, default=None,
        help="training trace file for gsg/psg/profile schemes "
        "(suite workloads supply their own when available)",
    )
    parser.add_argument(
        "--no-training", action="store_true",
        help="skip generating the workload's training trace",
    )
    parser.add_argument("--scale", type=int, default=1, help="workload scale factor")
    parser.add_argument(
        "--context-switches", action="store_true",
        help="enable the paper's context-switch model",
    )
    parser.add_argument(
        "--switch-interval", type=int, default=500_000,
        help="context-switch interval in instructions (default: 500000)",
    )
    parser.add_argument(
        "--interval", type=int, default=DEFAULT_INTERVAL_INSTRUCTIONS,
        help="interval-series window in instructions; 0 disables the series "
        f"(default: {DEFAULT_INTERVAL_INSTRUCTIONS})",
    )
    parser.add_argument(
        "--top", type=int, default=10, help="offender-table size (default: 10)"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt",
        help="report rendering (default: text)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="also write the report to this file (same format as --format)",
    )
    parser.add_argument(
        "--events", type=Path, default=None,
        help="stream a JSONL event trace to this file",
    )
    parser.add_argument(
        "--events-sample", type=int, default=1,
        help="keep every Nth branch event in the event trace (default: 1)",
    )
    parser.add_argument(
        "--events-limit", type=int, default=None,
        help="cap the number of branch events written (default: unlimited)",
    )
    parser.add_argument(
        "--profile-phases", action="store_true",
        help="time every predict/update call (adds overhead; results unchanged)",
    )
    parser.add_argument(
        "--cprofile", action="store_true",
        help="capture a cProfile table of the simulate phase",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    trace = None
    training_trace = None
    if args.trace is not None:
        from ..trace.io import load_trace

        trace = load_trace(args.trace)
    if args.training is not None:
        from ..trace.io import load_trace

        training_trace = load_trace(args.training)

    context = (
        ContextSwitchConfig(interval=args.switch_interval)
        if args.context_switches
        else None
    )

    try:
        report = observe(
            args.scheme,
            workload=args.workload,
            scale=args.scale,
            trace=trace,
            training_trace=training_trace,
            train=False if args.no_training else None,
            context_switches=context,
            interval_instructions=args.interval or None,
            top_k=args.top,
            profile_phases=args.profile_phases,
            with_cprofile=args.cprofile,
            events_path=args.events,
            events_sample_every=args.events_sample,
            events_branch_limit=args.events_limit,
        )
    except (KeyError, ValueError) as exc:
        print(f"repro.obs: {exc}", file=sys.stderr)
        return 2

    if args.fmt == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(format_report(report, top=args.top))
    if args.out is not None:
        write_report(report, args.out, fmt=args.fmt, top=args.top)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
