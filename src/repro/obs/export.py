"""Export layer: JSONL event traces and report files.

:class:`EventTraceProbe` streams the engine's probe callbacks to a
JSON-Lines file — one JSON object per line, each tagged with an
``"event"`` discriminator — so external tools (jq, pandas, a notebook)
can replay a run without re-simulating:

``{"event": "run_start", "scheme": ..., "trace": ..., "records": ...}``
    once, first line.
``{"event": "branch", "pc": ..., "predicted": ..., "taken": ...,
"instret": ...}``
    per conditional branch, subject to ``sample_every`` /
    ``branch_limit`` thinning (a full branch stream for a scale-1
    workload is hundreds of thousands of lines).
``{"event": "interval", "index": ..., "instret": ...}``
    at each completed interval window (when a window is configured).
``{"event": "context_switch", "instret": ...}``
    per simulated flush.
``{"event": "run_end", ...summary fields...}``
    once, last line, with the final accuracy numbers and how many
    branch events were emitted vs observed.

:func:`write_report` writes a :class:`~repro.obs.report.RunReport` to
disk in either rendered-text or JSON form. :func:`write_spans` /
:func:`load_spans` persist a span batch as JSONL (one span dict per
line, exact round-trip), and :func:`write_chrome_trace` writes the
Perfetto-loadable Chrome trace-event file for a span batch.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, TextIO, Union

from .probes import Probe
from .report import RunReport, format_report
from .spans import Span, to_chrome_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..predictors.base import BranchPredictor
    from ..sim.results import SimulationResult
    from ..trace.events import Trace

__all__ = [
    "EventTraceProbe",
    "load_spans",
    "write_chrome_trace",
    "write_report",
    "write_spans",
]


class EventTraceProbe(Probe):
    """Streams probe callbacks to a JSONL event-trace file.

    Args:
        path: output file; parent directories are created. The file is
            opened at run start and closed (flushed) at run end.
        sample_every: keep every Nth branch event (1 = keep all).
        branch_limit: stop emitting branch events after this many lines
            (``None`` = unlimited). Interval / context-switch / run
            events are never thinned.
        interval_instructions: optional window size — set it to also get
            ``interval`` events when no other probe requests a window.
    """

    def __init__(
        self,
        path: Union[str, Path],
        sample_every: int = 1,
        branch_limit: Optional[int] = None,
        interval_instructions: Optional[int] = None,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if branch_limit is not None and branch_limit < 0:
            raise ValueError("branch_limit must be >= 0")
        self.path = Path(path)
        self.sample_every = sample_every
        self.branch_limit = branch_limit
        self.interval_instructions = interval_instructions
        self.branches_seen = 0
        self.branches_written = 0
        self._stream: Optional[TextIO] = None

    def _emit(self, payload: Dict[str, Any]) -> None:
        stream = self._stream
        if stream is not None:
            stream.write(json.dumps(payload, separators=(",", ":")) + "\n")

    def on_run_start(self, predictor: "BranchPredictor", trace: "Trace") -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._stream = self.path.open("w", encoding="utf-8")
        self.branches_seen = 0
        self.branches_written = 0
        self._emit(
            {
                "event": "run_start",
                "scheme": getattr(predictor, "name", type(predictor).__name__),
                "trace": trace.meta.name,
                "records": len(trace),
            }
        )

    def on_branch(self, pc: int, predicted: bool, taken: bool, instret: int) -> None:
        self.branches_seen += 1
        if self.branch_limit is not None and self.branches_written >= self.branch_limit:
            return
        if (self.branches_seen - 1) % self.sample_every:
            return
        self.branches_written += 1
        self._emit(
            {
                "event": "branch",
                "pc": pc,
                "predicted": predicted,
                "taken": taken,
                "instret": instret,
            }
        )

    def on_interval(self, index: int, instret: int) -> None:
        self._emit({"event": "interval", "index": index, "instret": instret})

    def on_context_switch(self, instret: int) -> None:
        self._emit({"event": "context_switch", "instret": instret})

    def on_run_end(self, result: "SimulationResult") -> None:
        self._emit(
            {
                "event": "run_end",
                "accuracy": result.accuracy,
                "mispredictions": result.mispredictions,
                "conditional_branches": result.conditional_branches,
                "total_instructions": result.total_instructions,
                "context_switches": result.context_switches,
                "branches_seen": self.branches_seen,
                "branches_written": self.branches_written,
            }
        )
        stream = self._stream
        if stream is not None:
            stream.close()
            self._stream = None


def write_report(
    report: RunReport, path: Union[str, Path], fmt: str = "json", top: int = 10
) -> Path:
    """Write ``report`` to ``path`` as ``"json"`` or rendered ``"text"``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    if fmt == "json":
        target.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
    elif fmt == "text":
        target.write_text(format_report(report, top=top) + "\n", encoding="utf-8")
    else:
        raise ValueError(f"unknown report format: {fmt!r} (expected 'json' or 'text')")
    return target


def _write_atomic(target: Path, text: str) -> None:
    """Write-then-rename so a crash never leaves a torn file behind."""
    target.parent.mkdir(parents=True, exist_ok=True)
    scratch = target.with_name(target.name + ".tmp")
    scratch.write_text(text, encoding="utf-8")
    os.replace(scratch, target)


def write_spans(spans: Sequence[Span], path: Union[str, Path]) -> Path:
    """Persist a span batch as JSONL — one span dict per line.

    The on-disk form is :meth:`Span.to_dict` per line, so
    :func:`load_spans` round-trips exactly and external tools (jq,
    pandas) can consume it without the Chrome trace wrapper.
    """
    target = Path(path)
    lines = [json.dumps(span.to_dict(), separators=(",", ":")) for span in spans]
    _write_atomic(target, "\n".join(lines) + ("\n" if lines else ""))
    return target


def load_spans(path: Union[str, Path]) -> List[Span]:
    """Load a :func:`write_spans` JSONL file back into spans."""
    spans: List[Span] = []
    with Path(path).open("r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


def write_chrome_trace(
    spans: Sequence[Span],
    path: Union[str, Path],
    counters: Sequence[Dict[str, Any]] = (),
    label: str = "repro sweep",
) -> Path:
    """Write the Perfetto-loadable Chrome trace-event file for a batch.

    A thin atomic-write wrapper around
    :func:`repro.obs.spans.to_chrome_trace`; load the result at
    https://ui.perfetto.dev or ``chrome://tracing``.
    """
    target = Path(path)
    payload = to_chrome_trace(spans, counters=counters, label=label)
    _write_atomic(target, json.dumps(payload, indent=1, sort_keys=False) + "\n")
    return target
