"""The run ledger: persistent, append-only memory across runs.

PR 3 gave a *single* run deep visibility; this module gives the repo a
memory. Every engine / experiment / benchmark run can be recorded as a
:class:`LedgerEntry` — scheme and trace identity, exact result counts,
git revision, wall time and per-phase breakdown, branches/second — in
an append-only JSONL store under ``results/ledger/``:

* entries are **content-addressed by config hash**: runs of the same
  (kind, scheme, workload, dataset, context-switch) configuration land
  in the same ``<config-hash>.jsonl`` shard, in append order, so a
  configuration's history is one file read;
* each entry's ``run_id`` is a content hash of its full payload, so
  ids are stable, reproducible and collision-evident;
* the **regression sentinel** (:func:`regress`) walks every
  configuration's history and flags accuracy deltas beyond a tolerance
  (errors — simulation is deterministic, *any* drift is a bug),
  throughput drops beyond a rolling baseline, and per-phase time
  blow-ups beyond a rolling per-phase baseline (both warnings — wall
  clocks are machine-dependent);
* :func:`compare_entries` diffs any two recorded runs;
  :func:`export_bench` renders the benchmark trajectory as a
  ``BENCH_<YYYYMMDD>.json`` snapshot.

The CLI surface is ``repro-obs history`` / ``compare`` / ``regress`` /
``export-bench`` (see :mod:`repro.obs.cli`). Wall-clock reads in this
module are telemetry only — timestamps describe *when* a run happened
and never feed back into any result; the determinism lint's pragma
allowances below are scoped to exactly those reads.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..sim.results import ResultMatrix, RunTelemetry
from .report import RunReport

__all__ = [
    "LEDGER_SCHEMA",
    "LedgerEntry",
    "RegressionFinding",
    "RegressionReport",
    "RunDelta",
    "RunLedger",
    "compare_entries",
    "compute_config_hash",
    "entries_from_matrix",
    "entry_from_benchmark",
    "entry_from_characterization",
    "entry_from_report",
    "export_bench",
    "format_history",
    "git_revision",
    "regress",
]

#: Schema identifier embedded in every serialised ledger entry.
LEDGER_SCHEMA = "repro.obs.ledger/1"

#: Schema of the exported ``BENCH_<YYYYMMDD>.json`` snapshots.
_BENCH_SCHEMA = "repro.bench/1"

_git_revision_cache: Optional[str] = None


def git_revision() -> str:
    """The current git revision (short hash), or ``"unknown"``.

    Cached per process; telemetry identity only — results never depend
    on it.
    """
    global _git_revision_cache
    if _git_revision_cache is None:
        try:
            output = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=5,
                cwd=Path(__file__).resolve().parent,
                check=True,
            ).stdout.strip()
            _git_revision_cache = output or "unknown"
        except Exception:
            _git_revision_cache = "unknown"
    return _git_revision_cache


def _context_token(context: Optional[Any]) -> str:
    """Stable identity token for a context-switch configuration.

    Accepts the :class:`~repro.sim.engine.ContextSwitchConfig` duck
    type (``interval`` / ``switch_on_traps``) or ``None``; mirrors the
    key recipe of :func:`repro.sim.parallel.result_cache_key`.
    """
    if context is None:
        return "cs:none"
    return f"cs:{context.interval}:{int(bool(context.switch_on_traps))}"


def compute_config_hash(
    kind: str,
    scheme: str,
    workload: str,
    dataset: str = "",
    context: Optional[Any] = None,
) -> str:
    """Content hash of a run configuration (the ledger's address).

    Two runs share a config hash exactly when they are re-runs of the
    same measurement: same kind (``"obs"`` / ``"matrix"`` /
    ``"bench"`` / ``"char"``), scheme, workload, dataset and
    context-switch model.
    """
    payload = "\n".join(
        [LEDGER_SCHEMA, kind, scheme, workload, dataset, _context_token(context)]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class LedgerEntry:
    """One recorded run: identity, exact counts, and timing telemetry.

    Attributes:
        kind: ``"obs"`` (single observed run), ``"matrix"`` (one sweep
            cell), ``"bench"`` (a pytest-benchmark measurement) or
            ``"char"`` (a predictability characterization report).
        scheme: scheme label (``"bench"`` for benchmark entries).
        workload: benchmark / trace name (for ``bench`` entries, the
            benchmark test id).
        dataset: input dataset label (``""`` when not applicable).
        config_hash: :func:`compute_config_hash` of the identity above.
        run_id: content hash of the entry payload, assigned on append.
        seq: position within the configuration's history (0-based),
            assigned on append.
        timestamp: wall-clock epoch seconds of the append (telemetry).
        git_revision: short git hash of the recording checkout.
        conditional_branches / correct_predictions /
        total_instructions / context_switches: exact result counts
            (all zero for ``bench`` entries).
        wall_time: seconds the measured phase took.
        branches_per_sec: throughput of the simulate phase (0.0 when
            unknown).
        phases: per-phase seconds breakdown (``trace_load`` / ``build``
            / ``simulate`` / ``cache_lookup`` vocabulary). The
            ``simulate`` span keeps that name for every engine backend,
            so ``branches_per_sec`` is comparable across the
            interpreted loop and the vectorized kernels; which backend
            ran is recorded under ``extra["backend"]``.
        extra: free-form JSON-compatible payload (benchmark
            ``extra_info``, worker counts, engine backend, ...).
    """

    kind: str
    scheme: str
    workload: str
    dataset: str = ""
    config_hash: str = ""
    run_id: str = ""
    seq: int = -1
    timestamp: float = 0.0
    git_revision: str = "unknown"
    conditional_branches: int = 0
    correct_predictions: int = 0
    total_instructions: int = 0
    context_switches: int = 0
    wall_time: float = 0.0
    branches_per_sec: float = 0.0
    phases: Dict[str, float] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def accuracy(self) -> Optional[float]:
        """Exact accuracy recomputed from the stored integer counts.

        ``None`` when the entry records no branches (bench entries),
        so consumers never mistake "no data" for 0% accuracy.
        """
        if self.conditional_branches <= 0:
            return None
        return self.correct_predictions / self.conditional_branches

    @property
    def mispredictions(self) -> int:
        return self.conditional_branches - self.correct_predictions

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible dict; every key always present, schema first."""
        return {
            "schema": LEDGER_SCHEMA,
            "kind": self.kind,
            "scheme": self.scheme,
            "workload": self.workload,
            "dataset": self.dataset,
            "config_hash": self.config_hash,
            "run_id": self.run_id,
            "seq": self.seq,
            "timestamp": self.timestamp,
            "git_revision": self.git_revision,
            "conditional_branches": self.conditional_branches,
            "correct_predictions": self.correct_predictions,
            "total_instructions": self.total_instructions,
            "context_switches": self.context_switches,
            "wall_time": self.wall_time,
            "branches_per_sec": self.branches_per_sec,
            "phases": {name: self.phases[name] for name in sorted(self.phases)},
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LedgerEntry":
        """Reconstruct an entry serialised by :meth:`to_dict` exactly."""
        schema = str(payload.get("schema", LEDGER_SCHEMA))
        if not schema.startswith("repro.obs.ledger/"):
            raise ValueError(f"not a ledger entry (schema={schema!r})")
        return cls(
            kind=payload["kind"],
            scheme=payload["scheme"],
            workload=payload["workload"],
            dataset=payload.get("dataset", ""),
            config_hash=payload.get("config_hash", ""),
            run_id=payload.get("run_id", ""),
            seq=int(payload.get("seq", -1)),
            timestamp=float(payload.get("timestamp", 0.0)),
            git_revision=payload.get("git_revision", "unknown"),
            conditional_branches=int(payload.get("conditional_branches", 0)),
            correct_predictions=int(payload.get("correct_predictions", 0)),
            total_instructions=int(payload.get("total_instructions", 0)),
            context_switches=int(payload.get("context_switches", 0)),
            wall_time=float(payload.get("wall_time", 0.0)),
            branches_per_sec=float(payload.get("branches_per_sec", 0.0)),
            phases={k: float(v) for k, v in payload.get("phases", {}).items()},
            extra=dict(payload.get("extra", {})),
        )


class RunLedger:
    """Append-only store of :class:`LedgerEntry` records.

    One JSONL shard per configuration (file name = config-hash prefix);
    appends only ever add lines, so the ledger is safe to commit, diff
    and merge. The default location is ``results/ledger/``.
    """

    #: Shard filename length (hex chars of the config hash).
    SHARD_CHARS = 16

    def __init__(self, directory: Union[str, Path] = Path("results") / "ledger") -> None:
        self.directory = Path(directory)

    # -- write ---------------------------------------------------------

    def append(self, entry: LedgerEntry) -> LedgerEntry:
        """Record one run; returns the finalised (addressed) entry.

        Missing bookkeeping fields are assigned here: ``config_hash``
        (from the entry's identity), ``seq`` (its position in the
        configuration's history), ``timestamp`` (now), ``git_revision``
        and ``run_id`` (content hash of the final payload).
        """
        config_hash = entry.config_hash or compute_config_hash(
            entry.kind, entry.scheme, entry.workload, entry.dataset
        )
        prior = self.runs(config_hash)
        timestamp = entry.timestamp
        if timestamp == 0.0:
            timestamp = time.time()  # check: allow(det/wall-clock) — telemetry timestamp
        finalised = LedgerEntry(
            kind=entry.kind,
            scheme=entry.scheme,
            workload=entry.workload,
            dataset=entry.dataset,
            config_hash=config_hash,
            run_id=entry.run_id,
            seq=entry.seq if entry.seq >= 0 else len(prior),
            timestamp=timestamp,
            git_revision=(
                entry.git_revision if entry.git_revision != "unknown" else git_revision()
            ),
            conditional_branches=entry.conditional_branches,
            correct_predictions=entry.correct_predictions,
            total_instructions=entry.total_instructions,
            context_switches=entry.context_switches,
            wall_time=entry.wall_time,
            branches_per_sec=entry.branches_per_sec,
            phases=dict(entry.phases),
            extra=dict(entry.extra),
        )
        if not finalised.run_id:
            payload = finalised.to_dict()
            payload["run_id"] = ""
            digest = hashlib.sha256(
                json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
            ).hexdigest()
            finalised = LedgerEntry.from_dict({**payload, "run_id": digest[:16]})
        self.directory.mkdir(parents=True, exist_ok=True)
        shard = self._shard_path(config_hash)
        with shard.open("a", encoding="utf-8") as stream:
            stream.write(json.dumps(finalised.to_dict(), separators=(",", ":")) + "\n")
            # The ledger is the regression sentinel's source of truth:
            # a record must be durable once append returns, not sitting
            # in a page cache a crash discards (found by
            # res/append-without-fsync).
            stream.flush()
            os.fsync(stream.fileno())
        return finalised

    def extend(self, entries: Sequence[LedgerEntry]) -> List[LedgerEntry]:
        """Append many entries; returns the finalised records."""
        return [self.append(entry) for entry in entries]

    # -- read ----------------------------------------------------------

    def _shard_path(self, config_hash: str) -> Path:
        return self.directory / f"{config_hash[: self.SHARD_CHARS]}.jsonl"

    def runs(self, config_hash: str) -> List[LedgerEntry]:
        """One configuration's history, in append order."""
        shard = self._shard_path(config_hash)
        if not shard.exists():
            return []
        entries = []
        for line in shard.read_text(encoding="utf-8").splitlines():
            if line.strip():
                entries.append(LedgerEntry.from_dict(json.loads(line)))
        return entries

    def entries(self) -> List[LedgerEntry]:
        """Every recorded run, ordered by (timestamp, config, seq)."""
        collected: List[LedgerEntry] = []
        if not self.directory.exists():
            return collected
        for shard in sorted(self.directory.glob("*.jsonl")):
            for line in shard.read_text(encoding="utf-8").splitlines():
                if line.strip():
                    collected.append(LedgerEntry.from_dict(json.loads(line)))
        collected.sort(key=lambda entry: (entry.timestamp, entry.config_hash, entry.seq))
        return collected

    def by_config(self) -> Dict[str, List[LedgerEntry]]:
        """config hash -> history in append order (regression groups)."""
        groups: Dict[str, List[LedgerEntry]] = {}
        for entry in self.entries():
            groups.setdefault(entry.config_hash, []).append(entry)
        for runs in groups.values():
            runs.sort(key=lambda entry: entry.seq)
        return groups

    def history(
        self,
        scheme: Optional[str] = None,
        workload: Optional[str] = None,
        kind: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[LedgerEntry]:
        """Filtered, time-ordered view (newest last)."""
        selected = [
            entry
            for entry in self.entries()
            if (scheme is None or entry.scheme == scheme)
            and (workload is None or entry.workload == workload)
            and (kind is None or entry.kind == kind)
        ]
        if limit is not None and limit >= 0:
            selected = selected[-limit:]
        return selected

    def find(self, selector: str) -> LedgerEntry:
        """Resolve a run selector to one entry.

        Selectors: a ``run_id`` prefix (at least 4 chars), ``latest``,
        or ``latest~N`` (the Nth-newest run, git style).

        Raises:
            KeyError: no match, or an ambiguous prefix.
        """
        entries = self.entries()
        if not entries:
            raise KeyError("the ledger is empty")
        if selector == "latest" or selector.startswith("latest~"):
            back = 0
            if "~" in selector:
                try:
                    back = int(selector.split("~", 1)[1])
                except ValueError:
                    raise KeyError(f"bad selector {selector!r}") from None
            if back < 0 or back >= len(entries):
                raise KeyError(
                    f"{selector!r} is out of range (ledger holds {len(entries)} runs)"
                )
            return entries[-1 - back]
        if len(selector) < 4:
            raise KeyError(f"run-id prefix {selector!r} is too short (min 4 chars)")
        matches = [entry for entry in entries if entry.run_id.startswith(selector)]
        if not matches:
            raise KeyError(f"no run matches {selector!r}")
        if len({entry.run_id for entry in matches}) > 1:
            raise KeyError(f"run-id prefix {selector!r} is ambiguous")
        return matches[-1]

    def __len__(self) -> int:
        return len(self.entries())


# ----------------------------------------------------------------------
# Entry builders
# ----------------------------------------------------------------------


def _rate(branches: int, seconds: float) -> float:
    return branches / seconds if seconds > 0 and branches > 0 else 0.0


def entry_from_report(
    report: RunReport, context: Optional[Any] = None, kind: str = "obs"
) -> LedgerEntry:
    """Build a ledger entry from an observed run's :class:`RunReport`.

    The report's free-form ``extra`` attachments (notably the embedded
    characterization payload) are copied into the entry verbatim, so
    they round-trip through the ledger and reach the Prometheus
    exposition.
    """
    result = report.result
    if result is None:
        raise ValueError("the run report carries no simulation result")
    phases = {name: span.get("seconds", 0.0) for name, span in report.timing.items()}
    simulate_s = phases.get("simulate", 0.0)
    extra: Dict[str, Any] = dict(report.extra)
    if report.streaks:
        extra["max_streak"] = report.max_streak
    return LedgerEntry(
        kind=kind,
        scheme=report.scheme,
        workload=report.workload,
        dataset=report.dataset,
        config_hash=compute_config_hash(
            kind, report.scheme, report.workload, report.dataset, context
        ),
        conditional_branches=result.conditional_branches,
        correct_predictions=result.correct_predictions,
        total_instructions=result.total_instructions,
        context_switches=result.context_switches,
        wall_time=sum(phases.values()),
        branches_per_sec=_rate(result.conditional_branches, simulate_s),
        phases=phases,
        extra=extra,
    )


def entries_from_matrix(
    matrix: ResultMatrix, context: Optional[Any] = None, spans: Optional[Any] = None
) -> List[LedgerEntry]:
    """One ``"matrix"`` entry per evaluated (scheme, benchmark) cell.

    Wall time and phase breakdowns come from the matrix's attached
    :class:`~repro.sim.results.RunTelemetry` when present; cells served
    from the result cache record their lookup cost, not a simulation.
    When the sweep was traced, pass the collected spans (a
    :class:`repro.obs.spans.SpanCollector` or a span sequence) to embed
    each cell's span summary as ``extra["spans"]``; cells with a peak
    worker RSS reading record it as ``extra["rss_peak_bytes"]``.
    """
    cell_summaries: Dict[Tuple[str, str], Any] = {}
    if spans is not None:
        from .spans import cell_span_summaries

        span_list = getattr(spans, "spans", spans)
        cell_summaries = cell_span_summaries(span_list)
    telemetry: Optional[RunTelemetry] = matrix.telemetry
    cell_info: Dict[Tuple[str, str], Any] = {}
    if telemetry is not None:
        for cell in telemetry.cells:
            cell_info[(cell.scheme, cell.benchmark)] = cell
    entries: List[LedgerEntry] = []
    for scheme in matrix.schemes:
        for benchmark in matrix.benchmarks:
            result = matrix.cells.get(scheme, {}).get(benchmark)
            if result is None:
                continue
            cell = cell_info.get((scheme, benchmark))
            phases = dict(cell.phases) if cell is not None else {}
            wall = cell.wall_time if cell is not None else 0.0
            simulate_s = phases.get("simulate", 0.0)
            extra: Dict[str, Any] = {}
            if cell is not None:
                extra["source"] = cell.source
                if getattr(cell, "backend", ""):
                    extra["backend"] = cell.backend
                if getattr(cell, "rss_peak", 0):
                    extra["rss_peak_bytes"] = cell.rss_peak
                # Shard count only for cells that ran the sharded
                # driver (cache hits / unavailable cells never did).
                if getattr(telemetry, "shards", 0) and cell.source == "simulated":
                    extra["shards"] = telemetry.shards
            if telemetry is not None:
                extra["workers"] = telemetry.n_workers
            summary = cell_summaries.get((scheme, benchmark))
            if summary is not None:
                extra["spans"] = summary
            entries.append(
                LedgerEntry(
                    kind="matrix",
                    scheme=scheme,
                    workload=benchmark,
                    dataset=result.dataset,
                    config_hash=compute_config_hash(
                        "matrix", scheme, benchmark, result.dataset, context
                    ),
                    conditional_branches=result.conditional_branches,
                    correct_predictions=result.correct_predictions,
                    total_instructions=result.total_instructions,
                    context_switches=result.context_switches,
                    wall_time=wall,
                    branches_per_sec=_rate(result.conditional_branches, simulate_s),
                    phases=phases,
                    extra=extra,
                )
            )
    return entries


def entry_from_benchmark(
    name: str, seconds: float, extra_info: Optional[Mapping[str, Any]] = None
) -> LedgerEntry:
    """Build a ``"bench"`` entry from one pytest-benchmark measurement.

    Args:
        name: the benchmark test id (e.g. ``test_bench_fig9``).
        seconds: the measurement (pytest-benchmark's ``min`` — the
            least-noise statistic for regression tracking).
        extra_info: the benchmark's ``extra_info`` dict; only
            JSON-scalar values are kept.
    """
    extra = {
        key: value
        for key, value in (extra_info or {}).items()
        if isinstance(value, (str, int, float, bool))
    }
    return LedgerEntry(
        kind="bench",
        scheme="bench",
        workload=name,
        config_hash=compute_config_hash("bench", "bench", name),
        wall_time=seconds,
        extra=extra,
    )


def entry_from_characterization(
    payload: Mapping[str, Any], wall_time: float = 0.0
) -> LedgerEntry:
    """Build a ``"char"`` entry from a serialised characterization.

    Args:
        payload: a :class:`repro.analysis.predictability.CharacterizationReport`
            ``to_dict`` payload (schema ``repro.analysis.char/…``).
        wall_time: seconds the characterization took, when known.

    The full payload is stored under ``extra["characterization"]``, so
    ``CharacterizationReport.from_dict(entry.extra["characterization"])``
    reconstructs the report exactly; the scheme label is ``"char"``
    (mirroring how bench entries use ``"bench"``).
    """
    schema = str(payload.get("schema", ""))
    if not schema.startswith("repro.analysis.char/"):
        raise ValueError(f"not a characterization payload (schema={schema!r})")
    workload = str(payload.get("workload", ""))
    dataset = str(payload.get("dataset", ""))
    return LedgerEntry(
        kind="char",
        scheme="char",
        workload=workload,
        dataset=dataset,
        config_hash=compute_config_hash("char", "char", workload, dataset),
        # Branch counts stay zero (accuracy reads "no data", like bench
        # entries); the exact counts live inside the payload itself.
        wall_time=wall_time,
        extra={"characterization": dict(payload)},
    )


# ----------------------------------------------------------------------
# Comparison and the regression sentinel
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunDelta:
    """The difference between two recorded runs (``b`` relative to ``a``)."""

    run_a: str
    run_b: str
    label_a: str
    label_b: str
    same_config: bool
    accuracy_a: Optional[float]
    accuracy_b: Optional[float]
    accuracy_delta: Optional[float]
    mispredictions_delta: int
    wall_time_ratio: Optional[float]
    throughput_ratio: Optional[float]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_a": self.run_a,
            "run_b": self.run_b,
            "label_a": self.label_a,
            "label_b": self.label_b,
            "same_config": self.same_config,
            "accuracy_a": self.accuracy_a,
            "accuracy_b": self.accuracy_b,
            "accuracy_delta": self.accuracy_delta,
            "mispredictions_delta": self.mispredictions_delta,
            "wall_time_ratio": self.wall_time_ratio,
            "throughput_ratio": self.throughput_ratio,
        }

    def format_text(self) -> str:
        lines = [
            f"# compare {self.run_a} ({self.label_a})",
            f"#      vs {self.run_b} ({self.label_b})",
            f"same configuration : {'yes' if self.same_config else 'NO'}",
        ]
        if self.accuracy_delta is not None:
            lines.append(
                f"accuracy           : {self.accuracy_a * 100:.4f}% -> "
                f"{self.accuracy_b * 100:.4f}%  (delta {self.accuracy_delta * 100:+.4f} pp)"
            )
            lines.append(f"mispredictions     : {self.mispredictions_delta:+d}")
        else:
            lines.append("accuracy           : n/a (a run records no branches)")
        if self.throughput_ratio is not None:
            lines.append(f"throughput         : x{self.throughput_ratio:.3f}")
        if self.wall_time_ratio is not None:
            lines.append(f"wall time          : x{self.wall_time_ratio:.3f}")
        return "\n".join(lines)


def compare_entries(a: LedgerEntry, b: LedgerEntry) -> RunDelta:
    """Diff two ledger entries (``b`` relative to ``a``)."""
    accuracy_a, accuracy_b = a.accuracy, b.accuracy
    delta = (
        accuracy_b - accuracy_a
        if accuracy_a is not None and accuracy_b is not None
        else None
    )
    return RunDelta(
        run_a=a.run_id,
        run_b=b.run_id,
        label_a=f"{a.scheme} on {a.workload}",
        label_b=f"{b.scheme} on {b.workload}",
        same_config=a.config_hash == b.config_hash,
        accuracy_a=accuracy_a,
        accuracy_b=accuracy_b,
        accuracy_delta=delta,
        mispredictions_delta=b.mispredictions - a.mispredictions,
        wall_time_ratio=(
            b.wall_time / a.wall_time if a.wall_time > 0 and b.wall_time > 0 else None
        ),
        throughput_ratio=(
            b.branches_per_sec / a.branches_per_sec
            if a.branches_per_sec > 0 and b.branches_per_sec > 0
            else None
        ),
    )


@dataclass(frozen=True)
class RegressionFinding:
    """One flagged configuration."""

    severity: str  # "error" | "warning"
    rule: str  # "accuracy-drift" | "throughput-drop" | "phase-drift"
    config_hash: str
    scheme: str
    workload: str
    latest_run: str
    baseline_run: str
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "severity": self.severity,
            "rule": self.rule,
            "config_hash": self.config_hash,
            "scheme": self.scheme,
            "workload": self.workload,
            "latest_run": self.latest_run,
            "baseline_run": self.baseline_run,
            "message": self.message,
        }


@dataclass
class RegressionReport:
    """The sentinel's verdict over the whole ledger."""

    findings: List[RegressionFinding] = field(default_factory=list)
    checked_configs: int = 0
    skipped_configs: int = 0

    @property
    def errors(self) -> List[RegressionFinding]:
        return [finding for finding in self.findings if finding.severity == "error"]

    @property
    def warnings(self) -> List[RegressionFinding]:
        return [finding for finding in self.findings if finding.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.findings

    def exit_code(self, strict: bool = False) -> int:
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "checked_configs": self.checked_configs,
            "skipped_configs": self.skipped_configs,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def format_text(self) -> str:
        lines = [
            f"# repro.obs regress — {self.checked_configs} configurations checked, "
            f"{self.skipped_configs} without a baseline"
        ]
        if not self.findings:
            lines.append("clean: no accuracy drift, no throughput or phase drops")
        for finding in self.findings:
            lines.append(
                f"{finding.severity.upper():7s} {finding.rule:16s} "
                f"{finding.scheme} on {finding.workload}: {finding.message}"
            )
        return "\n".join(lines)


def _validate_fraction(name: str, value: float, upper: float) -> None:
    if not isinstance(value, (int, float)) or math.isnan(value) or math.isinf(value):
        raise ValueError(f"{name} must be a finite number, got {value!r}")
    if value < 0 or value >= upper:
        raise ValueError(f"{name} must be in [0, {upper}), got {value!r}")


#: Phases shorter than this (seconds, rolling baseline) are exempt from
#: the phase-drift rule: sub-10ms phases are dominated by scheduler and
#: allocator noise, and flagging them would make the sentinel cry wolf.
_PHASE_DRIFT_FLOOR_S = 0.01


def regress(
    ledger: RunLedger,
    tolerance: float = 0.0,
    throughput_drop: float = 0.5,
    window: int = 5,
    phase_drift: float = 1.0,
) -> RegressionReport:
    """Run the regression sentinel over every configuration's history.

    Args:
        ledger: the run ledger to audit.
        tolerance: maximum tolerated ``|accuracy delta|`` between the
            latest run and its immediate predecessor. The simulator is
            deterministic, so the default is exact (0.0): *any* drift —
            up or down — is flagged as an error.
        throughput_drop: fraction below the rolling baseline
            (median branches/sec of up to ``window`` prior runs) at
            which the latest run's throughput is flagged as a warning.
        window: rolling-baseline width in runs.
        phase_drift: fraction above the rolling per-phase baseline
            (median seconds of that phase over up to ``window`` prior
            runs) at which a phase's time is flagged as a warning — the
            default ``1.0`` flags a phase that doubled. Phases whose
            baseline is under 10 ms are skipped (timing noise), as is
            the whole rule when ``phase_drift`` is 0.

    Edge cases by design: an empty ledger or a configuration with a
    single run produce no findings (nothing to compare — counted in
    ``skipped_configs``); runs without branch counts (bench entries)
    skip the accuracy rule; runs without throughput skip the
    throughput rule; runs without phase breakdowns skip the phase
    rule. ``tolerance`` / ``throughput_drop`` / ``phase_drift`` must
    be finite — NaN would silently disable every comparison.
    """
    _validate_fraction("tolerance", tolerance, 1.0)
    _validate_fraction("throughput_drop", throughput_drop, 1.0)
    _validate_fraction("phase_drift", phase_drift, math.inf)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")

    report = RegressionReport()
    for config_hash, runs in sorted(ledger.by_config().items()):
        if len(runs) < 2:
            report.skipped_configs += 1
            continue
        report.checked_configs += 1
        latest, previous = runs[-1], runs[-2]

        latest_accuracy, previous_accuracy = latest.accuracy, previous.accuracy
        if latest_accuracy is not None and previous_accuracy is not None:
            delta = latest_accuracy - previous_accuracy
            if abs(delta) > tolerance:
                report.findings.append(
                    RegressionFinding(
                        severity="error",
                        rule="accuracy-drift",
                        config_hash=config_hash,
                        scheme=latest.scheme,
                        workload=latest.workload,
                        latest_run=latest.run_id,
                        baseline_run=previous.run_id,
                        message=(
                            f"accuracy moved {delta * 100:+.4f} pp "
                            f"({previous_accuracy * 100:.4f}% -> {latest_accuracy * 100:.4f}%) "
                            f"beyond tolerance {tolerance * 100:.4f} pp; the simulator is "
                            "deterministic, so this is a behaviour change"
                        ),
                    )
                )

        prior_rates = [
            run.branches_per_sec for run in runs[-(window + 1) : -1] if run.branches_per_sec > 0
        ]
        if prior_rates and latest.branches_per_sec > 0:
            baseline = median(prior_rates)
            floor = (1.0 - throughput_drop) * baseline
            if latest.branches_per_sec < floor:
                report.findings.append(
                    RegressionFinding(
                        severity="warning",
                        rule="throughput-drop",
                        config_hash=config_hash,
                        scheme=latest.scheme,
                        workload=latest.workload,
                        latest_run=latest.run_id,
                        baseline_run=runs[-2].run_id,
                        message=(
                            f"{latest.branches_per_sec:,.0f} branches/s is "
                            f"{100 * (1 - latest.branches_per_sec / baseline):.1f}% below the "
                            f"rolling baseline of {baseline:,.0f} branches/s "
                            f"(median of {len(prior_rates)} prior runs)"
                        ),
                    )
                )

        if phase_drift > 0 and latest.phases:
            prior_runs = runs[-(window + 1) : -1]
            for phase in sorted(latest.phases):
                latest_s = latest.phases[phase]
                prior = [
                    run.phases[phase]
                    for run in prior_runs
                    if phase in run.phases and run.phases[phase] > 0
                ]
                if not prior:
                    continue
                baseline = median(prior)
                if baseline < _PHASE_DRIFT_FLOOR_S:
                    continue
                if latest_s > (1.0 + phase_drift) * baseline:
                    report.findings.append(
                        RegressionFinding(
                            severity="warning",
                            rule="phase-drift",
                            config_hash=config_hash,
                            scheme=latest.scheme,
                            workload=latest.workload,
                            latest_run=latest.run_id,
                            baseline_run=runs[-2].run_id,
                            message=(
                                f"phase '{phase}' took {latest_s:.3f}s, "
                                f"{latest_s / baseline:.1f}x the rolling baseline of "
                                f"{baseline:.3f}s (median of {len(prior)} prior runs)"
                            ),
                        )
                    )
    return report


# ----------------------------------------------------------------------
# Rendering and export
# ----------------------------------------------------------------------


def format_history(entries: Sequence[LedgerEntry]) -> str:
    """Text table of ledger entries (the ``history`` subcommand body)."""
    if not entries:
        return "(ledger is empty)"
    lines = [
        "run id            seq  kind    scheme            workload     "
        "accuracy     branches/s          git"
    ]
    for entry in entries:
        accuracy = entry.accuracy
        accuracy_text = f"{accuracy * 100:8.4f}%" if accuracy is not None else "       —"
        rate_text = (
            f"{entry.branches_per_sec:12,.0f}" if entry.branches_per_sec > 0 else "           —"
        )
        lines.append(
            f"{entry.run_id:16s}  {entry.seq:3d}  {entry.kind:6s}  {entry.scheme:16s}  "
            f"{entry.workload:11s}  {accuracy_text}  {rate_text}  {entry.git_revision:>11s}"
        )
    return "\n".join(lines)


def export_bench(
    ledger: RunLedger,
    out: Union[str, Path],
    date_stamp: Optional[str] = None,
) -> Path:
    """Write the benchmark trajectory snapshot (``BENCH_<date>.json``).

    Collects the latest ``"bench"`` entry of every benchmark
    configuration plus a throughput summary of the latest engine runs,
    so the snapshot captures both harness timings and simulator
    throughput at one revision.
    """
    entries = ledger.entries()
    latest_bench: Dict[str, LedgerEntry] = {}
    for entry in entries:
        if entry.kind == "bench":
            latest_bench[entry.config_hash] = entry
    latest_runs: Dict[str, LedgerEntry] = {}
    for entry in entries:
        if entry.kind in ("obs", "matrix") and entry.branches_per_sec > 0:
            latest_runs[entry.config_hash] = entry
    if date_stamp is None:
        newest = max((entry.timestamp for entry in entries), default=0.0)
        date_stamp = time.strftime("%Y%m%d", time.gmtime(newest))
    payload = {
        "schema": _BENCH_SCHEMA,
        "date": date_stamp,
        "git_revision": git_revision(),
        "benchmarks": [
            {
                "name": entry.workload,
                "seconds": entry.wall_time,
                "run_id": entry.run_id,
                "git_revision": entry.git_revision,
                "extra": dict(entry.extra),
            }
            for entry in sorted(latest_bench.values(), key=lambda e: e.workload)
        ],
        "simulator_throughput": [
            {
                "scheme": entry.scheme,
                "workload": entry.workload,
                "branches_per_sec": entry.branches_per_sec,
                "accuracy": entry.accuracy,
                "run_id": entry.run_id,
            }
            for entry in sorted(
                latest_runs.values(), key=lambda e: (e.scheme, e.workload)
            )
        ],
    }
    target = Path(out)
    if target.parent != Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    # Atomic publish: the exported BENCH file is committed and diffed,
    # so a half-written export must never be observable (found by
    # res/non-atomic-write).
    tmp = target.with_name(f"{target.name}.tmp-{os.getpid()}")
    with tmp.open("w", encoding="utf-8") as stream:
        stream.write(json.dumps(payload, indent=2) + "\n")
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(tmp, target)
    return target
