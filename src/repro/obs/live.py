"""Live monitoring of parallel sweeps: heartbeats, aggregation, render.

A Figure-9-style sweep is dozens of (scheme, benchmark) cells spread
over worker processes; until this module, the only signal that it was
alive was the process table. The pieces here close that gap:

* :class:`Heartbeat` — the tiny, picklable record a worker (or the
  parent, for cache hits) emits when it starts and finishes a cell.
  Workers put them on a ``multiprocessing`` queue supplied by
  :func:`repro.sim.parallel.execute_matrix` via its ``progress`` hook.
* :class:`SweepMonitor` — the parent-side aggregator: feeds on
  heartbeats, tracks per-worker state, keeps the done-count
  **monotone** (a crashed worker can stall, never un-finish work) and
  derives throughput and an ETA.
* :class:`SweepStatus` / :func:`format_status` — an immutable snapshot
  and its one-line rendering (the ``--follow`` status line).
* :class:`FollowPrinter` — carriage-return single-line terminal
  rendering with proper teardown.

Everything here is stdlib-only and imports nothing from ``repro.sim``,
so the parallel runner can feed it without an import cycle. Clocks are
``time.perf_counter`` (monotonic, lint-clean): the monitor measures
*durations*, never datetimes, and none of it feeds back into results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, TextIO, Tuple

__all__ = [
    "FollowPrinter",
    "Heartbeat",
    "SweepMonitor",
    "SweepStatus",
    "WorkerState",
    "format_status",
]

#: Heartbeat kinds, in protocol order.
HEARTBEAT_KINDS = ("start", "done", "cached")


@dataclass(frozen=True)
class Heartbeat:
    """One worker's progress pulse — small and picklable by design.

    Attributes:
        worker: producer id (worker pid; 0 for parent-side events).
        kind: ``"start"`` (picked up a cell), ``"done"`` (finished
            one, with its measurements) or ``"cached"`` (the parent
            served the cell from the result cache).
        scheme: the cell's scheme label.
        benchmark: the cell's benchmark name.
        branches: conditional branches simulated (``done`` only).
        wall: seconds the cell took (``done`` / ``cached``).
        rss_bytes: the worker's peak RSS as of this pulse (``done``
            only; 0 when the producer could not read it).
    """

    worker: int
    kind: str
    scheme: str
    benchmark: str
    branches: int = 0
    wall: float = 0.0
    rss_bytes: int = 0

    def __post_init__(self) -> None:
        if self.kind not in HEARTBEAT_KINDS:
            raise ValueError(
                f"unknown heartbeat kind {self.kind!r}; expected one of {HEARTBEAT_KINDS}"
            )

    @property
    def cell(self) -> str:
        return f"{self.scheme}/{self.benchmark}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "worker": self.worker,
            "kind": self.kind,
            "scheme": self.scheme,
            "benchmark": self.benchmark,
            "branches": self.branches,
            "wall": self.wall,
            "rss_bytes": self.rss_bytes,
        }


@dataclass
class WorkerState:
    """What the monitor knows about one worker process."""

    worker: int
    current: Optional[str] = None  # "scheme/benchmark" while a cell is in flight
    done: int = 0
    branches: int = 0
    busy_seconds: float = 0.0
    last_seen: float = 0.0  # parent receive time (monotonic clock)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "worker": self.worker,
            "current": self.current,
            "done": self.done,
            "branches": self.branches,
            "busy_seconds": self.busy_seconds,
            "last_seen": self.last_seen,
        }


@dataclass(frozen=True)
class SweepStatus:
    """An immutable snapshot of sweep progress at one instant.

    ``done`` counts cells finished by any path (worker or cache) and is
    monotone across snapshots of the same monitor. ``eta_seconds`` is
    ``None`` until at least one cell has finished. ``stale`` lists
    workers with a cell in flight that have not been heard from for the
    monitor's ``stale_after`` window — the visible symptom of a crashed
    or wedged worker (its claimed cell is *not* counted done).
    """

    done: int
    total: int
    elapsed: float
    active: Tuple[str, ...]
    stale: Tuple[int, ...]
    branches_per_sec: float
    eta_seconds: Optional[float]
    cached: int = 0
    peak_rss_bytes: int = 0

    @property
    def finished(self) -> bool:
        return self.done >= self.total

    @property
    def fraction(self) -> float:
        return self.done / self.total if self.total > 0 else 1.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "done": self.done,
            "total": self.total,
            "elapsed": self.elapsed,
            "active": list(self.active),
            "stale": list(self.stale),
            "branches_per_sec": self.branches_per_sec,
            "eta_seconds": self.eta_seconds,
            "cached": self.cached,
            "peak_rss_bytes": self.peak_rss_bytes,
        }


class SweepMonitor:
    """Aggregates :class:`Heartbeat` pulses into :class:`SweepStatus`.

    The monitor is single-threaded by contract: the parent process
    drains the heartbeat queue and calls :meth:`observe` between
    ``concurrent.futures.wait`` timeouts. Clock injection (any
    zero-arg float callable) keeps tests deterministic; the default is
    the monotonic ``time.perf_counter``.

    Args:
        total_cells: number of cells the sweep will produce.
        stale_after: seconds of silence (while a cell is in flight)
            after which a worker is reported stale.
        clock: monotonic time source.
    """

    def __init__(
        self,
        total_cells: int,
        stale_after: float = 30.0,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if total_cells < 0:
            raise ValueError("total_cells must be >= 0")
        if stale_after <= 0:
            raise ValueError("stale_after must be positive")
        self.total_cells = total_cells
        self.stale_after = stale_after
        self._clock = clock
        self._t0 = clock()
        self._done = 0
        self._cached = 0
        self._branches = 0
        self._peak_rss = 0
        self._workers: Dict[int, WorkerState] = {}
        self._history: List[Heartbeat] = []

    # -- feeding -------------------------------------------------------

    def observe(self, beat: Heartbeat) -> None:
        """Fold one heartbeat into the aggregate state."""
        now = self._clock()
        self._history.append(beat)
        state = self._workers.get(beat.worker)
        if state is None:
            state = self._workers[beat.worker] = WorkerState(worker=beat.worker)
        state.last_seen = now
        if beat.kind == "start":
            state.current = beat.cell
        elif beat.kind == "done":
            state.current = None
            state.done += 1
            state.branches += beat.branches
            state.busy_seconds += beat.wall
            self._done += 1
            self._branches += beat.branches
            self._peak_rss = max(self._peak_rss, beat.rss_bytes)
        elif beat.kind == "cached":
            # Parent-side event: the cell never reached a worker.
            state.current = None
            state.done += 1
            self._done += 1
            self._cached += 1

    def observe_cached(self, scheme: str, benchmark: str) -> None:
        """Record a cell served from the result cache (parent side)."""
        self.observe(Heartbeat(worker=0, kind="cached", scheme=scheme, benchmark=benchmark))

    # -- reading -------------------------------------------------------

    @property
    def done(self) -> int:
        return self._done

    @property
    def history(self) -> List[Heartbeat]:
        """Every heartbeat observed, in arrival order (for tests/audit)."""
        return list(self._history)

    def status(self) -> SweepStatus:
        """Snapshot progress now (monotone ``done`` across snapshots)."""
        now = self._clock()
        elapsed = now - self._t0
        active: List[str] = []
        stale: List[int] = []
        for worker in sorted(self._workers):
            state = self._workers[worker]
            if state.current is None:
                continue
            if now - state.last_seen > self.stale_after:
                stale.append(worker)
            else:
                active.append(state.current)
        rate = self._branches / elapsed if elapsed > 0 and self._branches > 0 else 0.0
        eta: Optional[float] = None
        if 0 < self._done <= self.total_cells and elapsed > 0:
            remaining = self.total_cells - self._done
            eta = remaining * (elapsed / self._done)
        return SweepStatus(
            done=min(self._done, self.total_cells) if self.total_cells else self._done,
            total=self.total_cells,
            elapsed=elapsed,
            active=tuple(active),
            stale=tuple(stale),
            branches_per_sec=rate,
            eta_seconds=eta,
            cached=self._cached,
            peak_rss_bytes=self._peak_rss,
        )


def _format_rate(branches_per_sec: float) -> str:
    if branches_per_sec >= 1e6:
        return f"{branches_per_sec / 1e6:.1f}M br/s"
    if branches_per_sec >= 1e3:
        return f"{branches_per_sec / 1e3:.0f}k br/s"
    return f"{branches_per_sec:.0f} br/s"


def _format_eta(eta_seconds: Optional[float]) -> str:
    if eta_seconds is None:
        return "ETA --"
    if eta_seconds >= 90:
        return f"ETA {eta_seconds / 60:.1f}m"
    return f"ETA {eta_seconds:.0f}s"


def format_status(status: SweepStatus, width: int = 20) -> str:
    """Render one status line (the ``--follow`` display).

    Example::

        [#########...........] 24/54 cells | 4 running | 1.8M br/s | ETA 38s
    """
    filled = int(round(status.fraction * width))
    bar = "#" * filled + "." * (width - filled)
    parts = [
        f"[{bar}] {status.done}/{status.total} cells",
        f"{len(status.active)} running",
        _format_rate(status.branches_per_sec),
        _format_eta(status.eta_seconds),
    ]
    if status.cached:
        parts.insert(1, f"{status.cached} cached")
    if status.peak_rss_bytes:
        parts.append(f"rss {status.peak_rss_bytes // (1024 * 1024)} MiB")
    if status.stale:
        stale_ids = ",".join(str(worker) for worker in status.stale)
        parts.append(f"STALE workers: {stale_ids}")
    if status.active:
        shown = ", ".join(status.active[:3])
        if len(status.active) > 3:
            shown += f", +{len(status.active) - 3}"
        parts.append(shown)
    return " | ".join(parts)


class FollowPrinter:
    """Single-line terminal renderer for ``--follow`` mode.

    Rewrites one carriage-return-terminated status line per update and
    finishes it with a newline on :meth:`close`, so the final state
    stays visible above subsequent output. Writes are best-effort: a
    closed stream never fails the sweep.
    """

    def __init__(self, stream: TextIO) -> None:
        self.stream = stream
        self._last_width = 0

    def update(self, status: SweepStatus) -> None:
        line = format_status(status)
        pad = max(0, self._last_width - len(line))
        self._last_width = len(line)
        try:
            self.stream.write("\r" + line + " " * pad)
            self.stream.flush()
        except ValueError:
            pass

    def close(self) -> None:
        if self._last_width:
            try:
                self.stream.write("\n")
                self.stream.flush()
            except ValueError:
                pass
        self._last_width = 0
