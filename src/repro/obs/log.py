"""Structured, run-scoped logging for the simulation stack.

A thin contextual-logging layer threaded through trace generation, the
engine, the parallel runner and the experiment drivers. Three design
rules keep it compatible with the repo's determinism and zero-overhead
contracts:

* **Off by default.** Until :func:`configure` is called, every
  :meth:`StructuredLogger.event` call is a single attribute check and a
  return — no formatting, no I/O, no allocation. Nothing in the repo
  ever turns logging on implicitly; CLIs expose it behind ``--log``.
* **Telemetry only.** Records carry wall-clock timestamps and run ids,
  but nothing on the simulation path ever *reads* a record — logging is
  documentation about a run, never an input to a result. The
  ``repro.check`` determinism lint still scans this module; the one
  wall-clock read is pragma-scoped to the record constructor.
* **Run-id scoped.** Every record carries the current run id (set by
  the orchestration layer via :func:`set_run_id` / :func:`new_run_id`),
  so interleaved output from nested phases — suite generation, sweep
  cells, regression checks — can be grouped after the fact.

Usage::

    from repro.obs import log

    log.configure(fmt="json")          # or fmt="text", stream=...
    logger = log.get_logger("sim.engine")
    logger.event("run_start", scheme="pag-12", records=120_000)
    log.disable()

Records render as single lines — ``text`` for humans, ``json`` (one
object per line) for machines — on the configured stream (default:
``sys.stderr``).
"""

from __future__ import annotations

import itertools
import json
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, TextIO

__all__ = [
    "LogConfig",
    "LogRecord",
    "StructuredLogger",
    "configure",
    "current_run_id",
    "disable",
    "get_logger",
    "is_enabled",
    "new_run_id",
    "set_run_id",
]

_FORMATS = ("text", "json")


@dataclass(frozen=True)
class LogRecord:
    """One structured event: who said what, in which run, and when.

    Attributes:
        ts: wall-clock epoch seconds (telemetry only — never an input
            to any simulation result).
        run_id: the run the record belongs to (``""`` outside a run).
        component: dotted producer name, e.g. ``"sim.parallel"``.
        event: short event name, e.g. ``"cell_done"``.
        fields: free-form JSON-compatible payload.
    """

    ts: float
    run_id: str
    component: str
    event: str
    fields: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible rendering (used by the ``json`` handler)."""
        payload: Dict[str, Any] = {
            "ts": self.ts,
            "run_id": self.run_id,
            "component": self.component,
            "event": self.event,
        }
        payload.update(self.fields)
        return payload

    def format_text(self) -> str:
        """One-line human rendering (used by the ``text`` handler)."""
        clock = time.strftime("%H:%M:%S", time.gmtime(self.ts))
        parts = [f"{clock} [{self.run_id or '-'}] {self.component}: {self.event}"]
        for key in self.fields:
            parts.append(f"{key}={self.fields[key]}")
        return " ".join(parts)


@dataclass
class LogConfig:
    """Active logging configuration (``None`` globally = disabled)."""

    stream: TextIO
    fmt: str = "text"

    def __post_init__(self) -> None:
        if self.fmt not in _FORMATS:
            raise ValueError(f"unknown log format {self.fmt!r}; expected one of {_FORMATS}")


_lock = threading.Lock()
_config: Optional[LogConfig] = None
_run_id: str = ""
_loggers: Dict[str, "StructuredLogger"] = {}
_run_counter = itertools.count(1)


def configure(
    stream: Optional[TextIO] = None,
    fmt: str = "text",
    run_id: Optional[str] = None,
) -> None:
    """Enable structured logging process-wide.

    Args:
        stream: where records go (default: ``sys.stderr``). Anything
            with a ``write(str)`` method works, so tests can capture
            into a ``StringIO``.
        fmt: ``"text"`` (one human-readable line per record) or
            ``"json"`` (one JSON object per line).
        run_id: initial run id; ``None`` keeps the current one.
    """
    global _config
    with _lock:
        _config = LogConfig(stream=stream if stream is not None else sys.stderr, fmt=fmt)
    if run_id is not None:
        set_run_id(run_id)


def disable() -> None:
    """Turn logging off again (the default state)."""
    global _config
    with _lock:
        _config = None


def is_enabled() -> bool:
    """True when :func:`configure` is active."""
    return _config is not None


def set_run_id(run_id: str) -> str:
    """Set the run id stamped on subsequent records; returns it."""
    global _run_id
    with _lock:
        _run_id = run_id
    return run_id


def current_run_id() -> str:
    """The run id in effect (``""`` when none was set)."""
    return _run_id


def new_run_id(prefix: str = "run") -> str:
    """Mint a fresh run id and make it current.

    The id combines a wall-clock stamp with a process-local counter, so
    ids are unique within a process and sort roughly by start time
    across processes. Telemetry identity only — results never depend
    on it.
    """
    stamp = int(time.time())  # check: allow(det/wall-clock) — telemetry identity only
    return set_run_id(f"{prefix}-{stamp:x}-{next(_run_counter):03d}")


class StructuredLogger:
    """A component-bound emitter; obtain via :func:`get_logger`.

    ``event()`` is safe to call unconditionally from hot orchestration
    code: when logging is disabled it returns after one global read.
    """

    def __init__(self, component: str) -> None:
        self.component = component

    @property
    def enabled(self) -> bool:
        return _config is not None

    def event(self, event: str, **fields: Any) -> None:
        """Emit one record (no-op unless :func:`configure` is active)."""
        config = _config
        if config is None:
            return
        record = LogRecord(
            ts=time.time(),  # check: allow(det/wall-clock) — telemetry timestamp only
            run_id=_run_id,
            component=self.component,
            event=event,
            fields=fields,
        )
        if config.fmt == "json":
            line = json.dumps(record.to_dict(), separators=(",", ":"), default=str)
        else:
            line = record.format_text()
        try:
            config.stream.write(line + "\n")
        except ValueError:
            # The stream was closed under us (e.g. pytest teardown of a
            # captured stderr); losing telemetry must never fail a run.
            pass


def get_logger(component: str) -> StructuredLogger:
    """The (cached) logger for a dotted component name."""
    logger = _loggers.get(component)
    if logger is None:
        with _lock:
            logger = _loggers.setdefault(component, StructuredLogger(component))
    return logger
