"""Metric probes: the signals the paper's analyses hinge on.

Built entirely on the :mod:`repro.obs.probes` callbacks — none of these
touch predictor internals on the hot path, so attaching them never
changes a simulation result. Four families:

* :class:`IntervalSeriesProbe` — accuracy / mispredict-rate time series
  over fixed dynamic-instruction windows; shows warm-up transients,
  phase changes and context-switch damage that the final aggregate
  accuracy averages away.
* :class:`StreakHistogramProbe` — histogram of consecutive-mispredict
  streak lengths. Lin & Tarsa's "Branch Prediction Is Not a Solved
  Problem" argues streaks, not isolated misses, dominate the remaining
  cost of real predictors; this makes them first-class.
* :class:`TopOffendersProbe` — the top-K static branches by
  misprediction count (the paper's hard-to-predict branches; workload
  characterisation shows a handful of sites dominate).
* :class:`WarmupCurveProbe` — mispredict rate per branch-window after
  each first-level flush, averaged over all flush segments: the warm-up
  behaviour the paper's §5.1.4 context-switch study measures end to end.

Plus :class:`TableStatsProbe`, which harvests the lightweight counter
hooks on the ``repro.core`` tables (PHT occupancy / update / flip
counters, BHT hit/miss/eviction statistics) at run end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple

from .probes import Probe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..predictors.base import BranchPredictor
    from ..sim.results import SimulationResult
    from ..trace.events import Trace

__all__ = [
    "DEFAULT_INTERVAL_INSTRUCTIONS",
    "IntervalPoint",
    "IntervalSeriesProbe",
    "Offender",
    "StreakHistogramProbe",
    "TableStatsProbe",
    "TopOffendersProbe",
    "WarmupCurveProbe",
    "WarmupWindow",
]

#: Default dynamic-instruction window for interval series (about 10-60
#: points on a scale-1 workload trace; override per probe or via the
#: CLI's ``--interval``).
DEFAULT_INTERVAL_INSTRUCTIONS = 100_000


@dataclass(frozen=True)
class IntervalPoint:
    """One closed window of the interval time series.

    Attributes:
        index: window index (windows a trace never touched are absent).
        instret: instruction clock when the window closed (for the final
            partial window, the clock at end of trace).
        branches: conditional branches resolved inside the window.
        mispredicts: how many of them were mispredicted.
    """

    index: int
    instret: int
    branches: int
    mispredicts: int

    @property
    def accuracy(self) -> float:
        if self.branches == 0:
            return 0.0
        return 1.0 - self.mispredicts / self.branches

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "instret": self.instret,
            "branches": self.branches,
            "mispredicts": self.mispredicts,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "IntervalPoint":
        return cls(
            index=int(payload["index"]),
            instret=int(payload["instret"]),
            branches=int(payload["branches"]),
            mispredicts=int(payload["mispredicts"]),
        )


class IntervalSeriesProbe(Probe):
    """Accuracy over fixed dynamic-instruction windows.

    Windows containing no conditional branches produce no point (the
    engine skips their interval ticks), so the series is sparse on
    branch-free stretches; plotters should key on ``point.index``.
    """

    def __init__(self, window_instructions: int = DEFAULT_INTERVAL_INSTRUCTIONS) -> None:
        if window_instructions < 1:
            raise ValueError("window_instructions must be >= 1")
        self.interval_instructions = window_instructions
        self.points: List[IntervalPoint] = []
        self._branches = 0
        self._mispredicts = 0
        self._next_index = 0
        self._last_instret = 0

    def on_branch(self, pc: int, predicted: bool, taken: bool, instret: int) -> None:
        self._branches += 1
        if predicted != taken:
            self._mispredicts += 1
        self._last_instret = instret

    def on_interval(self, index: int, instret: int) -> None:
        if self._branches:
            self.points.append(
                IntervalPoint(index, instret, self._branches, self._mispredicts)
            )
        self._branches = 0
        self._mispredicts = 0
        self._next_index = index + 1

    def on_run_end(self, result: "SimulationResult") -> None:
        if self._branches:
            self.points.append(
                IntervalPoint(
                    self._next_index, self._last_instret, self._branches, self._mispredicts
                )
            )
            self._branches = 0
            self._mispredicts = 0


class StreakHistogramProbe(Probe):
    """Histogram of consecutive-misprediction streak lengths."""

    def __init__(self) -> None:
        self.histogram: Dict[int, int] = {}
        self._current = 0

    def _close(self) -> None:
        if self._current:
            self.histogram[self._current] = self.histogram.get(self._current, 0) + 1
            self._current = 0

    def on_branch(self, pc: int, predicted: bool, taken: bool, instret: int) -> None:
        if predicted != taken:
            self._current += 1
        else:
            self._close()

    def on_run_end(self, result: "SimulationResult") -> None:
        self._close()

    @property
    def max_streak(self) -> int:
        return max(self.histogram) if self.histogram else 0

    @property
    def total_streaks(self) -> int:
        return sum(self.histogram.values())

    @property
    def total_mispredicts(self) -> int:
        return sum(length * count for length, count in self.histogram.items())

    def mean_streak(self) -> float:
        total = self.total_streaks
        return self.total_mispredicts / total if total else 0.0

    def as_dict(self) -> Dict[int, int]:
        """The histogram with keys in ascending streak-length order."""
        return {length: self.histogram[length] for length in sorted(self.histogram)}


@dataclass(frozen=True)
class Offender:
    """One row of the top-K hard-to-predict branch table."""

    pc: int
    executions: int
    mispredicts: int
    taken: int

    @property
    def accuracy(self) -> float:
        if self.executions == 0:
            return 0.0
        return 1.0 - self.mispredicts / self.executions

    @property
    def taken_rate(self) -> float:
        return self.taken / self.executions if self.executions else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pc": self.pc,
            "executions": self.executions,
            "mispredicts": self.mispredicts,
            "taken": self.taken,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Offender":
        return cls(
            pc=int(payload["pc"]),
            executions=int(payload["executions"]),
            mispredicts=int(payload["mispredicts"]),
            taken=int(payload["taken"]),
        )


class TopOffendersProbe(Probe):
    """Per-static-branch statistics, reported as a top-K offender table."""

    def __init__(self, k: int = 10) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._sites: Dict[int, List[int]] = {}

    def on_branch(self, pc: int, predicted: bool, taken: bool, instret: int) -> None:
        site = self._sites.get(pc)
        if site is None:
            site = [0, 0, 0]
            self._sites[pc] = site
        site[0] += 1
        if predicted != taken:
            site[1] += 1
        if taken:
            site[2] += 1

    @property
    def static_sites(self) -> int:
        return len(self._sites)

    def table(self, k: Optional[int] = None) -> List[Offender]:
        """The top ``k`` sites by mispredictions (ties broken by pc)."""
        limit = self.k if k is None else k
        ranked = sorted(self._sites.items(), key=lambda item: (-item[1][1], item[0]))
        return [
            Offender(pc, executions, mispredicts, taken)
            for pc, (executions, mispredicts, taken) in ranked[:limit]
        ]


@dataclass(frozen=True)
class WarmupWindow:
    """One branch-window of the post-flush warm-up curve, aggregated
    over every flush segment that reached it."""

    index: int
    branches: int
    mispredicts: int

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "branches": self.branches,
            "mispredicts": self.mispredicts,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WarmupWindow":
        return cls(
            index=int(payload["index"]),
            branches=int(payload["branches"]),
            mispredicts=int(payload["mispredicts"]),
        )


class WarmupCurveProbe(Probe):
    """Mispredict rate per branch-window after each first-level flush.

    A *segment* starts at run start and after every context switch; the
    first ``max_windows`` windows of ``window_branches`` branches of
    each segment are accumulated position-wise, yielding the average
    warm-up curve the paper's context-switch analysis reasons about
    (how fast does accuracy recover after the BHT is flushed?).
    """

    def __init__(self, window_branches: int = 256, max_windows: int = 32) -> None:
        if window_branches < 1:
            raise ValueError("window_branches must be >= 1")
        if max_windows < 1:
            raise ValueError("max_windows must be >= 1")
        self.window_branches = window_branches
        self.max_windows = max_windows
        self.segments = 1  # the run start opens the first segment
        self._windows: List[List[int]] = []  # index -> [branches, mispredicts]
        self._segment_branches = 0

    def on_branch(self, pc: int, predicted: bool, taken: bool, instret: int) -> None:
        index = self._segment_branches // self.window_branches
        self._segment_branches += 1
        if index >= self.max_windows:
            return
        while len(self._windows) <= index:
            self._windows.append([0, 0])
        window = self._windows[index]
        window[0] += 1
        if predicted != taken:
            window[1] += 1

    def on_context_switch(self, instret: int) -> None:
        self.segments += 1
        self._segment_branches = 0

    def curve(self) -> List[WarmupWindow]:
        return [
            WarmupWindow(index, branches, mispredicts)
            for index, (branches, mispredicts) in enumerate(self._windows)
        ]


class TableStatsProbe(Probe):
    """Occupancy and interference counters from the predictor's tables.

    At run start the probe discovers the standard table attributes by
    their counter-hook surface — ``pht`` (a
    :class:`~repro.core.pht.PatternHistoryTable`), ``bank`` (a
    :class:`~repro.core.pht.PHTBank`), ``bht`` (an
    :class:`~repro.core.history.IdealBHT`/:class:`~repro.core.history.CacheBHT`)
    — and attaches :class:`~repro.core.pht.PHTCounters` where supported.
    At run end it freezes a JSON-compatible :attr:`snapshot`:

    * PHT: entry count, non-initial-state occupancy, update /
      state-change / direction-flip counts (direction flips on a shared
      table are the signature of destructive second-level interference);
    * PHT bank: materialised tables, summed occupancy, eviction-driven
      slot resets;
    * BHT: capacity, resident occupancy, hit/miss/eviction/flush
      statistics (evictions measure first-level interference pressure).

    Predictors without these attributes (static schemes, BTBs with only
    a ``bht``) simply produce a smaller snapshot. The counters live on
    the tables but never feed back into prediction, so results stay
    bit-identical.
    """

    def __init__(self) -> None:
        self.snapshot: Dict[str, Any] = {}
        self._targets: List[Tuple[str, Any]] = []

    def on_run_start(self, predictor: "BranchPredictor", trace: "Trace") -> None:
        self._targets = []
        for attr in ("pht", "bank", "bht"):
            table = getattr(predictor, attr, None)
            if table is None:
                continue
            if hasattr(table, "attach_counters"):
                table.attach_counters()
            self._targets.append((attr, table))

    def on_run_end(self, result: "SimulationResult") -> None:
        snapshot: Dict[str, Any] = {}
        for attr, table in self._targets:
            entry: Dict[str, Any] = {}
            if hasattr(table, "num_entries"):
                entry["entries"] = table.num_entries
            occupancy = getattr(table, "occupancy", None)
            if callable(occupancy):
                entry["occupancy"] = occupancy()
            elif occupancy is not None:
                entry["occupancy"] = occupancy
            counters = getattr(table, "counters", None)
            if counters is not None:
                entry["counters"] = counters.as_dict()
            stats = getattr(table, "stats", None)
            if stats is not None and hasattr(stats, "as_dict"):
                entry["stats"] = stats.as_dict()
            if hasattr(table, "slot_resets"):
                entry["slot_resets"] = table.slot_resets
                entry["tables_materialised"] = len(table)
            snapshot[attr] = entry
        self.snapshot = snapshot
