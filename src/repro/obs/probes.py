"""The probe API: how observers attach to the simulation engine.

A **probe** is any object with the :class:`Probe` callback surface. The
engine (:func:`repro.sim.engine.simulate`) invokes the callbacks at
fixed points of the replay loop:

========================  =============================================
``on_run_start(p, t)``    once, before the first trace record.
``on_branch(pc, predicted, taken, instret)``
                          after each conditional branch is predicted,
                          updated and resolved (warm-up branches
                          included).
``on_context_switch(instret)``
                          after each simulated context switch flushed
                          the predictor's first level.
``on_interval(index, instret)``
                          each time the dynamic instruction clock
                          crosses a multiple of
                          :attr:`Probe.interval_instructions`; fired at
                          most once per record, with the index of the
                          highest fully-completed window (intervening
                          branch-free windows are skipped).
``on_run_end(result)``    once, with the final ``SimulationResult``.
========================  =============================================

Probes are pure observers: the contract — enforced statically by the
``repro.check`` purity/determinism lints, and dynamically by the
equivalence tests — is that attaching any probe leaves the simulation
result bit-identical to a probe-free run. When no probe is attached the
engine takes a separate loop with zero per-record overhead.

Multiple probes compose through :class:`ProbeSet`, which fans every
callback out to its members and reconciles their interval windows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from ..predictors.base import BranchPredictor
    from ..sim.results import SimulationResult
    from ..trace.events import Trace

__all__ = ["Probe", "ProbeSet"]


class Probe:
    """Base probe: every callback is a no-op; subclass what you need.

    Attributes:
        interval_instructions: instruction-window size driving
            :meth:`on_interval`; ``None`` (the default) disables the
            interval clock for this probe.
    """

    interval_instructions: Optional[int] = None

    def on_run_start(self, predictor: "BranchPredictor", trace: "Trace") -> None:
        """Called once before the first record of the trace."""

    def on_branch(self, pc: int, predicted: bool, taken: bool, instret: int) -> None:
        """Called after each conditional branch resolves."""

    def on_interval(self, index: int, instret: int) -> None:
        """Called when the instruction clock completes window ``index``."""

    def on_context_switch(self, instret: int) -> None:
        """Called after each simulated context-switch flush."""

    def on_run_end(self, result: "SimulationResult") -> None:
        """Called once with the final simulation result."""


class ProbeSet(Probe):
    """A composite probe fanning every callback out to its members.

    Members may each declare an ``interval_instructions`` window; all
    declared windows must agree (a single engine-side interval clock
    drives every member), and the set adopts that common value. Members
    without a window simply receive the shared ``on_interval`` ticks —
    free to ignore them.

    Raises:
        ValueError: when two members declare different windows.
    """

    def __init__(self, probes: Iterable[Probe] = ()) -> None:
        self.probes: List[Probe] = []
        for probe in probes:
            self.add(probe)

    def add(self, probe: Probe) -> "ProbeSet":
        """Append ``probe``, reconciling its interval window; returns self."""
        window = probe.interval_instructions
        if window is not None:
            if self.interval_instructions is None:
                self.interval_instructions = window
            elif self.interval_instructions != window:
                raise ValueError(
                    "probes declare conflicting interval windows: "
                    f"{self.interval_instructions} vs {window} instructions"
                )
        self.probes.append(probe)
        return self

    def __len__(self) -> int:
        return len(self.probes)

    def __iter__(self):
        return iter(self.probes)

    def on_run_start(self, predictor: "BranchPredictor", trace: "Trace") -> None:
        for probe in self.probes:
            probe.on_run_start(predictor, trace)

    def on_branch(self, pc: int, predicted: bool, taken: bool, instret: int) -> None:
        for probe in self.probes:
            probe.on_branch(pc, predicted, taken, instret)

    def on_interval(self, index: int, instret: int) -> None:
        for probe in self.probes:
            probe.on_interval(index, instret)

    def on_context_switch(self, instret: int) -> None:
        for probe in self.probes:
            probe.on_context_switch(instret)

    def on_run_end(self, result: "SimulationResult") -> None:
        for probe in self.probes:
            probe.on_run_end(result)
