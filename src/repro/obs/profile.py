"""Profiling layer: per-phase wall-clock spans and cProfile capture.

Two granularities:

* **Phase spans** — :class:`PhaseTimer` accumulates named
  ``time.perf_counter`` spans (``trace_load``, ``build``, ``simulate``,
  and, with :class:`TimingPredictor`, per-call ``predict`` / ``update``
  splits). Span totals land in the :class:`~repro.obs.report.RunReport`
  timing section and mirror the per-cell phase breakdown the parallel
  runner records in :class:`~repro.sim.results.RunTelemetry`.
* **cProfile** — :func:`run_cprofile` wraps any callable and returns the
  top of the cumulative-time profile as text, for when span totals show
  *where* time goes but not *why*.

``perf_counter`` here is telemetry, never an input to a result — the
same allowance the determinism lint grants the run-telemetry layer
(see :mod:`repro.check.determinism`).

:class:`TimingPredictor` deliberately does **not** derive from
``BranchPredictor``: it is a duck-typed proxy (the engine only calls
``predict`` / ``update`` / ``on_context_switch`` / ``name``), and its
``predict`` necessarily mutates timer state — something the purity lint
rightly forbids for real predictors. Per-call timing costs real
overhead (two clock reads per branch); it is an opt-in diagnostic, not
a default.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Mapping, Tuple, TypeVar

__all__ = ["PhaseTimer", "SpanStats", "TimingPredictor", "run_cprofile"]

T = TypeVar("T")


@dataclass
class SpanStats:
    """Accumulated wall time for one named phase."""

    seconds: float = 0.0
    calls: int = 0

    def add(self, seconds: float, calls: int = 1) -> None:
        self.seconds += seconds
        self.calls += calls

    def to_dict(self) -> Dict[str, float]:
        return {"seconds": self.seconds, "calls": self.calls}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SpanStats":
        return cls(seconds=float(payload["seconds"]), calls=int(payload["calls"]))


class PhaseTimer:
    """Named ``perf_counter`` spans with zero setup cost.

    Usage::

        timer = PhaseTimer()
        with timer.span("simulate"):
            result = simulate(predictor, trace)
        timer.as_dict()   # {"simulate": {"seconds": ..., "calls": 1}}
    """

    def __init__(self) -> None:
        self.spans: Dict[str, SpanStats] = {}

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        span = self.spans.get(name)
        if span is None:
            span = SpanStats()
            self.spans[name] = span
        span.add(seconds, calls)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - started)

    def seconds(self, name: str) -> float:
        span = self.spans.get(name)
        return span.seconds if span is not None else 0.0

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Span totals, phase names sorted for stable serialisation."""
        return {name: self.spans[name].to_dict() for name in sorted(self.spans)}


class TimingPredictor:
    """Duck-typed predictor proxy timing every predict/update call.

    Transparent for simulation semantics: all four engine-facing calls
    delegate to the wrapped predictor unchanged, so results are
    bit-identical; only wall time is observed.
    """

    def __init__(self, inner, timer: PhaseTimer) -> None:
        self.inner = inner
        self.timer = timer
        self.name = inner.name

    def predict(self, pc: int, target: int = 0) -> bool:
        started = time.perf_counter()
        prediction = self.inner.predict(pc, target)
        self.timer.add("predict", time.perf_counter() - started)
        return prediction

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        started = time.perf_counter()
        self.inner.update(pc, taken, target)
        self.timer.add("update", time.perf_counter() - started)

    def on_context_switch(self) -> None:
        self.inner.on_context_switch()

    def reset(self) -> None:
        self.inner.reset()

    def __getattr__(self, attr: str) -> Any:
        # Transparent to attribute probes: table lookups such as
        # TableStatsProbe's ``predictor.pht`` must reach the real
        # predictor through the proxy.
        return getattr(self.inner, attr)


def run_cprofile(
    fn: Callable[[], T], top: int = 25, sort: str = "cumulative"
) -> Tuple[T, str]:
    """Run ``fn`` under :mod:`cProfile`; return (value, profile text).

    Args:
        fn: zero-argument callable to profile.
        top: number of rows of the stats table to keep.
        sort: pstats sort key (``"cumulative"``, ``"tottime"``, ...).
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        value = fn()
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(top)
    return value, buffer.getvalue()
