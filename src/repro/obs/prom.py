"""Prometheus text exposition of sweep / ledger metrics.

The ledger (:mod:`repro.obs.ledger`) already holds everything a metrics
scrape needs — accuracy, throughput, wall time, phase breakdowns, span
summaries, peak worker RSS — as append-only history. This module
renders the *latest state* of that history in the Prometheus text
exposition format (version 0.0.4: ``# HELP`` / ``# TYPE`` headers, one
``name{labels} value`` sample per line), so ``repro-obs metrics`` can
feed a node-exporter-style textfile collector or be scraped directly
from CI artifacts. No client library involved — the format is a
documented plain-text protocol and the repo takes no new dependencies.

Rendering rules:

* one sample per *configuration* (config hash), taken from the latest
  entry of its history — gauges describe current state, while
  ``repro_runs_total`` counts the whole history per configuration;
* deterministic output: metric families in a fixed order, samples
  sorted by label values, floats via ``repr`` (shortest round-trip
  form) — two renders of one ledger are byte-identical, so the output
  diffs cleanly in CI artifacts;
* label values escaped per the spec (backslash, double-quote, newline).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .ledger import LedgerEntry, RunLedger

__all__ = [
    "format_sample",
    "render_metrics",
]

#: (metric name, HELP text, TYPE) in render order.
_FAMILIES: Tuple[Tuple[str, str, str], ...] = (
    ("repro_runs_total",
     "Recorded runs in the ledger for this configuration.", "counter"),
    ("repro_run_accuracy_ratio",
     "Prediction accuracy of the latest run (correct / conditional).", "gauge"),
    ("repro_run_branches_per_second",
     "Simulate-phase throughput of the latest run.", "gauge"),
    ("repro_run_wall_seconds",
     "Wall-clock seconds of the latest run.", "gauge"),
    ("repro_run_phase_seconds",
     "Per-phase wall-clock seconds of the latest run.", "gauge"),
    ("repro_run_peak_rss_bytes",
     "Peak worker resident set size during the latest run.", "gauge"),
    ("repro_run_span_seconds",
     "Total traced span seconds by span name in the latest run.", "gauge"),
    ("repro_run_span_count",
     "Traced span count by span name in the latest run.", "gauge"),
    # Characterization families: read from the embedded
    # repro.analysis.char payload under extra["characterization"].
    ("repro_char_static_sites",
     "Static conditional branch sites in the latest characterization.", "gauge"),
    ("repro_char_outcome_entropy_bits",
     "Whole-trace branch outcome entropy of the latest characterization.", "gauge"),
    ("repro_char_conditional_entropy_bits",
     "H(outcome | k-bit history) by history register and depth k.", "gauge"),
    ("repro_char_ideal_accuracy_ratio",
     "Majority-oracle accuracy bound by history register and depth k.", "gauge"),
    ("repro_char_h2p_sites",
     "Hard-to-predict branch sites in the latest characterization.", "gauge"),
    ("repro_char_h2p_dynamic_share_ratio",
     "Dynamic-execution share of hard-to-predict branches.", "gauge"),
    ("repro_char_cluster_share_ratio",
     "Dynamic-execution share of each predictability cluster.", "gauge"),
    ("repro_char_cluster_winner_info",
     "Winning scheme per predictability cluster (value is its accuracy).", "gauge"),
    ("repro_char_scheme_accuracy_ratio",
     "Whole-trace replay accuracy of each attributed scheme.", "gauge"),
)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: Union[int, float]) -> str:
    """Render a sample value (ints bare, floats shortest-round-trip)."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def format_sample(
    name: str, labels: Mapping[str, str], value: Union[int, float]
) -> str:
    """One exposition line: ``name{k="v",...} value``.

    Labels render sorted by key; an empty label set renders without
    braces, as the spec prefers.
    """
    if labels:
        body = ",".join(
            f'{key}="{_escape_label_value(str(labels[key]))}"'
            for key in sorted(labels)
        )
        return f"{name}{{{body}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def _base_labels(entry: LedgerEntry) -> Dict[str, str]:
    labels = {
        "kind": entry.kind,
        "scheme": entry.scheme,
        "workload": entry.workload,
    }
    if entry.dataset:
        labels["dataset"] = entry.dataset
    return labels


def _collect(
    entries: Sequence[LedgerEntry],
) -> Dict[str, List[Tuple[Dict[str, str], Union[int, float]]]]:
    """Samples per family from per-configuration latest entries."""
    histories: Dict[str, List[LedgerEntry]] = {}
    for entry in entries:
        histories.setdefault(entry.config_hash, []).append(entry)
    samples: Dict[str, List[Tuple[Dict[str, str], Union[int, float]]]] = {
        name: [] for name, _, _ in _FAMILIES
    }
    for config_hash in sorted(histories):
        history = sorted(histories[config_hash], key=lambda e: e.seq)
        latest = history[-1]
        labels = _base_labels(latest)
        samples["repro_runs_total"].append((labels, len(history)))
        accuracy = latest.accuracy
        if accuracy is not None:
            samples["repro_run_accuracy_ratio"].append((labels, accuracy))
        if latest.branches_per_sec > 0:
            samples["repro_run_branches_per_second"].append(
                (labels, latest.branches_per_sec)
            )
        if latest.wall_time > 0:
            samples["repro_run_wall_seconds"].append((labels, latest.wall_time))
        for phase in sorted(latest.phases):
            samples["repro_run_phase_seconds"].append(
                ({**labels, "phase": phase}, latest.phases[phase])
            )
        rss = latest.extra.get("rss_peak_bytes")
        if isinstance(rss, (int, float)) and not isinstance(rss, bool) and rss > 0:
            samples["repro_run_peak_rss_bytes"].append((labels, int(rss)))
        spans = latest.extra.get("spans")
        if isinstance(spans, Mapping):
            by_name = spans.get("by_name", {})
            if isinstance(by_name, Mapping):
                for span_name in sorted(by_name):
                    bucket = by_name[span_name]
                    if not isinstance(bucket, Mapping):
                        continue
                    span_labels = {**labels, "span": str(span_name)}
                    seconds = bucket.get("seconds")
                    if isinstance(seconds, (int, float)):
                        samples["repro_run_span_seconds"].append(
                            (span_labels, float(seconds))
                        )
                    count = bucket.get("count")
                    if isinstance(count, (int, float)):
                        samples["repro_run_span_count"].append(
                            (span_labels, int(count))
                        )
        characterization = latest.extra.get("characterization")
        if isinstance(characterization, Mapping):
            _collect_characterization(samples, labels, characterization)
    return samples


def _collect_characterization(
    samples: Dict[str, List[Tuple[Dict[str, str], Union[int, float]]]],
    labels: Dict[str, str],
    payload: Mapping[str, Any],
) -> None:
    """Samples from one embedded ``repro.analysis.char`` payload."""
    samples["repro_char_static_sites"].append(
        (labels, int(payload.get("static_sites", 0)))
    )
    samples["repro_char_outcome_entropy_bits"].append(
        (labels, float(payload.get("outcome_entropy_bits", 0.0)))
    )
    for history in ("global", "local"):
        curve = payload.get(f"{history}_curve", [])
        if not isinstance(curve, Sequence):
            continue
        for point in curve:
            if not isinstance(point, Mapping):
                continue
            point_labels = {**labels, "history": history, "k": str(point.get("k", 0))}
            samples["repro_char_conditional_entropy_bits"].append(
                (point_labels, float(point.get("entropy_bits", 0.0)))
            )
            samples["repro_char_ideal_accuracy_ratio"].append(
                (point_labels, float(point.get("ideal_accuracy", 0.0)))
            )
    h2p = payload.get("h2p", {})
    if isinstance(h2p, Mapping):
        samples["repro_char_h2p_sites"].append((labels, int(h2p.get("sites", 0))))
        samples["repro_char_h2p_dynamic_share_ratio"].append(
            (labels, float(h2p.get("dynamic_share", 0.0)))
        )
    clusters = payload.get("clusters", [])
    if isinstance(clusters, Sequence):
        for cluster in clusters:
            if not isinstance(cluster, Mapping):
                continue
            name = str(cluster.get("name", ""))
            cluster_labels = {**labels, "cluster": name}
            samples["repro_char_cluster_share_ratio"].append(
                (cluster_labels, float(cluster.get("dynamic_share", 0.0)))
            )
            winner = cluster.get("winner")
            if winner:
                accuracy = cluster.get("accuracy", {})
                value = accuracy.get(winner) if isinstance(accuracy, Mapping) else None
                if isinstance(value, (int, float)):
                    samples["repro_char_cluster_winner_info"].append(
                        ({**cluster_labels, "winner": str(winner)}, float(value))
                    )
    for entry in payload.get("schemes", []):
        if not isinstance(entry, Mapping):
            continue
        samples["repro_char_scheme_accuracy_ratio"].append(
            ({**labels, "attributed_scheme": str(entry.get("scheme", ""))},
             float(entry.get("accuracy", 0.0)))
        )


def render_metrics(
    source: Union[RunLedger, Sequence[LedgerEntry]],
    kind: Optional[str] = None,
) -> str:
    """Render ledger state as a Prometheus text exposition.

    Args:
        source: a :class:`~repro.obs.ledger.RunLedger` (read in full)
            or a pre-filtered entry sequence.
        kind: optional entry-kind filter (``"obs"`` / ``"matrix"`` /
            ``"bench"`` / ``"char"``).

    Returns:
        The exposition text, newline-terminated; families with no
        samples are omitted entirely (HELP/TYPE included), and an
        empty ledger renders to a single comment line so the output is
        still a valid (empty) exposition.
    """
    entries: Sequence[LedgerEntry]
    entries = source.entries() if isinstance(source, RunLedger) else list(source)
    if kind is not None:
        entries = [entry for entry in entries if entry.kind == kind]
    samples = _collect(entries)
    lines: List[str] = []
    for name, help_text, family_type in _FAMILIES:
        family_samples = samples[name]
        if not family_samples:
            continue
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {family_type}")
        rendered = sorted(
            format_sample(name, labels, value) for labels, value in family_samples
        )
        lines.extend(rendered)
    if not lines:
        return "# (no runs recorded)\n"
    return "\n".join(lines) + "\n"
