"""The :class:`RunReport` — one observed simulation run, serialisable.

A ``RunReport`` is what ``python -m repro.obs`` emits and what
:func:`repro.obs.runner.observe` returns: the exact
:class:`~repro.sim.results.SimulationResult` the engine produced, plus
every metric the probes collected (interval series, streak histogram,
offender table, warm-up curve, table counters) and the profiling spans.

The JSON layout is **schema-stable**: :data:`SCHEMA` names the current
revision, :meth:`RunReport.to_dict` always emits every top-level key,
and :meth:`RunReport.from_dict` round-trips exactly — including through
the on-disk :class:`~repro.trace.cache.ResultCache`, whose payloads are
plain JSON objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..sim.results import SimulationResult
from .metrics import IntervalPoint, Offender, WarmupWindow

__all__ = ["RunReport", "SCHEMA", "format_report"]

#: Schema identifier embedded in every serialised report. Bump when a
#: key changes meaning; consumers should reject unknown majors.
SCHEMA = "repro.obs/1"


@dataclass
class RunReport:
    """Everything observed about one simulation run.

    Attributes:
        scheme: the scheme name the run was requested with.
        workload: benchmark / trace name.
        dataset: input dataset label.
        result: the engine's exact result (bit-identical to an
            unobserved run).
        interval_instructions: instruction-window size of the interval
            series (``None`` when the series was disabled).
        intervals: the interval time series (sparse; keyed by index).
        streaks: mispredict-streak histogram, length -> occurrences.
        offenders: top-K static branches by mispredictions.
        warmup: post-flush warm-up curve windows (empty when the run
            had no context switches beyond the initial segment —
            the curve then describes cold-start warm-up only).
        warmup_segments: flush segments the warm-up curve averages over.
        tables: PHT/BHT occupancy + interference counter snapshot.
        timing: phase name -> ``{"seconds": float, "calls": int}``.
        cprofile: rendered cProfile table when requested, else ``None``.
        events_path: where the JSONL event trace went, when enabled.
        extra: free-form JSON-compatible attachments. The
            characterization layer stores its serialised
            :class:`~repro.analysis.predictability.CharacterizationReport`
            under ``extra["characterization"]``; the ledger copies
            ``extra`` into the recorded entry verbatim.
    """

    scheme: str
    workload: str
    dataset: str = ""
    result: Optional[SimulationResult] = None
    interval_instructions: Optional[int] = None
    intervals: List[IntervalPoint] = field(default_factory=list)
    streaks: Dict[int, int] = field(default_factory=dict)
    offenders: List[Offender] = field(default_factory=list)
    warmup: List[WarmupWindow] = field(default_factory=list)
    warmup_segments: int = 0
    tables: Dict[str, Any] = field(default_factory=dict)
    timing: Dict[str, Dict[str, float]] = field(default_factory=dict)
    cprofile: Optional[str] = None
    events_path: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def max_streak(self) -> int:
        return max(self.streaks) if self.streaks else 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible dict; every top-level key always present."""
        return {
            "schema": SCHEMA,
            "scheme": self.scheme,
            "workload": self.workload,
            "dataset": self.dataset,
            "result": self.result.to_dict() if self.result is not None else None,
            "interval_instructions": self.interval_instructions,
            "intervals": [point.to_dict() for point in self.intervals],
            "streaks": {str(length): count for length, count in sorted(self.streaks.items())},
            "offenders": [offender.to_dict() for offender in self.offenders],
            "warmup": {
                "segments": self.warmup_segments,
                "windows": [window.to_dict() for window in self.warmup],
            },
            "tables": self.tables,
            "timing": {name: dict(span) for name, span in sorted(self.timing.items())},
            "cprofile": self.cprofile,
            "events_path": self.events_path,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunReport":
        """Reconstruct a report serialised by :meth:`to_dict`."""
        schema = payload.get("schema", SCHEMA)
        if not str(schema).startswith("repro.obs/"):
            raise ValueError(f"not a RunReport payload (schema={schema!r})")
        result_payload = payload.get("result")
        warmup_payload = payload.get("warmup") or {}
        return cls(
            scheme=payload["scheme"],
            workload=payload["workload"],
            dataset=payload.get("dataset", ""),
            result=(
                SimulationResult.from_dict(result_payload)
                if result_payload is not None
                else None
            ),
            interval_instructions=payload.get("interval_instructions"),
            intervals=[
                IntervalPoint.from_dict(point) for point in payload.get("intervals", [])
            ],
            streaks={
                int(length): int(count)
                for length, count in payload.get("streaks", {}).items()
            },
            offenders=[
                Offender.from_dict(offender) for offender in payload.get("offenders", [])
            ],
            warmup=[
                WarmupWindow.from_dict(window)
                for window in warmup_payload.get("windows", [])
            ],
            warmup_segments=int(warmup_payload.get("segments", 0)),
            tables=dict(payload.get("tables", {})),
            timing={
                name: {k: v for k, v in span.items()}
                for name, span in payload.get("timing", {}).items()
            },
            cprofile=payload.get("cprofile"),
            events_path=payload.get("events_path"),
            extra=dict(payload.get("extra", {})),
        )


def format_report(report: RunReport, top: int = 10) -> str:
    """Perf-style text rendering of a :class:`RunReport`."""
    lines: List[str] = []
    result = report.result
    lines.append(f"# repro.obs — {report.scheme} on {report.workload}"
                 + (f" ({report.dataset})" if report.dataset else ""))
    if result is not None:
        lines.append(
            f"accuracy        : {result.accuracy * 100:8.4f}%  "
            f"({result.correct_predictions}/{result.conditional_branches} conditional branches)"
        )
        lines.append(
            f"mispredictions  : {result.mispredictions:8d}  "
            f"({result.mpki:.3f} MPKI over {result.total_instructions} instructions)"
        )
        if result.context_switches:
            lines.append(f"context switches: {result.context_switches:8d}")

    if report.intervals:
        lines.append("")
        lines.append(
            f"interval series ({report.interval_instructions} instructions/window, "
            f"{len(report.intervals)} windows):"
        )
        lines.append("  window        instret   branches   mispred   accuracy")
        for point in report.intervals:
            lines.append(
                f"  {point.index:6d}  {point.instret:13d}  {point.branches:9d} "
                f"{point.mispredicts:9d}   {point.accuracy * 100:7.3f}%"
            )

    if report.streaks:
        lines.append("")
        total = sum(report.streaks.values())
        lines.append(f"mispredict streaks ({total} streaks, longest {report.max_streak}):")
        lines.append("  length   streaks   mispredicts")
        for length in sorted(report.streaks):
            count = report.streaks[length]
            lines.append(f"  {length:6d}  {count:8d}  {length * count:12d}")

    if report.offenders:
        lines.append("")
        lines.append(f"top {min(top, len(report.offenders))} hard-to-predict branches:")
        lines.append("          pc   mispred     execs   taken%   accuracy")
        for offender in report.offenders[:top]:
            lines.append(
                f"  {offender.pc:#010x}  {offender.mispredicts:8d}  {offender.executions:8d} "
                f"  {offender.taken_rate * 100:5.1f}%    {offender.accuracy * 100:6.2f}%"
            )

    if report.warmup:
        lines.append("")
        lines.append(
            f"post-flush warm-up (averaged over {report.warmup_segments} segments):"
        )
        lines.append("  window   branches   mispredict-rate")
        for window in report.warmup:
            lines.append(
                f"  {window.index:6d}  {window.branches:9d}   {window.mispredict_rate * 100:7.3f}%"
            )

    if report.tables:
        lines.append("")
        lines.append("table counters:")
        for name in sorted(report.tables):
            entry = report.tables[name]
            parts = []
            for key in sorted(entry):
                value = entry[key]
                if isinstance(value, dict):
                    inner = ", ".join(f"{k}={value[k]}" for k in sorted(value))
                    parts.append(f"{key}({inner})")
                else:
                    parts.append(f"{key}={value}")
            lines.append(f"  {name:4s}: " + "  ".join(parts))

    if report.timing:
        lines.append("")
        lines.append("timing spans:")
        ordered = sorted(
            report.timing.items(), key=lambda item: -item[1].get("seconds", 0.0)
        )
        for name, span in ordered:
            seconds = span.get("seconds", 0.0)
            calls = int(span.get("calls", 0))
            lines.append(f"  {name:12s} {seconds * 1000.0:12.3f} ms   {calls:10d} calls")

    characterization = report.extra.get("characterization")
    if characterization:
        lines.append("")
        lines.append(
            f"characterization: {characterization.get('static_sites', 0)} static sites, "
            f"outcome entropy {characterization.get('outcome_entropy_bits', 0.0):.4f} bits, "
            f"{characterization.get('h2p', {}).get('sites', 0)} H2P branches "
            f"(schema {characterization.get('schema', '?')})"
        )

    if report.events_path:
        lines.append("")
        lines.append(f"event trace: {report.events_path}")
    if report.cprofile:
        lines.append("")
        lines.append("cProfile (top of cumulative time):")
        lines.append(report.cprofile.rstrip())
    return "\n".join(lines)
