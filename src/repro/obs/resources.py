"""Per-process resource telemetry (RSS / CPU) for workers and sweeps.

The parallel runner can tell us *when* a cell ran (spans,
:mod:`repro.obs.spans`) — this module adds *what it cost the machine*:
resident set size and accumulated CPU time of the process doing the
work. Readings ride along on spans (``args``) and heartbeat messages,
and export to Perfetto as counter tracks so memory growth lines up
visually with the phase that caused it.

Two acquisition paths, picked once per process:

* **/proc** (Linux): ``/proc/self/status`` for ``VmRSS`` (current
  resident set) and ``VmHWM`` (the high-water mark — the kernel tracks
  the peak for us, so "peak worker RSS" needs no polling thread), and
  ``/proc/self/stat`` for ``utime``/``stime`` ticks.
* **``resource.getrusage``** (portable fallback): ``ru_maxrss`` (peak
  only — current RSS is reported as the peak, the best the API offers)
  plus ``ru_utime``/``ru_stime``. ``ru_maxrss`` is kilobytes on Linux
  and **bytes** on macOS; normalisation is handled here so callers only
  ever see bytes.

Everything here is telemetry, never an input to simulation results —
the same standing rule as the probe and span clocks.
"""

from __future__ import annotations

import os
import resource
import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "ResourceSample",
    "ResourceSampler",
    "counters_from_spans",
    "read_resources",
]

_PROC_STATUS = "/proc/self/status"
_PROC_STAT = "/proc/self/stat"


@dataclass(frozen=True)
class ResourceSample:
    """One point-in-time resource reading for the calling process.

    Attributes:
        rss_bytes: current resident set size (bytes; on the rusage
            fallback path this is the peak, the best that API offers).
        peak_rss_bytes: high-water-mark resident set size (bytes).
        cpu_user_s: accumulated user-mode CPU seconds.
        cpu_system_s: accumulated kernel-mode CPU seconds.
        source: ``"proc"`` or ``"rusage"`` — which path produced it.
    """

    rss_bytes: int
    peak_rss_bytes: int
    cpu_user_s: float
    cpu_system_s: float
    source: str

    @property
    def cpu_total_s(self) -> float:
        """User + system CPU seconds."""
        return self.cpu_user_s + self.cpu_system_s

    def as_args(self) -> Dict[str, Any]:
        """Span-args payload (flat, JSON-compatible, stable keys)."""
        return {
            "rss_bytes": self.rss_bytes,
            "peak_rss_bytes": self.peak_rss_bytes,
            "cpu_user_s": self.cpu_user_s,
            "cpu_system_s": self.cpu_system_s,
            "resource_source": self.source,
        }


def _read_proc_status() -> Tuple[int, int]:
    """(VmRSS, VmHWM) in bytes from /proc/self/status."""
    rss = peak = 0
    with open(_PROC_STATUS, "r", encoding="ascii", errors="replace") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                rss = int(line.split()[1]) * 1024
            elif line.startswith("VmHWM:"):
                peak = int(line.split()[1]) * 1024
    return rss, peak


def _read_proc_stat() -> Tuple[float, float]:
    """(utime, stime) in seconds from /proc/self/stat.

    The comm field (2nd) may contain spaces and parentheses, so fields
    are counted from *after* the last ``)``: utime and stime are then
    the 12th and 13th space-separated fields (fields 14/15 of the full
    1-based stat line, per proc(5)).
    """
    with open(_PROC_STAT, "r", encoding="ascii", errors="replace") as handle:
        raw = handle.read()
    after_comm = raw.rsplit(")", 1)[1].split()
    ticks = float(os.sysconf("SC_CLK_TCK"))
    return float(after_comm[11]) / ticks, float(after_comm[12]) / ticks


def _read_rusage() -> ResourceSample:
    usage = resource.getrusage(resource.RUSAGE_SELF)
    # ru_maxrss: kilobytes on Linux/most Unixes, bytes on macOS.
    scale = 1 if sys.platform == "darwin" else 1024
    peak = int(usage.ru_maxrss) * scale
    return ResourceSample(
        rss_bytes=peak,
        peak_rss_bytes=peak,
        cpu_user_s=float(usage.ru_utime),
        cpu_system_s=float(usage.ru_stime),
        source="rusage",
    )


def read_resources() -> ResourceSample:
    """Read the calling process's current resource usage.

    Tries the /proc files first (rich: distinct current and peak RSS),
    falling back to ``resource.getrusage`` wherever /proc is absent or
    unreadable. Never raises: resource telemetry must not be able to
    fail a simulation run.
    """
    try:
        rss, peak = _read_proc_status()
        user, system = _read_proc_stat()
        if rss or peak:
            return ResourceSample(
                rss_bytes=rss,
                peak_rss_bytes=max(peak, rss),
                cpu_user_s=user,
                cpu_system_s=system,
                source="proc",
            )
    except OSError:
        pass
    except (ValueError, IndexError):
        pass
    return _read_rusage()


class ResourceSampler:
    """Collects labelled resource readings over the life of a process.

    The parallel runner holds one per worker and samples at cell
    boundaries (cells run seconds, so boundary sampling bounds overhead
    at a handful of /proc reads per cell — no polling thread needed,
    because the kernel's VmHWM already tracks the intra-cell peak).
    Samples carry a ``ts`` on the caller's span timeline so they can be
    rendered as Perfetto counter events aligned with the spans.
    """

    def __init__(self, pid: Optional[int] = None) -> None:
        self.pid = os.getpid() if pid is None else pid
        self._samples: List[Tuple[float, ResourceSample]] = []

    def sample(self, ts_us: float) -> ResourceSample:
        """Take a reading stamped at ``ts_us`` (µs, span timeline)."""
        reading = read_resources()
        self._samples.append((ts_us, reading))
        return reading

    @property
    def samples(self) -> List[Tuple[float, ResourceSample]]:
        """All (ts_us, sample) pairs, acquisition order."""
        return list(self._samples)

    @property
    def peak_rss_bytes(self) -> int:
        """Largest peak observed across all samples (0 when unsampled)."""
        return max((s.peak_rss_bytes for _, s in self._samples), default=0)

    def counter_events(self) -> List[Dict[str, Any]]:
        """Chrome ``"ph": "C"`` counter events for the RSS track."""
        return [
            {
                "ph": "C",
                "name": "rss",
                "ts": ts,
                "pid": self.pid,
                "args": {"rss_mb": round(s.rss_bytes / (1024 * 1024), 3)},
            }
            for ts, s in self._samples
        ]


def counters_from_spans(spans: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Derive RSS counter events from spans carrying resource args.

    The sweep path attaches a :meth:`ResourceSample.as_args` payload to
    each cell span; this turns those embedded readings back into
    Perfetto counter events (one per cell end, stamped at the span's
    end) so traces exported *from collected spans alone* still get a
    memory track, without shipping a separate sample stream through the
    queue. Accepts :class:`repro.obs.spans.Span` objects or their dict
    form — anything with ``args``/``pid``/``ts``/``dur`` access.
    """
    events: List[Dict[str, Any]] = []
    for span in spans:
        args = span.args if hasattr(span, "args") else span.get("args", {})
        rss = args.get("rss_bytes")
        if rss is None:
            continue
        pid = span.pid if hasattr(span, "pid") else span["pid"]
        ts = span.ts if hasattr(span, "ts") else span["ts"]
        dur = span.dur if hasattr(span, "dur") else span["dur"]
        events.append(
            {
                "ph": "C",
                "name": "rss",
                "ts": ts + dur,
                "pid": int(pid),
                "args": {"rss_mb": round(float(rss) / (1024 * 1024), 3)},
            }
        )
    events.sort(key=lambda e: (e["pid"], e["ts"]))
    return events
