"""The observability runner: one observed run -> one :class:`RunReport`.

:func:`observe` is the orchestration behind ``python -m repro.obs``: it
builds a registered predictor, generates (or accepts) a workload trace,
assembles the standard metric probes into a
:class:`~repro.obs.probes.ProbeSet`, runs the simulation with per-phase
timing spans, and returns a fully-populated
:class:`~repro.obs.report.RunReport`.

It is also the library entry point — notebooks and experiment scripts
can call it directly, pass extra custom probes, or hand it a pre-built
trace to skip workload generation.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Union

from ..predictors.registry import make_predictor
from ..sim.engine import ContextSwitchConfig, simulate
from ..trace.events import Trace
from ..workloads.suite import get_workload
from .export import EventTraceProbe
from .metrics import (
    DEFAULT_INTERVAL_INSTRUCTIONS,
    IntervalSeriesProbe,
    StreakHistogramProbe,
    TableStatsProbe,
    TopOffendersProbe,
    WarmupCurveProbe,
)
from .probes import Probe, ProbeSet
from .profile import PhaseTimer, TimingPredictor, run_cprofile
from .report import RunReport

__all__ = ["normalize_scheme", "observe"]

#: Bare scheme names accepted as shorthand for their 12-bit-history
#: registry form — ``GAg`` means ``gag-12`` etc., mirroring the paper's
#: headline configurations.
_BARE_SCHEMES = ("gag", "pag", "pap", "gap", "gshare", "gsg", "psg")


def normalize_scheme(name: str) -> str:
    """Canonicalise a scheme name for :func:`make_predictor`.

    Bare family names (``"GAg"``, ``"pag"``) become their 12-bit
    default (``"gag-12"``, ``"pag-12"``); everything else is passed
    through lower-cased, except Table 3 configuration strings (which
    contain ``(`` and are case-significant).
    """
    text = name.strip()
    if "(" in text:
        return text
    lowered = text.lower()
    if lowered in _BARE_SCHEMES:
        return f"{lowered}-12"
    return lowered


def observe(
    scheme: str,
    workload: Optional[str] = None,
    scale: int = 1,
    trace: Optional[Trace] = None,
    training_trace: Optional[Trace] = None,
    train: Optional[bool] = None,
    context_switches: Optional[ContextSwitchConfig] = None,
    interval_instructions: Optional[int] = DEFAULT_INTERVAL_INSTRUCTIONS,
    top_k: int = 10,
    warmup_window_branches: int = 256,
    warmup_max_windows: int = 32,
    profile_phases: bool = False,
    with_cprofile: bool = False,
    events_path: Optional[Union[str, Path]] = None,
    events_sample_every: int = 1,
    events_branch_limit: Optional[int] = None,
    extra_probes: Iterable[Probe] = (),
    characterize: bool = False,
    characterize_max_k: Optional[int] = None,
) -> RunReport:
    """Run ``scheme`` on ``workload`` with the full metric probe set.

    Args:
        scheme: friendly registry name (bare family names are
            normalised: ``"GAg"`` -> ``"gag-12"``) or a Table 3 string.
        workload: benchmark name (one of the nine suite workloads);
            ignored when ``trace`` is given.
        scale: workload generation scale (ignored with ``trace``).
        trace: pre-built testing trace, bypassing workload generation.
        training_trace: explicit training trace for training-dependent
            schemes (``gsg``/``psg``/``profile``).
        train: force (``True``) or suppress (``False``) generation of
            the workload's training trace; ``None`` generates it only
            when the workload has one and no explicit ``training_trace``
            was given.
        context_switches: the paper's context-switch model, when given.
        interval_instructions: interval-series window; ``None`` disables
            the series.
        top_k: offender-table size.
        warmup_window_branches / warmup_max_windows: warm-up curve
            resolution.
        profile_phases: additionally time every ``predict``/``update``
            call through a :class:`~repro.obs.profile.TimingPredictor`
            (adds real overhead; the simulation *result* is unchanged).
        with_cprofile: capture a cProfile table of the simulate phase.
        events_path: when given, stream a JSONL event trace there.
        events_sample_every / events_branch_limit: branch-event thinning
            for the event trace.
        extra_probes: additional user probes joined into the set.
        characterize: additionally run the predictability
            characterization engine
            (:func:`repro.analysis.predictability.characterize`) on
            the test trace — with the observed scheme as the only
            attribution replay — and embed its serialised report under
            ``report.extra["characterization"]``.
        characterize_max_k: history depth K of the characterization
            curves (default
            :data:`repro.analysis.predictability.DEFAULT_MAX_K`).

    Returns:
        The populated :class:`RunReport`. ``report.result`` is
        bit-identical to an unobserved ``simulate`` of the same inputs.
    """
    timer = PhaseTimer()
    scheme_name = normalize_scheme(scheme)

    if trace is None:
        if workload is None:
            raise ValueError("either a workload name or a trace is required")
        bench = get_workload(workload)
        with timer.span("trace_load"):
            test_trace = bench.generate("testing", scale=scale)
            if training_trace is None and train is not False and bench.has_training:
                training_trace = bench.generate("training", scale=scale)
        workload_name = workload
    else:
        test_trace = trace
        workload_name = workload or trace.meta.name

    with timer.span("build"):
        predictor = make_predictor(scheme_name, training_trace)

    intervals = (
        IntervalSeriesProbe(interval_instructions)
        if interval_instructions
        else None
    )
    streaks = StreakHistogramProbe()
    offenders = TopOffendersProbe(k=top_k)
    warmup = WarmupCurveProbe(
        window_branches=warmup_window_branches, max_windows=warmup_max_windows
    )
    tables = TableStatsProbe()
    events = (
        EventTraceProbe(
            events_path,
            sample_every=events_sample_every,
            branch_limit=events_branch_limit,
        )
        if events_path is not None
        else None
    )

    probe_set = ProbeSet()
    for member in (intervals, streaks, offenders, warmup, tables, events):
        if member is not None:
            probe_set.add(member)
    for member in extra_probes:
        probe_set.add(member)

    target = TimingPredictor(predictor, timer) if profile_phases else predictor

    profile_text: Optional[str] = None
    if with_cprofile:
        with timer.span("simulate"):
            result, profile_text = run_cprofile(
                lambda: simulate(
                    target, test_trace, context_switches=context_switches, probe=probe_set
                )
            )
    else:
        with timer.span("simulate"):
            result = simulate(
                target, test_trace, context_switches=context_switches, probe=probe_set
            )

    extra: dict = {}
    if characterize:
        from ..analysis.predictability import DEFAULT_MAX_K
        from ..analysis.predictability import characterize as run_characterize

        with timer.span("characterize"):
            char_report = run_characterize(
                test_trace,
                max_k=(
                    characterize_max_k
                    if characterize_max_k is not None
                    else DEFAULT_MAX_K
                ),
                schemes=(scheme_name,),
                training_trace=training_trace,
                context_switches=context_switches,
            )
        extra["characterization"] = char_report.to_dict()

    return RunReport(
        scheme=scheme_name,
        workload=workload_name,
        dataset=test_trace.meta.dataset,
        result=result,
        interval_instructions=interval_instructions,
        intervals=intervals.points if intervals is not None else [],
        streaks=streaks.as_dict(),
        offenders=offenders.table(),
        warmup=warmup.curve(),
        warmup_segments=warmup.segments,
        tables=tables.snapshot,
        timing=timer.as_dict(),
        cprofile=profile_text,
        events_path=str(events.path) if events is not None else None,
        extra=extra,
    )
