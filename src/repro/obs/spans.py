"""Hierarchical span tracing across processes (sweep -> cell -> phase).

Phase *totals* (PR 3's :class:`~repro.obs.profile.PhaseTimer`, the
per-cell breakdowns in :class:`~repro.sim.results.RunTelemetry`) say how
much time a phase cost; they cannot say *when* it ran, on *which
worker*, or what it overlapped with. This module records that missing
dimension as **spans** — named, nested intervals on the shared
monotonic timeline — and exports them in the Chrome trace-event JSON
format, so a whole parallel sweep loads directly into Perfetto
(https://ui.perfetto.dev) with one track per worker process.

The pieces:

* :class:`Span` — one completed interval: name, category, start
  (``ts``) and duration (``dur``) in **microseconds on the
  ``time.perf_counter`` timeline**, producer ``pid``/``tid``, a
  per-recorder ``span_id`` and the ``parent_id`` linking it into the
  tree, plus free-form JSON ``args``. ``perf_counter`` reads
  ``CLOCK_MONOTONIC``, which forked children share, so parent and
  worker spans are directly comparable on the platforms the parallel
  runner forks on (and merely mutually ordered elsewhere).
* :class:`SpanRecorder` — the per-process recorder: a stack for
  nesting (``span`` context manager or explicit ``push``/``pop``) plus
  :meth:`~SpanRecorder.record` for retroactive spans built from
  timestamps measured elsewhere (the parallel runner reuses its
  existing phase clock reads, so span totals equal the telemetry phase
  times *exactly*).
* ``enable`` / ``disable`` / ``get_recorder`` — the process-wide
  current recorder. Emission sites (the engine, the kernels' stream
  loop, the parallel runner) fetch it once per run; when no recorder
  is enabled they skip all span work, the same zero-overhead-when-off
  discipline as the PR 3 probes (pinned in
  ``benchmarks/test_bench_spans.py``).
* :class:`SpanCollector` — the parent-side aggregator for sweeps:
  workers drain their recorder at cell end and ship the spans through
  the existing heartbeat manager queue as plain tuples
  (:func:`to_wire` / :func:`from_wire`); a crashed worker simply never
  ships, which loses its spans but never corrupts the sweep trace.
* :func:`to_chrome_trace` / :func:`spans_from_chrome` /
  :func:`validate_chrome_trace` — conversion to and from the Chrome
  trace-event JSON object form (``{"traceEvents": [...]}``) with a
  structural validator (used by CI to gate the exported artifact).
  Because ``ts``/``dur`` are stored in microseconds natively, the
  conversion is exact: ``spans_from_chrome(to_chrome_trace(s)) == s``.
* :func:`build_span_tree` / :func:`validate_span_tree` /
  :func:`span_totals` / :func:`cell_phase_totals` — tree assembly and
  integrity checks (parent resolution, containment, monotone clocks)
  and the per-cell per-phase aggregation the acceptance tests compare
  against :class:`~repro.sim.results.CellTelemetry`.

All clocks here are ``time.perf_counter`` — telemetry only, never an
input to a simulation result (the determinism lint's standing
allowance).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "SPANS_SCHEMA",
    "Span",
    "SpanCollector",
    "SpanRecorder",
    "build_span_tree",
    "cell_phase_totals",
    "cell_span_summaries",
    "disable",
    "enable",
    "from_wire",
    "get_recorder",
    "recording",
    "span_totals",
    "spans_from_chrome",
    "summarize_spans",
    "to_chrome_trace",
    "to_wire",
    "validate_chrome_trace",
    "validate_span_tree",
]

#: Schema identifier of the native span serialisation (JSONL lines and
#: the ``otherData`` stamp of exported Chrome traces).
SPANS_SCHEMA = "repro.obs.spans/1"

#: Args keys the Chrome exporter claims for tree linkage; user args may
#: not collide with them (enforced by :meth:`SpanRecorder._open`).
_RESERVED_ARGS = ("span_id", "parent_id")


@dataclass(frozen=True)
class Span:
    """One completed interval on the shared monotonic timeline.

    Attributes:
        name: what ran (``"cell"``, ``"simulate"``, ``"kernel"``, ...).
        cat: grouping category (``"sweep"``, ``"phase"``, ``"engine"``).
        ts: start, in microseconds of the ``perf_counter`` timeline.
        dur: duration in microseconds (never negative).
        pid: producer process id (one Perfetto track group per pid).
        tid: producer thread id within the pid (1 for the runners here,
            which are single-threaded per process).
        span_id: recorder-local id, unique within ``(pid, tid)``.
        parent_id: enclosing span's ``span_id`` (same recorder), or
            ``None`` for a root.
        args: free-form JSON-compatible payload (scheme, benchmark,
            backend, record counts, resource readings, ...).
    """

    name: str
    cat: str
    ts: float
    dur: float
    pid: int
    tid: int
    span_id: int
    parent_id: Optional[int] = None
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        """End of the interval, microseconds (``ts + dur``)."""
        return self.ts + self.dur

    @property
    def seconds(self) -> float:
        """Duration in seconds (the ledger/telemetry unit)."""
        return self.dur / 1e6

    @property
    def key(self) -> Tuple[int, int, int]:
        """Globally-unique identity: ``(pid, tid, span_id)``."""
        return (self.pid, self.tid, self.span_id)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible dict (native JSONL line payload)."""
        return {
            "schema": SPANS_SCHEMA,
            "name": self.name,
            "cat": self.cat,
            "ts": self.ts,
            "dur": self.dur,
            "pid": self.pid,
            "tid": self.tid,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Span":
        """Reconstruct a span serialised by :meth:`to_dict` exactly."""
        schema = str(payload.get("schema", SPANS_SCHEMA))
        if not schema.startswith("repro.obs.spans/"):
            raise ValueError(f"not a span record (schema={schema!r})")
        parent = payload.get("parent_id")
        return cls(
            name=payload["name"],
            cat=payload.get("cat", ""),
            ts=float(payload["ts"]),
            dur=float(payload["dur"]),
            pid=int(payload["pid"]),
            tid=int(payload.get("tid", 1)),
            span_id=int(payload["span_id"]),
            parent_id=None if parent is None else int(parent),
            args=dict(payload.get("args", {})),
        )


#: Wire form of one span: a plain tuple, so worker processes can ship
#: spans through a multiprocessing manager queue without the receiving
#: side needing anything beyond this module.
_Wire = Tuple[str, str, float, float, int, int, int, Optional[int], Dict[str, Any]]


def to_wire(spans: Sequence[Span]) -> List[_Wire]:
    """Flatten spans to plain picklable tuples for the heartbeat queue."""
    return [
        (s.name, s.cat, s.ts, s.dur, s.pid, s.tid, s.span_id, s.parent_id, dict(s.args))
        for s in spans
    ]


def from_wire(wire: Sequence[_Wire]) -> List[Span]:
    """Inverse of :func:`to_wire`; tolerant of nothing — wire tuples are
    produced only by this module, so shape errors raise loudly."""
    return [
        Span(name=w[0], cat=w[1], ts=float(w[2]), dur=float(w[3]), pid=int(w[4]),
             tid=int(w[5]), span_id=int(w[6]),
             parent_id=None if w[7] is None else int(w[7]), args=dict(w[8]))
        for w in wire
    ]


class _OpenSpan:
    """Mutable in-flight span (internal to :class:`SpanRecorder`)."""

    __slots__ = ("name", "cat", "ts", "span_id", "parent_id", "args")

    def __init__(self, name: str, cat: str, ts: float, span_id: int,
                 parent_id: Optional[int], args: Dict[str, Any]) -> None:
        self.name = name
        self.cat = cat
        self.ts = ts
        self.span_id = span_id
        self.parent_id = parent_id
        self.args = args


class SpanRecorder:
    """Per-process span recorder with a nesting stack.

    Single-threaded by contract, like every runner in this repo: one
    recorder per process, driven from that process's main thread. The
    clock is injectable (any zero-arg float-seconds callable) so tests
    are deterministic; the default is the monotonic
    ``time.perf_counter``, whose timeline forked workers share.

    Three recording styles compose freely:

    * ``with recorder.span("simulate", cat="phase"):`` — measure a
      block, nested under whatever is currently open;
    * ``recorder.push(...)`` / ``recorder.pop(...)`` — the same without
      re-indenting existing code (the engine's loops use this);
    * ``recorder.record(name, start=a, end=b)`` — a retroactive span
      from clock readings taken elsewhere, so existing telemetry
      measurements can double as spans without a second clock read.

    ``push``/``record`` accept explicit ``start``/``end`` **seconds**
    on the ``perf_counter`` timeline (the unit the surrounding code
    already measures in); stored spans use microseconds (the Chrome
    unit).
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        pid: Optional[int] = None,
        tid: int = 1,
    ) -> None:
        self._clock = clock
        self.pid = os.getpid() if pid is None else pid
        self.tid = tid
        self._next_id = 1
        self._stack: List[_OpenSpan] = []
        self._spans: List[Span] = []

    # -- recording -----------------------------------------------------

    def _open(self, name: str, cat: str, ts: float, args: Dict[str, Any]) -> _OpenSpan:
        for reserved in _RESERVED_ARGS:
            if reserved in args:
                raise ValueError(f"span arg {reserved!r} is reserved for tree linkage")
        parent_id = self._stack[-1].span_id if self._stack else None
        span = _OpenSpan(name, cat, ts, self._next_id, parent_id, args)
        self._next_id += 1
        return span

    def push(self, name: str, cat: str = "", start: Optional[float] = None,
             **args: Any) -> int:
        """Open a nested span; returns its ``span_id``.

        Args:
            start: explicit start in *seconds* on the recorder's clock
                timeline (``None`` reads the clock now).
        """
        ts = (self._clock() if start is None else start) * 1e6
        span = self._open(name, cat, ts, args)
        self._stack.append(span)
        return span.span_id

    def pop(self, end: Optional[float] = None, **extra_args: Any) -> Span:
        """Close the innermost open span (optionally at an explicit
        ``end`` in seconds), merging ``extra_args`` into its args."""
        if not self._stack:
            raise RuntimeError("pop() with no open span")
        open_span = self._stack.pop()
        end_ts = (self._clock() if end is None else end) * 1e6
        open_span.args.update(extra_args)
        span = Span(
            name=open_span.name,
            cat=open_span.cat,
            ts=open_span.ts,
            dur=max(end_ts - open_span.ts, 0.0),
            pid=self.pid,
            tid=self.tid,
            span_id=open_span.span_id,
            parent_id=open_span.parent_id,
            args=open_span.args,
        )
        self._spans.append(span)
        return span

    def pop_if_open(self, span_id: int, end: Optional[float] = None,
                    **extra_args: Any) -> Optional[Span]:
        """Close ``span_id`` iff it is the innermost open span.

        A no-op (returning ``None``) otherwise — this is the cleanup
        form for generator finalizers, which on exception paths may run
        long after the stack has moved on; a stale id must never pop
        someone else's span.
        """
        if self._stack and self._stack[-1].span_id == span_id:
            return self.pop(end=end, **extra_args)
        return None

    def pop_through(self, span_id: int, end: Optional[float] = None,
                    **extra_args: Any) -> Optional[Span]:
        """Close open spans up to and including ``span_id``.

        Children abandoned open by an exception path close with the
        same end time; ``extra_args`` land on the target span only.
        A no-op (returning ``None``) when ``span_id`` is not open —
        telemetry cleanup must never raise over a propagating error.
        """
        if all(open_span.span_id != span_id for open_span in self._stack):
            return None
        while True:
            is_target = self._stack[-1].span_id == span_id
            span = self.pop(end=end, **(extra_args if is_target else {}))
            if is_target:
                return span

    @contextmanager
    def span(self, name: str, cat: str = "", **args: Any) -> Iterator[None]:
        """Context-manager form of :meth:`push`/:meth:`pop`."""
        span_id = self.push(name, cat=cat, **args)
        try:
            yield
        finally:
            self.pop_through(span_id)

    def record(self, name: str, cat: str = "", *, start: float, end: float,
               **args: Any) -> Span:
        """Record a completed span from clock readings taken elsewhere.

        ``start``/``end`` are *seconds* on the recorder's clock
        timeline; the span nests under the currently-open span (if
        any). This is how the parallel runner turns its existing phase
        measurements into spans without re-reading the clock — which is
        what makes span totals agree with the telemetry phase times
        exactly, not just approximately.
        """
        open_span = self._open(name, cat, start * 1e6, args)
        span = Span(
            name=open_span.name,
            cat=open_span.cat,
            ts=open_span.ts,
            dur=max(end * 1e6 - open_span.ts, 0.0),
            pid=self.pid,
            tid=self.tid,
            span_id=open_span.span_id,
            parent_id=open_span.parent_id,
            args=open_span.args,
        )
        self._spans.append(span)
        return span

    # -- reading -------------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of currently-open (unpopped) spans."""
        return len(self._stack)

    @property
    def spans(self) -> List[Span]:
        """Completed spans, completion order (children before parents)."""
        return list(self._spans)

    def drain(self) -> List[Span]:
        """Return completed spans and clear the buffer (open spans stay
        open — a worker drains between cells, never mid-cell)."""
        drained = self._spans
        self._spans = []
        return drained


# ----------------------------------------------------------------------
# The process-wide current recorder (the engine's emission hook)
# ----------------------------------------------------------------------

_ACTIVE: Optional[SpanRecorder] = None


def enable(recorder: SpanRecorder) -> SpanRecorder:
    """Install ``recorder`` as the process's current recorder.

    Emission sites (:func:`repro.sim.engine.simulate_with_backend`, the
    kernels' stream loop, :func:`repro.trace.stream.open_trace_source`)
    consult :func:`get_recorder` once per run; with no recorder enabled
    they do no span work at all. Enabling is not reentrant by design —
    one recorder per process, mirroring one heartbeat queue per sweep.
    """
    global _ACTIVE
    _ACTIVE = recorder
    return recorder


def disable() -> None:
    """Remove the current recorder (emission sites go back to no-ops)."""
    global _ACTIVE
    _ACTIVE = None


def get_recorder() -> Optional[SpanRecorder]:
    """The process's current recorder, or ``None`` when tracing is off."""
    return _ACTIVE


@contextmanager
def recording(recorder: Optional[SpanRecorder] = None) -> Iterator[SpanRecorder]:
    """Enable a recorder for a ``with`` block (fresh one by default)."""
    active = enable(recorder if recorder is not None else SpanRecorder())
    try:
        yield active
    finally:
        disable()


# ----------------------------------------------------------------------
# Parent-side collection
# ----------------------------------------------------------------------


class SpanCollector:
    """Aggregates spans from the parent recorder and worker wire batches.

    Fed by :func:`repro.sim.parallel.execute_matrix` while it drains the
    heartbeat queue. Loss-tolerant by construction: each worker ships
    its cell's spans as one wire batch *after* the cell completes, so a
    crashed worker contributes nothing rather than a torn batch, and the
    collected trace always validates (:func:`validate_span_tree` treats
    every batch independently).
    """

    def __init__(self) -> None:
        self._spans: List[Span] = []
        self.batches = 0

    def ingest(self, spans: Sequence[Span]) -> None:
        """Add completed spans (parent-side recorder drains)."""
        self._spans.extend(spans)
        self.batches += 1

    def ingest_wire(self, wire: Sequence[_Wire]) -> None:
        """Add one worker's shipped batch; a malformed batch is dropped
        whole (never partially), keeping the sweep trace coherent."""
        try:
            spans = from_wire(wire)
        except Exception:
            return
        self._spans.extend(spans)
        self.batches += 1

    @property
    def spans(self) -> List[Span]:
        """Everything collected so far, ingestion order."""
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)


# ----------------------------------------------------------------------
# Tree assembly, integrity checking, aggregation
# ----------------------------------------------------------------------


def build_span_tree(
    spans: Sequence[Span],
) -> Tuple[List[Span], Dict[Tuple[int, int, int], List[Span]]]:
    """Assemble ``(roots, children-by-parent-key)`` from a flat list.

    Parent links only ever point within one recorder (same pid/tid), so
    the child map is keyed by the parent's :attr:`Span.key`. A span
    whose parent is missing (its batch was lost with a crashed worker)
    is treated as a root rather than an error — loss tolerance again.
    """
    by_key = {span.key: span for span in spans}
    children: Dict[Tuple[int, int, int], List[Span]] = {}
    roots: List[Span] = []
    for span in spans:
        if span.parent_id is None:
            roots.append(span)
            continue
        parent_key = (span.pid, span.tid, span.parent_id)
        if parent_key in by_key:
            children.setdefault(parent_key, []).append(span)
        else:
            roots.append(span)
    return roots, children


def validate_span_tree(spans: Sequence[Span]) -> List[str]:
    """Structural integrity check; returns problems (empty = valid).

    Checks: unique ``(pid, tid, span_id)`` identities, non-negative
    durations, self-parenting, and containment — every child interval
    must lie within its parent's (small float tolerance: parents and
    children may close on the same clock reading).
    """
    problems: List[str] = []
    seen: Dict[Tuple[int, int, int], Span] = {}
    for span in spans:
        if span.key in seen:
            problems.append(f"duplicate span identity {span.key} ({span.name})")
        seen[span.key] = span
        if span.dur < 0:
            problems.append(f"negative duration on {span.name} {span.key}")
        if span.parent_id == span.span_id:
            problems.append(f"span {span.name} {span.key} is its own parent")
    tolerance = 0.5  # µs — adjacent clock reads, not real overlap
    for span in spans:
        if span.parent_id is None:
            continue
        parent = seen.get((span.pid, span.tid, span.parent_id))
        if parent is None:
            continue  # lost batch: treated as a root, not an error
        if span.ts < parent.ts - tolerance or span.end > parent.end + tolerance:
            problems.append(
                f"child {span.name} {span.key} [{span.ts:.1f}, {span.end:.1f}] "
                f"escapes parent {parent.name} [{parent.ts:.1f}, {parent.end:.1f}]"
            )
    return problems


def span_totals(spans: Sequence[Span]) -> Dict[str, Dict[str, float]]:
    """Aggregate ``name -> {"seconds", "count"}`` over a span list."""
    totals: Dict[str, Dict[str, float]] = {}
    for span in spans:
        bucket = totals.setdefault(span.name, {"seconds": 0.0, "count": 0})
        bucket["seconds"] += span.seconds
        bucket["count"] += 1
    return totals


def summarize_spans(spans: Sequence[Span]) -> Dict[str, Any]:
    """The compact summary embedded in ledger entries (``extra["spans"]``).

    Per-name totals plus the overall span count — enough for
    :func:`repro.obs.ledger.regress` readers and ``repro-obs history``
    consumers without dragging the full trace into the ledger.
    """
    return {"count": len(spans), "by_name": span_totals(spans)}


def cell_span_summaries(
    spans: Sequence[Span],
) -> Dict[Tuple[str, str], Dict[str, Any]]:
    """Per-cell span summaries: ``(scheme, benchmark) -> summary``.

    Each summary is :func:`summarize_spans` over the cell span's whole
    subtree (the cell itself, its phase children, and any engine spans
    nested below them) — the payload
    :func:`repro.obs.ledger.entries_from_matrix` embeds as
    ``extra["spans"]`` on matrix ledger entries.
    """
    _roots, children = build_span_tree(spans)
    summaries: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for span in spans:
        if span.name != "cell":
            continue
        scheme = span.args.get("scheme")
        benchmark = span.args.get("benchmark")
        if scheme is None or benchmark is None:
            continue
        subtree: List[Span] = []
        frontier = [span]
        while frontier:
            node = frontier.pop()
            subtree.append(node)
            frontier.extend(children.get(node.key, ()))
        summaries[(str(scheme), str(benchmark))] = summarize_spans(subtree)
    return summaries


def cell_phase_totals(
    spans: Sequence[Span],
) -> Dict[Tuple[str, str], Dict[str, float]]:
    """Per-cell per-phase seconds: ``(scheme, benchmark) -> name -> s``.

    A *cell* span is any span named ``"cell"`` carrying ``scheme`` and
    ``benchmark`` args (the parallel runner emits exactly one per
    evaluated cell); its phase children (``trace_load`` / ``build`` /
    ``simulate`` / ``cache_lookup``) are summed per name. This is the
    aggregation the acceptance tests compare against
    :attr:`repro.sim.results.CellTelemetry.phases` — equality is exact
    because both views are computed from the same clock readings.
    """
    _roots, children = build_span_tree(spans)
    totals: Dict[Tuple[str, str], Dict[str, float]] = {}
    for span in spans:
        if span.name != "cell":
            continue
        scheme = span.args.get("scheme")
        benchmark = span.args.get("benchmark")
        if scheme is None or benchmark is None:
            continue
        bucket = totals.setdefault((str(scheme), str(benchmark)), {})
        for child in children.get(span.key, ()):
            bucket[child.name] = bucket.get(child.name, 0.0) + child.seconds
    return totals


# ----------------------------------------------------------------------
# Chrome trace-event JSON (Perfetto) conversion
# ----------------------------------------------------------------------


def to_chrome_trace(
    spans: Sequence[Span],
    counters: Sequence[Mapping[str, Any]] = (),
    label: str = "repro sweep",
) -> Dict[str, Any]:
    """Render spans as a Chrome trace-event JSON object.

    The output loads directly in Perfetto / ``chrome://tracing``: one
    complete (``"ph": "X"``) event per span with tree linkage kept in
    ``args`` (``span_id`` / ``parent_id``), one ``process_name``
    metadata event per producer pid, plus any pre-built counter events
    (``"ph": "C"`` — see
    :func:`repro.obs.resources.counters_from_spans`). Spans store
    microseconds natively, so the conversion is lossless and
    :func:`spans_from_chrome` inverts it exactly.
    """
    events: List[Dict[str, Any]] = []
    pids = sorted({span.pid for span in spans})
    for pid in pids:
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"worker-{pid}"},
            }
        )
    for span in spans:
        args = dict(span.args)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.cat,
                "ts": span.ts,
                "dur": span.dur,
                "pid": span.pid,
                "tid": span.tid,
                "args": args,
            }
        )
    events.extend(dict(counter) for counter in counters)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": SPANS_SCHEMA, "label": label},
    }


def spans_from_chrome(payload: Mapping[str, Any]) -> List[Span]:
    """Exact inverse of :func:`to_chrome_trace` for the span events.

    Metadata (``M``) and counter (``C``) events are skipped; every
    complete (``X``) event becomes a :class:`Span` with ``span_id`` /
    ``parent_id`` lifted back out of ``args``. Round trip is exact:
    ``ts``/``dur`` travel as the same floats in both directions.
    """
    spans: List[Span] = []
    for event in payload.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        span_id = int(args.pop("span_id"))
        parent = args.pop("parent_id", None)
        spans.append(
            Span(
                name=event["name"],
                cat=event.get("cat", ""),
                ts=float(event["ts"]),
                dur=float(event["dur"]),
                pid=int(event["pid"]),
                tid=int(event.get("tid", 1)),
                span_id=span_id,
                parent_id=None if parent is None else int(parent),
                args=args,
            )
        )
    return spans


def validate_chrome_trace(payload: Any) -> List[str]:
    """Structural validation of a Chrome trace-event JSON object.

    Returns a list of problems (empty = valid). This is the schema gate
    CI runs over the exported sweep trace: object form with a
    ``traceEvents`` list; every event a dict with a string ``ph``;
    ``X`` events additionally need a string ``name``, finite numeric
    ``ts`` and non-negative ``dur``, integer ``pid``/``tid`` and (when
    present) a dict ``args``; ``C`` counter events need ``name``,
    ``ts``, ``pid`` and numeric-valued ``args``; ``M`` metadata events
    need a ``name``.
    """
    problems: List[str] = []
    if not isinstance(payload, Mapping):
        return ["top level is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, Mapping):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            problems.append(f"{where}: missing phase 'ph'")
            continue
        if ph in ("X", "C", "M") and not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing string 'name'")
        if ph in ("X", "C"):
            for key in ("ts",) + (("dur",) if ph == "X" else ()):
                value = event.get(key)
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    problems.append(f"{where}: missing numeric {key!r}")
                elif value < 0:
                    problems.append(f"{where}: negative {key!r}")
            if not isinstance(event.get("pid"), int):
                problems.append(f"{where}: missing integer 'pid'")
        if ph == "X":
            if not isinstance(event.get("tid"), int):
                problems.append(f"{where}: missing integer 'tid'")
            if "args" in event and not isinstance(event["args"], Mapping):
                problems.append(f"{where}: 'args' is not an object")
        if ph == "C":
            args = event.get("args")
            if not isinstance(args, Mapping) or not args:
                problems.append(f"{where}: counter needs a non-empty 'args' object")
            elif any(
                not isinstance(v, (int, float)) or isinstance(v, bool)
                for v in args.values()
            ):
                problems.append(f"{where}: counter args must be numeric")
    return problems
