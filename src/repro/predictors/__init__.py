"""Comparison predictors and the common predictor interface.

``registry`` members are loaded lazily (PEP 562) because the registry
pulls in the two-level predictor classes, which themselves implement the
:class:`BranchPredictor` interface defined here — eager loading would be
circular.
"""

from .base import (
    BranchPredictor,
    CountingPredictor,
    PredictorFactory,
    TrainingUnavailable,
    factory_table,
)
from .btb import BTBPredictor, btb_a2, btb_last_time
from .extensions import GselectPredictor, TournamentPredictor, tournament_pag_gshare
from .static import (
    BTFN,
    AlwaysNotTaken,
    AlwaysTaken,
    ProfileGuided,
    profile_directions,
)

_REGISTRY_EXPORTS = (
    "AUTOMATON_NAMES",
    "figure11_factories",
    "make_predictor",
    "paper_table3_specs",
)

__all__ = [
    "AlwaysNotTaken",
    "AlwaysTaken",
    "BTBPredictor",
    "BTFN",
    "BranchPredictor",
    "GselectPredictor",
    "TournamentPredictor",
    "CountingPredictor",
    "PredictorFactory",
    "ProfileGuided",
    "TrainingUnavailable",
    "btb_a2",
    "btb_last_time",
    "factory_table",
    "profile_directions",
    "tournament_pag_gshare",
    *_REGISTRY_EXPORTS,
]


def __getattr__(name: str):
    if name in _REGISTRY_EXPORTS:
        from . import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
