"""The branch-predictor interface shared by every scheme in the study.

The simulation engine drives predictors through exactly three calls per
conditional branch plus a context-switch hook:

1. ``predict(pc, target)`` — the direction guess, made before the
   outcome is known.
2. ``update(pc, taken, target)`` — called after the branch resolves.
3. ``on_context_switch()`` — flush volatile per-process state (the
   branch history table); pattern history tables survive, as in the
   paper's §5.1.4.

``target`` is carried because one static scheme (BTFN) predicts from the
branch direction in the code layout (backward taken, forward not taken);
dynamic schemes ignore it.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict


class BranchPredictor(abc.ABC):
    """Abstract conditional-branch direction predictor."""

    #: Human-readable scheme name, e.g. ``"PAg(BHT(512,4,12-sr),1xPHT(2^12,A2))"``.
    name: str = "predictor"

    @abc.abstractmethod
    def predict(self, pc: int, target: int = 0) -> bool:
        """Predict the direction of the branch at ``pc``."""

    @abc.abstractmethod
    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        """Inform the predictor of the resolved outcome."""

    def on_context_switch(self) -> None:
        """Flush per-process volatile state. Default: stateless, no-op."""

    def reset(self) -> None:
        """Return to the power-on state. Default: context-switch flush."""
        self.on_context_switch()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class TrainingUnavailable(RuntimeError):
    """Raised by a predictor builder when it needs a training trace that
    the benchmark does not provide.

    The experiment runner treats this as "leave the cell blank", which
    is exactly what the paper does for GSg/PSg/Profile on benchmarks
    whose Table 2 training dataset is "NA".
    """


PredictorFactory = Callable[[], BranchPredictor]
"""Zero-argument callable producing a fresh predictor instance.

The experiment runner instantiates one predictor per (scheme, trace)
pair from factories so state never leaks between benchmarks.
"""


class CountingPredictor(BranchPredictor):
    """Mixin-style base that tracks prediction/update call counts.

    Useful for tests asserting engine discipline (every predict is
    followed by exactly one update).
    """

    def __init__(self) -> None:
        self.predict_calls = 0
        self.update_calls = 0

    def _count_predict(self) -> None:
        self.predict_calls += 1

    def _count_update(self) -> None:
        self.update_calls += 1


def factory_table(**factories: PredictorFactory) -> Dict[str, PredictorFactory]:
    """Convenience: build a name -> factory mapping with keyword syntax."""
    return dict(factories)
