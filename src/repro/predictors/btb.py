"""Branch Target Buffer designs (J. Smith [17], as simulated in the paper).

A BTB-style predictor keeps one prediction automaton *per branch* in a
tagged table — there is no pattern level. The paper simulates a
512-entry four-way table with the A2 saturating counter and with
Last-Time; both appear in Figure 11 (~93 % and ~89 % respectively).

On a table miss a new entry is allocated in the automaton's initial
(taken-leaning) state, matching the taken-biased initialisation used
throughout the study. Context switches flush the table.
"""

from __future__ import annotations

from typing import Optional

from ..core.automata import A2, LAST_TIME, AutomatonSpec
from ..core.history import make_bht
from .base import BranchPredictor


class BTBPredictor(BranchPredictor):
    """Per-branch automaton in a set-associative tagged table."""

    def __init__(
        self,
        num_entries: int = 512,
        associativity: int = 4,
        automaton: AutomatonSpec = A2,
        name: Optional[str] = None,
    ) -> None:
        self.automaton = automaton
        self.bht = make_bht(
            num_entries,
            associativity,
            init_value=automaton.initial_state,
        )
        if name is not None:
            self.name = name
        else:
            size = "inf" if num_entries is None else str(num_entries)
            self.name = f"BTB(BHT({size},{associativity},{automaton.name}),,)"

    def predict(self, pc: int, target: int = 0) -> bool:
        # Pure read: a miss would allocate the automaton's initial
        # (taken-leaning) state, so predict from it without allocating.
        entry = self.bht.peek(pc)
        state = entry.value if entry is not None else self.automaton.initial_state
        return self.automaton.predict(state)

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        entry, _hit = self.bht.access(pc)
        entry.value = self.automaton.next_state(entry.value, taken)
        entry.fresh = False

    def on_context_switch(self) -> None:
        self.bht.flush()


def btb_a2(num_entries: int = 512, associativity: int = 4) -> BTBPredictor:
    """The paper's ``BTB(BHT(512,4,A2))`` — 2-bit counters per branch."""
    return BTBPredictor(num_entries, associativity, A2)


def btb_last_time(num_entries: int = 512, associativity: int = 4) -> BTBPredictor:
    """The paper's ``BTB(BHT(512,4,LT))`` — last-outcome per branch."""
    return BTBPredictor(num_entries, associativity, LAST_TIME)
