"""Post-paper predictors (the "future work" the paper anticipates).

The paper ends by saying 97 % "is not good enough" and that the
authors are characterising the remaining misses. The schemes history
actually produced next attack exactly the interference this paper
measures:

* :class:`GselectPredictor` — concatenate low branch-address bits with
  global history to index one table (McFarling's gselect): per-address
  separation *and* global correlation in a single structure.
* :class:`TournamentPredictor` — run two component predictors and let a
  per-branch 2-bit chooser pick whichever has been right more often
  (the Alpha 21264 arrangement). Combines e.g. PAg's per-address
  patterns with GAg's cross-branch correlation.
* :func:`tournament_pag_gshare` — the classic local/global pairing,
  built from this repo's components.

These are extensions beyond the paper, used by the extension bench to
show the headline 2-level results were the *start* of the curve, not
the end.
"""

from __future__ import annotations

from typing import Optional

from ..core.automata import A2, AutomatonSpec
from ..core.history import history_mask
from ..core.pht import PatternHistoryTable
from ..core.twolevel import GsharePredictor, make_pag
from .base import BranchPredictor


class GselectPredictor(BranchPredictor):
    """Concatenated (pc, global history) indexing of one pattern table."""

    def __init__(
        self,
        history_bits: int,
        address_bits: int,
        automaton: AutomatonSpec = A2,
        name: Optional[str] = None,
    ) -> None:
        if history_bits < 1 or address_bits < 1:
            raise ValueError("history_bits and address_bits must be >= 1")
        self.history_bits = history_bits
        self.address_bits = address_bits
        self._history_mask = history_mask(history_bits)
        self._address_mask = history_mask(address_bits)
        self.ghr = self._history_mask
        self.pht = PatternHistoryTable(history_bits + address_bits, automaton)
        self.name = name or f"gselect({address_bits}a+{history_bits}h)"

    def _index(self, pc: int) -> int:
        return ((pc & self._address_mask) << self.history_bits) | self.ghr

    def predict(self, pc: int, target: int = 0) -> bool:
        return self.pht.predict(self._index(pc))

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        self.pht.update(self._index(pc), taken)
        self.ghr = ((self.ghr << 1) | (1 if taken else 0)) & self._history_mask

    def on_context_switch(self) -> None:
        self.ghr = self._history_mask

    def reset(self) -> None:
        self.ghr = self._history_mask
        self.pht.reset()


class TournamentPredictor(BranchPredictor):
    """Two component predictors arbitrated by per-branch 2-bit choosers.

    Chooser state: 0/1 favour the first component, 2/3 the second; it
    moves toward whichever component was correct when they disagree.
    """

    def __init__(
        self,
        first: BranchPredictor,
        second: BranchPredictor,
        chooser_bits: int = 12,
        name: Optional[str] = None,
    ) -> None:
        self.first = first
        self.second = second
        self.chooser_bits = chooser_bits
        self._mask = history_mask(chooser_bits)
        self._choosers = [1] * (1 << chooser_bits)  # weakly favour `first`
        self.name = name or f"tournament({first.name} | {second.name})"
        self.disagreements = 0

    @property
    def chooser_mask(self) -> int:
        """The chooser index mask (read by the vectorized kernel)."""
        return self._mask

    def _chooser_index(self, pc: int) -> int:
        return pc & self._mask

    def predict(self, pc: int, target: int = 0) -> bool:
        first_guess = self.first.predict(pc, target)
        second_guess = self.second.predict(pc, target)
        use_second = self._choosers[self._chooser_index(pc)] >= 2
        return second_guess if use_second else first_guess

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        # Components re-predict for chooser training before updating;
        # component predicts are pure, so the guesses equal predict()'s.
        first_guess = self.first.predict(pc, target)
        second_guess = self.second.predict(pc, target)
        index = self._chooser_index(pc)
        state = self._choosers[index]
        if first_guess != second_guess:
            self.disagreements += 1
            if second_guess == taken:
                self._choosers[index] = min(state + 1, 3)
            else:
                self._choosers[index] = max(state - 1, 0)
        self.first.update(pc, taken, target)
        self.second.update(pc, taken, target)

    def on_context_switch(self) -> None:
        self.first.on_context_switch()
        self.second.on_context_switch()

    def reset(self) -> None:
        self.first.reset()
        self.second.reset()
        self._choosers = [1] * len(self._choosers)
        self.disagreements = 0


def tournament_pag_gshare(
    pag_history_bits: int = 12,
    gshare_history_bits: int = 12,
    chooser_bits: int = 12,
) -> TournamentPredictor:
    """The classic local/global tournament from this repo's parts."""
    return TournamentPredictor(
        make_pag(pag_history_bits),
        GsharePredictor(gshare_history_bits),
        chooser_bits=chooser_bits,
        name=f"tournament(PAg-{pag_history_bits} | gshare-{gshare_history_bits})",
    )
