"""Predictor registry: the paper's Table 3 plus friendly names.

Two entry points:

* :func:`paper_table3_specs` — the configuration rows of Table 3 as
  :class:`~repro.core.naming.SchemeSpec` objects (parameterised by the
  history length ``r``, exactly as the table is).
* :func:`make_predictor` — build any predictor from a friendly name
  (``"pag-12"``, ``"btb-a2"``, ``"always-taken"`` ...) or a full Table 3
  configuration string. Training-dependent schemes (``gsg``, ``psg``,
  ``profile``) require a ``training_trace``.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional

from ..core.automata import A2, PAPER_AUTOMATA, automaton_by_name
from ..core.naming import SchemeParseError, SchemeSpec
from ..core.static_training import GSgPredictor, PSgPredictor
from ..core.twolevel import (
    GAgPredictor,
    GApPredictor,
    GsharePredictor,
    make_pag,
    make_pap,
)
from ..trace.events import Trace
from .base import BranchPredictor
from .btb import btb_a2, btb_last_time
from .static import BTFN, AlwaysNotTaken, AlwaysTaken, ProfileGuided


def paper_table3_specs(history_bits: int = 12, context_switch: bool = False) -> List[SchemeSpec]:
    """The rows of the paper's Table 3 for history length ``r``.

    Returns the sixteen configuration rows (BTB rows have no history-
    length parameter and are included verbatim).
    """
    r = history_bits
    ctx = context_switch
    sr = f"{r}-sr"
    rows: List[SchemeSpec] = [
        SchemeSpec("GAg", "HR", 1, None, sr, 1, r, "A2", ctx),
        SchemeSpec("PAg", "BHT", 256, 1, sr, 1, r, "A2", ctx),
        SchemeSpec("PAg", "BHT", 256, 4, sr, 1, r, "A2", ctx),
        SchemeSpec("PAg", "BHT", 512, 1, sr, 1, r, "A2", ctx),
        SchemeSpec("PAg", "BHT", 512, 4, sr, 1, r, "A1", ctx),
        SchemeSpec("PAg", "BHT", 512, 4, sr, 1, r, "A2", ctx),
        SchemeSpec("PAg", "BHT", 512, 4, sr, 1, r, "A3", ctx),
        SchemeSpec("PAg", "BHT", 512, 4, sr, 1, r, "A4", ctx),
        SchemeSpec("PAg", "BHT", 512, 4, sr, 1, r, "LT", ctx),
        SchemeSpec("PAg", "IBHT", None, None, sr, 1, r, "A2", ctx),
        SchemeSpec("PAp", "BHT", 512, 4, sr, 512, r, "A2", ctx),
        SchemeSpec("GSg", "HR", 1, None, sr, 1, r, "PB", ctx),
        SchemeSpec("PSg", "BHT", 512, 4, sr, 1, r, "PB", ctx),
        SchemeSpec("BTB", "BHT", 512, 4, "A2", None, None, None, ctx),
        SchemeSpec("BTB", "BHT", 512, 4, "LT", None, None, None, ctx),
    ]
    return rows


_FRIENDLY_RE = re.compile(
    r"^(?P<scheme>gag|pag|pap|gap|gshare|gsg|psg)-(?P<bits>\d+)"
    r"(?:-(?P<automaton>lt|a1|a2|a3|a4))?"
    r"(?:-(?P<bht>ideal|\d+x\d+))?$"
)

_PERSET_RE = re.compile(r"^(?P<scheme>sag|sas)-(?P<bits>\d+)x(?P<sets>\d+)$")
_GSELECT_RE = re.compile(r"^gselect-(?P<addr>\d+)\+(?P<hist>\d+)$")


def make_predictor(
    name: str,
    training_trace: Optional[Trace] = None,
) -> BranchPredictor:
    """Build a predictor from a friendly name or a Table 3 string.

    Friendly grammar::

        gag-<k> | gap-<k> | gshare-<k>
        pag-<k>[-<automaton>][-<entries>x<assoc>|-ideal]
        pap-<k>[-<automaton>][-<entries>x<assoc>|-ideal]
        sag-<k>x<sets> | sas-<k>x<sets>
        gselect-<addr>+<hist> | tournament
        gsg-<k> | psg-<k>          (need training_trace)
        btb-a2 | btb-lt
        always-taken | always-not-taken | btfn
        profile                     (needs training_trace)

    Anything containing ``(`` is parsed as a Table 3 configuration
    string instead.
    """
    text = name.strip()
    if "(" in text:
        return SchemeSpec.parse(text).build(training_trace)
    lowered = text.lower()
    if lowered == "always-taken":
        return AlwaysTaken()
    if lowered == "always-not-taken":
        return AlwaysNotTaken()
    if lowered == "btfn":
        return BTFN()
    if lowered == "profile":
        if training_trace is None:
            raise SchemeParseError("profile predictor needs a training trace")
        return ProfileGuided.trained_on(training_trace)
    if lowered == "btb-a2":
        return btb_a2()
    if lowered == "btb-lt":
        return btb_last_time()
    if lowered == "tournament":
        from .extensions import tournament_pag_gshare

        return tournament_pag_gshare()
    perset = _PERSET_RE.match(lowered)
    if perset is not None:
        from ..core.perset import SAgPredictor, SAsPredictor

        cls = SAgPredictor if perset.group("scheme") == "sag" else SAsPredictor
        return cls(int(perset.group("bits")), int(perset.group("sets")))
    gselect = _GSELECT_RE.match(lowered)
    if gselect is not None:
        from .extensions import GselectPredictor

        return GselectPredictor(
            history_bits=int(gselect.group("hist")),
            address_bits=int(gselect.group("addr")),
        )

    match = _FRIENDLY_RE.match(lowered)
    if match is None:
        raise SchemeParseError(f"unknown predictor name {name!r}")
    scheme = match.group("scheme")
    bits = int(match.group("bits"))
    automaton = automaton_by_name(match.group("automaton") or "A2")
    bht_text = match.group("bht")
    if bht_text == "ideal":
        bht_entries: Optional[int] = None
        bht_assoc = 1
    elif bht_text:
        entries_text, _, assoc_text = bht_text.partition("x")
        bht_entries = int(entries_text)
        bht_assoc = int(assoc_text)
    else:
        bht_entries = 512
        bht_assoc = 4

    if scheme == "gag":
        return GAgPredictor(bits, automaton)
    if scheme == "gap":
        return GApPredictor(bits, automaton)
    if scheme == "gshare":
        return GsharePredictor(bits, automaton)
    if scheme == "pag":
        return make_pag(bits, automaton, bht_entries, bht_assoc)
    if scheme == "pap":
        return make_pap(bits, automaton, bht_entries, bht_assoc)
    if scheme == "gsg":
        if training_trace is None:
            raise SchemeParseError("gsg needs a training trace")
        return GSgPredictor.trained_on(training_trace, bits)
    if scheme == "psg":
        if training_trace is None:
            raise SchemeParseError("psg needs a training trace")
        return PSgPredictor.trained_on(
            training_trace, bits, bht_entries=bht_entries, bht_associativity=bht_assoc
        )
    raise SchemeParseError(f"unknown predictor name {name!r}")  # pragma: no cover


def figure11_factories() -> Dict[str, Callable[[Optional[Trace]], BranchPredictor]]:
    """The Figure 11 comparison set as name -> builder(training_trace).

    Builders for purely dynamic schemes ignore the training trace;
    static-training and profiling builders require it (and the runner
    skips them for benchmarks without a training dataset, as the paper
    does).
    """
    return {
        "PAg(512,4,12-sr,A2)": lambda _t: make_pag(12, A2, 512, 4),
        "PSg(512,4,12-sr)": lambda t: _require_training(t, "PSg") or PSgPredictor.trained_on(t, 12, 512, 4),
        "GSg(12-sr)": lambda t: _require_training(t, "GSg") or GSgPredictor.trained_on(t, 12),
        "BTB(512,4,A2)": lambda _t: btb_a2(),
        "Profile": lambda t: _require_training(t, "Profile") or ProfileGuided.trained_on(t),
        "BTB(512,4,LT)": lambda _t: btb_last_time(),
        "BTFN": lambda _t: BTFN(),
        "AlwaysTaken": lambda _t: AlwaysTaken(),
    }


def _require_training(trace: Optional[Trace], scheme: str) -> None:
    from .base import TrainingUnavailable

    if trace is None:
        raise TrainingUnavailable(f"{scheme} needs a training trace")
    return None


AUTOMATON_NAMES = tuple(PAPER_AUTOMATA)
"""Short names of the paper's five automata, in Table/Figure order."""
