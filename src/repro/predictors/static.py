"""Static branch prediction schemes (paper §4.2, Figure 11 baselines).

* :class:`AlwaysTaken` / :class:`AlwaysNotTaken` — fixed direction.
* :class:`BTFN` — Backward Taken, Forward Not taken: predict from the
  code layout; effective for loop-bound programs (one miss per loop).
* :class:`ProfileGuided` — per-static-branch majority direction measured
  on a *training* run, frozen at test time (the paper's "profiling
  scheme", ~91 % in Figure 11).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Mapping, Optional

from ..trace.events import BranchClass, Trace
from .base import BranchPredictor


class AlwaysTaken(BranchPredictor):
    """Predict taken for every branch (~62.5 % in the paper)."""

    name = "AlwaysTaken"

    def predict(self, pc: int, target: int = 0) -> bool:
        return True

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        pass


class AlwaysNotTaken(BranchPredictor):
    """Predict not taken for every branch (the fall-through guess)."""

    name = "AlwaysNotTaken"

    def predict(self, pc: int, target: int = 0) -> bool:
        return False

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        pass


class BTFN(BranchPredictor):
    """Backward Taken, Forward Not taken (~68.5 % in the paper).

    A branch whose target precedes it in the address space is treated as
    a loop back-edge and predicted taken; forward branches are predicted
    not taken. Branches with no recorded target (``target == 0``) fall
    back to ``unknown_direction``.
    """

    def __init__(self, unknown_direction: bool = True) -> None:
        self.unknown_direction = unknown_direction
        self.name = "BTFN"

    def predict(self, pc: int, target: int = 0) -> bool:
        if target == 0:
            return self.unknown_direction
        return target < pc

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        pass


class ProfileGuided(BranchPredictor):
    """Per-branch majority direction from a profiling run.

    Branches never seen in training are predicted with
    ``default_direction`` (taken by default, consistent with the rest of
    the study's taken bias).
    """

    def __init__(
        self,
        directions: Mapping[int, bool],
        default_direction: bool = True,
        name: Optional[str] = None,
    ) -> None:
        self._directions = dict(directions)
        self.default_direction = default_direction
        self.name = name or "Profile"

    @classmethod
    def trained_on(cls, trace: Trace, default_direction: bool = True) -> "ProfileGuided":
        """Profile ``trace`` and freeze each branch's majority direction."""
        return cls(profile_directions(trace), default_direction)

    def predict(self, pc: int, target: int = 0) -> bool:
        return self._directions.get(pc, self.default_direction)

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        pass

    def directions_snapshot(self) -> Dict[int, bool]:
        """A copy of the frozen pc -> direction profile (kernels/tests)."""
        return dict(self._directions)

    @property
    def num_profiled_branches(self) -> int:
        return len(self._directions)


def profile_directions(trace: Trace) -> Dict[int, bool]:
    """Majority taken-direction per static conditional branch.

    Ties resolve to taken.
    """
    taken: Counter = Counter()
    total: Counter = Counter()
    for pc, was_taken, cls, _target, _instret, _trap in trace.iter_tuples():
        if cls != BranchClass.CONDITIONAL:
            continue
        total[pc] += 1
        if was_taken:
            taken[pc] += 1
    return {pc: taken[pc] * 2 >= total[pc] for pc in total}
