"""Trace-driven simulation: engine, results, runner, pipeline timing,
fetch-engine modelling."""

from .engine import ContextSwitchConfig, simulate, simulate_named
from .fetch import BranchTargetCache, FetchEngine, FetchStats, ReturnAddressStack
from .ipc import IPCEstimate, MachineModel, ipc_estimate, ipc_from_result, speedup
from .pipeline import (
    DelayedResult,
    RecoveryPolicy,
    SpeculativeTwoLevel,
    simulate_delayed,
)
from .results import ResultMatrix, SimulationResult, geometric_mean
from .runner import BenchmarkCase, PredictorBuilder, run_case, run_matrix, sweep_parameter

__all__ = [
    "BenchmarkCase",
    "BranchTargetCache",
    "ContextSwitchConfig",
    "DelayedResult",
    "FetchEngine",
    "FetchStats",
    "IPCEstimate",
    "MachineModel",
    "PredictorBuilder",
    "RecoveryPolicy",
    "ResultMatrix",
    "ReturnAddressStack",
    "SimulationResult",
    "SpeculativeTwoLevel",
    "geometric_mean",
    "ipc_estimate",
    "ipc_from_result",
    "run_case",
    "run_matrix",
    "simulate",
    "simulate_delayed",
    "simulate_named",
    "speedup",
    "sweep_parameter",
]
