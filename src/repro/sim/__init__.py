"""Trace-driven simulation: engine, results, runner, parallel/cached
sweep execution, pipeline timing, fetch-engine modelling."""

from .engine import ContextSwitchConfig, simulate, simulate_named
from .fetch import BranchTargetCache, FetchEngine, FetchStats, ReturnAddressStack
from .ipc import IPCEstimate, MachineModel, ipc_estimate, ipc_from_result, speedup
from .parallel import PredictorSpec, execute_matrix, result_cache_key, spec, trace_digest
from .pipeline import (
    DelayedResult,
    RecoveryPolicy,
    SpeculativeTwoLevel,
    simulate_delayed,
)
from .results import (
    CellTelemetry,
    ResultMatrix,
    RunTelemetry,
    SimulationResult,
    geometric_mean,
)
from .runner import BenchmarkCase, PredictorBuilder, run_case, run_matrix, sweep_parameter

__all__ = [
    "BenchmarkCase",
    "BranchTargetCache",
    "CellTelemetry",
    "ContextSwitchConfig",
    "DelayedResult",
    "FetchEngine",
    "FetchStats",
    "IPCEstimate",
    "MachineModel",
    "PredictorBuilder",
    "PredictorSpec",
    "RecoveryPolicy",
    "ResultMatrix",
    "ReturnAddressStack",
    "RunTelemetry",
    "SimulationResult",
    "SpeculativeTwoLevel",
    "execute_matrix",
    "geometric_mean",
    "ipc_estimate",
    "ipc_from_result",
    "result_cache_key",
    "run_case",
    "run_matrix",
    "simulate",
    "simulate_delayed",
    "simulate_named",
    "spec",
    "speedup",
    "sweep_parameter",
    "trace_digest",
]
