"""Trace-driven simulation: engine, results, runner, parallel/cached
sweep execution, vectorized fast-path kernels, pipeline timing,
fetch-engine modelling."""

from .engine import (
    SIM_BACKENDS,
    ContextSwitchConfig,
    simulate,
    simulate_named,
    simulate_with_backend,
)
from .kernels import (
    KernelUnavailable,
    kernel_supports,
    simulate_vectorized,
    simulate_vectorized_stream,
    stream_kernel_supports,
)
from .fetch import BranchTargetCache, FetchEngine, FetchStats, ReturnAddressStack
from .ipc import IPCEstimate, MachineModel, ipc_estimate, ipc_from_result, speedup
from .parallel import PredictorSpec, execute_matrix, result_cache_key, spec, trace_digest
from .pipeline import (
    DelayedResult,
    RecoveryPolicy,
    SpeculativeTwoLevel,
    simulate_delayed,
)
from .results import (
    CellTelemetry,
    ResultMatrix,
    RunTelemetry,
    SimulationResult,
    geometric_mean,
)
from .runner import BenchmarkCase, PredictorBuilder, run_case, run_matrix, sweep_parameter
from .shard import shard_supports, simulate_sharded

__all__ = [
    "BenchmarkCase",
    "BranchTargetCache",
    "CellTelemetry",
    "ContextSwitchConfig",
    "DelayedResult",
    "FetchEngine",
    "FetchStats",
    "IPCEstimate",
    "KernelUnavailable",
    "MachineModel",
    "PredictorBuilder",
    "PredictorSpec",
    "RecoveryPolicy",
    "ResultMatrix",
    "SIM_BACKENDS",
    "ReturnAddressStack",
    "RunTelemetry",
    "SimulationResult",
    "SpeculativeTwoLevel",
    "execute_matrix",
    "geometric_mean",
    "ipc_estimate",
    "ipc_from_result",
    "kernel_supports",
    "result_cache_key",
    "run_case",
    "run_matrix",
    "shard_supports",
    "simulate",
    "simulate_sharded",
    "simulate_delayed",
    "simulate_named",
    "simulate_vectorized",
    "simulate_vectorized_stream",
    "simulate_with_backend",
    "spec",
    "speedup",
    "stream_kernel_supports",
    "sweep_parameter",
    "trace_digest",
]
