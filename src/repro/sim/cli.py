"""``repro-sim`` — run any predictor over a trace file.

Examples::

    repro-sim run pag-12 trace.btb
    repro-sim run gag-12 big.btrs --block-size 65536   # bounded memory
    repro-sim run "GAg(HR(1,,18-sr),1xPHT(2^18,A2),)" trace.btb --context-switches
    repro-sim run profile trace.btb --training train.btb
    repro-sim run pag-12 trace.btb --ledger          # record in the run ledger
    repro-sim compare pag-12 gag-12 btb-a2 -- trace.btb
    repro-sim report pag-12 trace.btb --top 10
    repro-sim sweep gag-8 pag-8 gshare-8 --workers 4 --follow

``sweep`` evaluates schemes over the generated nine-benchmark suite
with the parallel runner and shares its flags with ``repro-obs sweep``
(``--follow`` live heartbeat status line, ``--ledger`` run recording).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from ..predictors.registry import make_predictor
from ..trace.io import load_trace
from ..trace.stream import open_trace_source
from .engine import SIM_BACKENDS, ContextSwitchConfig, simulate_with_backend

__all__ = ["build_parser", "main"]


def _load_training(path: Optional[Path]):
    return load_trace(path) if path is not None else None


def _context(args: argparse.Namespace) -> Optional[ContextSwitchConfig]:
    if not args.context_switches:
        return None
    return ContextSwitchConfig(interval=args.switch_interval)


def _cmd_run(args: argparse.Namespace) -> int:
    trace = open_trace_source(args.trace)
    predictor = make_predictor(args.predictor, _load_training(args.training))
    probe = None
    streaks = offenders = None
    if args.obs:
        from ..obs import ProbeSet, StreakHistogramProbe, TopOffendersProbe

        streaks = StreakHistogramProbe()
        offenders = TopOffendersProbe(k=5)
        probe = ProbeSet([streaks, offenders])
    started = time.perf_counter()
    result, backend = simulate_with_backend(
        predictor,
        trace,
        context_switches=_context(args),
        probe=probe,
        backend=args.backend,
        block_size=args.block_size,
        shards=args.shards,
    )
    wall = time.perf_counter() - started
    from ..obs.resources import read_resources

    sample = read_resources()
    print(result)
    print(
        f"# backend: {backend} | peak rss {sample.peak_rss_bytes // (1024 * 1024)} MiB",
        file=sys.stderr,
    )
    if args.ledger is not None:
        from ..obs.ledger import LedgerEntry, RunLedger

        entry = RunLedger(args.ledger).append(
            LedgerEntry(
                kind="obs",
                scheme=args.predictor,
                workload=result.trace_name,
                dataset=result.dataset,
                conditional_branches=result.conditional_branches,
                correct_predictions=result.correct_predictions,
                total_instructions=result.total_instructions,
                context_switches=result.context_switches,
                wall_time=wall,
                branches_per_sec=(
                    result.conditional_branches / wall if wall > 0 else 0.0
                ),
                phases={"simulate": wall},
                extra={
                    "backend": backend,
                    "rss_peak_bytes": sample.peak_rss_bytes,
                    **({"shards": args.shards} if args.shards else {}),
                },
            )
        )
        print(f"# ledger: run {entry.run_id} -> {args.ledger}", file=sys.stderr)
    if result.context_switches:
        print(f"context switches: {result.context_switches}")
    if args.obs:
        print(
            f"streaks: {streaks.total_streaks} "
            f"(longest {streaks.max_streak}, mean {streaks.mean_streak():.2f})"
        )
        for offender in offenders.table():
            print(
                f"  pc {offender.pc:#010x}: {offender.mispredicts} misses / "
                f"{offender.executions} execs"
            )
        print("(full observability: python -m repro.obs)")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    trace = open_trace_source(args.trace)
    training = _load_training(args.training)
    rows = []
    for name in args.predictors:
        predictor = make_predictor(name, training)
        result, _backend = simulate_with_backend(
            predictor, trace, context_switches=_context(args), backend=args.backend,
            block_size=args.block_size, shards=args.shards,
        )
        rows.append((name, result.accuracy, result.mispredictions))
    rows.sort(key=lambda row: -row[1])
    width = max(len(name) for name, _a, _m in rows)
    for name, accuracy, misses in rows:
        print(f"{name:{width}s}  {accuracy * 100:6.2f}%  ({misses} misses)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from ..analysis.breakdown import misprediction_breakdown, per_site_report
    from ..analysis.interference import interference_report
    from ..trace.stream import StreamedTrace

    trace = open_trace_source(args.trace)
    if isinstance(trace, StreamedTrace):
        # The analysis passes replay the trace several times; for a
        # report-sized input materializing is the right trade.
        trace = trace.materialize()
    predictor = make_predictor(args.predictor, _load_training(args.training))
    breakdown = misprediction_breakdown(predictor, trace, context_switches=_context(args))
    shares = breakdown.shares()
    print(f"accuracy: {breakdown.accuracy * 100:.2f}%  "
          f"({breakdown.total_misses} misses over {breakdown.total_branches} branches)")
    print(f"  cold       : {shares['cold'] * 100:5.1f}%")
    print(f"  post-flush : {shares['post_flush'] * 100:5.1f}%")
    print(f"  steady     : {shares['steady'] * 100:5.1f}%")
    print()
    fresh = make_predictor(args.predictor, _load_training(args.training))
    print(f"worst {args.top} static branches:")
    for site in per_site_report(fresh, trace, top=args.top):
        print(
            f"  pc {site.pc:#010x}: {site.mispredictions:6d} misses / "
            f"{site.executions:7d} execs (taken {site.taken_rate * 100:5.1f}%, "
            f"accuracy {site.accuracy * 100:5.1f}%)"
        )
    print()
    print(interference_report(trace))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim", description="Run branch predictors over trace files."
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--training", type=Path, default=None,
                         help="training trace for profile/gsg/psg predictors")
        sub.add_argument("--context-switches", action="store_true")
        sub.add_argument("--switch-interval", type=int, default=500_000)
        sub.add_argument(
            "--backend", choices=SIM_BACKENDS, default="auto",
            help="simulation backend: auto (vectorized kernels where "
            "available, default), python (interpreted loop), vectorized "
            "(fail if no kernel applies); results are bit-identical. "
            "Probed runs (run --obs, report) always use the interpreted "
            "loop.",
        )
        sub.add_argument(
            "--block-size", type=int, default=None,
            help="records per simulation block; bounds peak memory for "
            ".btrs containers (default: whole trace for in-memory "
            "traces, 65536 records for streamed containers); results "
            "are bit-identical at any block size",
        )
        sub.add_argument(
            "--shards", type=int, default=None,
            help="run the trace-sharded kernel driver with this many "
            "chunks (repro.sim.shard); bit-identical at every shard "
            "count; mutually exclusive with --block-size and "
            "--backend python",
        )

    run = subparsers.add_parser("run", help="one predictor, one trace")
    run.add_argument("predictor")
    run.add_argument("trace", type=Path)
    run.add_argument("--obs", action="store_true",
                     help="print a streak/offender observability summary")
    run.add_argument(
        "--ledger", type=Path, nargs="?", const=Path("results") / "ledger",
        default=None,
        help="record the run in the persistent run ledger "
        "(bare flag uses results/ledger; see repro-obs history)",
    )
    common(run)
    run.set_defaults(handler=_cmd_run)

    compare = subparsers.add_parser("compare", help="several predictors, one trace")
    compare.add_argument("predictors", nargs="+")
    compare.add_argument("trace", type=Path)
    common(compare)
    compare.set_defaults(handler=_cmd_compare)

    report = subparsers.add_parser("report", help="misprediction breakdown + interference")
    report.add_argument("predictor")
    report.add_argument("trace", type=Path)
    report.add_argument("--top", type=int, default=10)
    common(report)
    report.set_defaults(handler=_cmd_report)

    # Deferred import: the obs package imports sim modules, so pulling
    # it in at sim.cli import time would cycle during package init.
    from ..obs.cli import add_sweep_arguments, run_sweep

    sweep = subparsers.add_parser(
        "sweep",
        help="(schemes x benchmark-suite) sweep with --follow live monitoring",
    )
    add_sweep_arguments(sweep)
    sweep.set_defaults(handler=run_sweep)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
