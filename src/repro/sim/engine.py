"""The trace-driven branch prediction simulator (paper §4).

For every conditional branch in a trace the engine asks the predictor
for a direction, scores it against the recorded outcome, then informs
the predictor of the outcome. Non-conditional branches advance the
instruction clock but are not predicted (the paper studies conditional
branches only).

Context switches (paper §5.1.4) are simulated when enabled: whenever a
trap occurs in the trace, or every ``interval`` dynamic instructions if
no trap occurs, the engine calls ``predictor.on_context_switch()`` —
which flushes the branch history table but leaves pattern history
tables alone.

Observability (see :mod:`repro.obs`): ``simulate`` optionally accepts a
*probe* — any object with the :class:`repro.obs.Probe` callback surface
(``on_run_start``, ``on_branch``, ``on_interval``, ``on_context_switch``,
``on_run_end``). With no probe attached the engine takes a separate
fast path containing not a single extra per-record operation, so
results are bit-identical to — and as fast as — a probe-less build;
with a probe attached, results are still bit-identical because probes
only *observe* (the purity lint in :mod:`repro.check` enforces that
they cannot mutate predictor state).

Backends: the interpreted loop above is the reference semantics, and
``backend="vectorized"`` swaps in the batch kernels of
:mod:`repro.sim.kernels` — bit-identical by construction and pinned by
the equivalence suite. ``backend="auto"`` prefers a kernel and falls
back to the interpreted loop when the predictor (or trace) has none;
probed runs always take the interpreted twin loop, because probes
observe per-record state that batch evaluation never materialises.

Trace inputs: every entry point accepts any
:class:`repro.trace.stream.TraceSource` — an in-memory
:class:`~repro.trace.events.Trace`, an mmap-backed
:class:`~repro.trace.stream.StreamedTrace`, or a bounded synthetic
generator source. Passing ``block_size`` streams the replay in blocks
of at most that many records (peak memory tracks the block size, not
the trace length) with results bit-identical to the whole-trace run —
predictor state, warmup accounting and the absolute context-switch
epochs all carry across block boundaries.
"""

from __future__ import annotations

from itertools import chain
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..predictors.base import BranchPredictor
from ..trace.events import BranchClass, Trace
from .results import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..trace.stream import TraceSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs imports sim)
    from ..obs.probes import Probe

__all__ = [
    "ContextSwitchConfig",
    "SIM_BACKENDS",
    "simulate",
    "simulate_named",
    "simulate_with_backend",
]

SIM_BACKENDS: Tuple[str, ...] = ("auto", "python", "vectorized")
"""Accepted ``backend`` arguments: ``"python"`` is the interpreted
reference loop, ``"vectorized"`` requires a batch kernel, ``"auto"``
uses a kernel when one exists and falls back otherwise."""


@dataclass(frozen=True)
class ContextSwitchConfig:
    """Context-switch model parameters.

    The paper derives 500 000 instructions from a 50 MHz, 1-IPC machine
    switching every 10 ms, and additionally switches at every trap.
    """

    interval: int = 500_000
    switch_on_traps: bool = True

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError("context-switch interval must be >= 1 instruction")


def simulate(
    predictor: BranchPredictor,
    trace: "TraceSource",
    context_switches: Optional[ContextSwitchConfig] = None,
    track_per_site: bool = False,
    warmup_branches: int = 0,
    probe: Optional["Probe"] = None,
    backend: str = "python",
    block_size: Optional[int] = None,
    shards: Optional[int] = None,
) -> SimulationResult:
    """Replay ``trace`` through ``predictor`` and score its predictions.

    Args:
        predictor: a fresh predictor instance. The interpreted backends
            mutate its state; the vectorized backend reads only its
            configuration and leaves the instance untouched (and
            therefore requires a *freshly built* predictor, which every
            runner path provides).
        trace: any bounded :class:`repro.trace.stream.TraceSource` — an
            in-memory :class:`~repro.trace.events.Trace`, an mmap-backed
            :class:`~repro.trace.stream.StreamedTrace`, or a
            ``.limit(n)``-bounded synthetic source.
        context_switches: enable the paper's context-switch model when
            given; ``None`` simulates an undisturbed run.
        track_per_site: also collect per-static-branch mispredictions
            (costs memory; used by the interference analyses).
        warmup_branches: number of initial conditional branches that are
            predicted and updated but *not scored* (the paper does not
            use warm-up — provided for sensitivity studies).
        probe: optional observability probe (see :mod:`repro.obs`).
            Attaching a probe never changes the returned result; with
            ``None`` the engine runs the original probe-free loop.
        backend: ``"python"`` (default — the interpreted reference
            loop), ``"vectorized"`` (require a batch kernel; raises
            :class:`repro.sim.kernels.KernelUnavailable` when the
            predictor has none), or ``"auto"`` (kernel when available,
            interpreted loop otherwise). A probe forces the interpreted
            twin loop under ``"auto"``/``"python"``; an *explicit*
            ``"vectorized"`` request with a probe raises
            :class:`~repro.sim.kernels.KernelUnavailable` instead of
            silently running the interpreted loop. Every backend
            returns bit-identical results.
        block_size: when given, consume the trace in blocks of at most
            this many records, bounding peak memory by the block size
            instead of the trace length. Results are bit-identical for
            every block size. A non-``Trace`` source streams block-wise
            even when this is ``None`` (at the default block size).
            Mutually exclusive with ``shards``.
        shards: when given (>= 1), run the trace-sharded kernel driver
            (:mod:`repro.sim.shard`): the conditional stream is split
            into this many contiguous chunks whose pattern-table scans
            run in parallel workers with symbolic starting states,
            reconciled via composition-LUT prefix products —
            bit-identical to the serial engine at every shard count.
            Requires a kernel backend (``"auto"`` falls back to the
            interpreted loop when the predictor has no kernel;
            ``"python"`` rejects the knob). Ignored for probed runs
            (probes force the interpreted loop).

    Returns:
        A :class:`SimulationResult` with accuracy and bookkeeping.
    """
    result, _used = simulate_with_backend(
        predictor,
        trace,
        context_switches=context_switches,
        track_per_site=track_per_site,
        warmup_branches=warmup_branches,
        probe=probe,
        backend=backend,
        block_size=block_size,
        shards=shards,
    )
    return result


def simulate_with_backend(
    predictor: BranchPredictor,
    trace: "TraceSource",
    context_switches: Optional[ContextSwitchConfig] = None,
    track_per_site: bool = False,
    warmup_branches: int = 0,
    probe: Optional["Probe"] = None,
    backend: str = "python",
    block_size: Optional[int] = None,
    shards: Optional[int] = None,
) -> Tuple[SimulationResult, str]:
    """:func:`simulate`, additionally reporting the backend that ran.

    Returns:
        ``(result, used)`` where ``used`` is ``"python"`` or
        ``"vectorized"`` — what actually executed after ``"auto"``
        resolution, probe forcing, and kernel fallback (sharded runs
        report ``"vectorized"``: the shard driver is the kernel
        machinery on chunks). Telemetry consumers
        (:mod:`repro.sim.parallel`, the run ledger) record ``used`` so
        throughput numbers are attributable.
    """
    if backend not in SIM_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {SIM_BACKENDS}"
        )
    if block_size is not None and block_size < 1:
        raise ValueError("block_size must be >= 1")
    if shards is not None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if backend == "python":
            raise ValueError(
                "shards is a kernel-backend knob; use backend='auto' or "
                "'vectorized' (the interpreted loop is inherently serial)"
            )
        if block_size is not None:
            raise ValueError(
                "shards and block_size are mutually exclusive: sharding "
                "materialises the whole trace and splits it into chunks, "
                "block_size exists to bound memory below the trace length"
            )
    if getattr(trace, "num_records", 0) is None:
        raise ValueError(
            "cannot simulate an unbounded trace source; bound it with .limit(n)"
        )
    # A plain in-memory Trace with no block size runs the original
    # whole-trace paths; anything else streams block-wise with carried
    # state (non-Trace sources stream even without an explicit
    # block_size so an mmap-backed container is never materialized).
    streaming = block_size is not None or not isinstance(trace, Trace)
    # Structured-log telemetry (a no-op unless repro.obs.log was
    # enabled; the deferred import keeps package init acyclic). Both
    # events fire outside the record loop, so the probe-off fast path
    # is untouched. The span recorder follows the same discipline:
    # fetched once per run, consulted only at backend/phase boundaries,
    # and None (no span work at all) unless tracing was enabled.
    from ..obs.log import get_logger
    from ..obs.spans import get_recorder as _get_span_recorder

    logger = get_logger("sim.engine")
    recorder = _get_span_recorder()
    logger.event(
        "run_start",
        scheme=getattr(predictor, "name", type(predictor).__name__),
        trace=trace.meta.name,
        records=trace.num_records,
        probed=probe is not None,
        backend=backend,
    )
    if probe is not None:
        if backend == "vectorized":
            # An explicit kernel request cannot be honoured: probes
            # observe per-record predictor state that the batch kernels
            # never materialise. Failing loudly beats silently running
            # the interpreted loop under a "vectorized" label.
            from .kernels import KernelUnavailable

            raise KernelUnavailable(
                "probed runs take the interpreted twin loop; an explicit "
                "backend='vectorized' cannot honour a probe (use "
                "backend='auto' or 'python', or drop the probe)"
            )
        span_id = (
            recorder.push("interpret", cat="engine", probed=True)
            if recorder is not None
            else 0
        )
        try:
            result = _simulate_probed(
                predictor,
                trace,
                probe,
                context_switches=context_switches,
                track_per_site=track_per_site,
                warmup_branches=warmup_branches,
                block_size=block_size,
            )
        finally:
            if recorder is not None:
                recorder.pop_through(span_id)
        _log_run_end(logger, result)
        return result, "python"
    if backend != "python":
        try:
            # Deferred and guarded: the kernels need numpy, which is an
            # optional dependency of the interpreted simulator.
            from .kernels import (
                KernelUnavailable,
                simulate_vectorized,
                simulate_vectorized_stream,
            )
        except ImportError:
            if backend == "vectorized":
                raise
        else:
            span_id = (
                recorder.push(
                    "kernel",
                    cat="engine",
                    streaming=streaming,
                    shards=0 if shards is None else shards,
                )
                if recorder is not None
                else 0
            )
            try:
                if shards is not None:
                    from .shard import simulate_sharded

                    result = simulate_sharded(
                        predictor,
                        trace,
                        shards=shards,
                        context_switches=context_switches,
                        track_per_site=track_per_site,
                        warmup_branches=warmup_branches,
                    )
                elif streaming:
                    result = simulate_vectorized_stream(
                        predictor,
                        trace,
                        context_switches=context_switches,
                        track_per_site=track_per_site,
                        warmup_branches=warmup_branches,
                        block_size=block_size,
                    )
                else:
                    result = simulate_vectorized(
                        predictor,
                        trace,
                        context_switches=context_switches,
                        track_per_site=track_per_site,
                        warmup_branches=warmup_branches,
                    )
            except KernelUnavailable as exc:
                if recorder is not None:
                    recorder.pop_through(span_id, fallback=True)
                if backend == "vectorized":
                    raise
                # The auto fallback is no longer silent: the structured
                # log records why the kernel declined so a degraded
                # sweep is diagnosable after the fact.
                logger.event(
                    "kernel_fallback",
                    scheme=getattr(predictor, "name", type(predictor).__name__),
                    trace=trace.meta.name,
                    streaming=streaming,
                    shards=0 if shards is None else shards,
                    reason=str(exc),
                )
            except BaseException:
                if recorder is not None:
                    recorder.pop_through(span_id)
                raise
            else:
                if recorder is not None:
                    recorder.pop_through(span_id, branches=result.conditional_branches)
                _log_run_end(logger, result)
                return result, "vectorized"
    conditional = 0
    correct = 0
    switches = 0
    per_site_seen: Dict[int, int] = {}
    per_site_wrong: Dict[int, int] = {}

    cs_enabled = context_switches is not None
    interval = context_switches.interval if cs_enabled else 0
    switch_on_traps = context_switches.switch_on_traps if cs_enabled else False
    next_switch = interval

    predict = predictor.predict
    update = predictor.update
    cond_class = int(BranchClass.CONDITIONAL)

    span_id = recorder.push("interpret", cat="engine") if recorder is not None else 0
    try:
        for pc, taken, cls, target, instret, trap in _record_tuples(
            trace, block_size, recorder
        ):
            if cs_enabled and ((trap and switch_on_traps) or instret >= next_switch):
                predictor.on_context_switch()
                switches += 1
                if instret >= next_switch:
                    # Periodic switches stay on absolute multiples of the
                    # interval (the paper's fixed every-500k cadence); a
                    # trap never reschedules them, and a trap coinciding
                    # with a boundary counts as a single switch.
                    next_switch += interval * ((instret - next_switch) // interval + 1)
            if cls != cond_class:
                continue
            prediction = predict(pc, target)
            update(pc, taken, target)
            conditional += 1
            if conditional <= warmup_branches:
                continue
            if prediction == taken:
                correct += 1
            elif track_per_site:
                per_site_wrong[pc] = per_site_wrong.get(pc, 0) + 1
            if track_per_site:
                per_site_seen[pc] = per_site_seen.get(pc, 0) + 1
    finally:
        if recorder is not None:
            recorder.pop_through(span_id, branches=conditional)

    scored = max(conditional - warmup_branches, 0)
    result = SimulationResult(
        predictor_name=predictor.name,
        trace_name=trace.meta.name,
        dataset=trace.meta.dataset,
        conditional_branches=scored,
        correct_predictions=correct,
        context_switches=switches,
        per_site_executions=per_site_seen if track_per_site else None,
        per_site_mispredictions=per_site_wrong if track_per_site else None,
        total_instructions=trace.meta.total_instructions,
    )
    _log_run_end(logger, result)
    return result, "python"


def _record_tuples(trace: "TraceSource", block_size: Optional[int], recorder=None):
    """The interpreted loops' record iterator: plain tuples, optionally
    consumed block-wise so a streamed source never materializes.

    With an active span recorder and a block size, each block's
    consumption is wrapped in a ``"block"`` span (the per-block level of
    the sweep → cell → phase → block hierarchy); with no recorder the
    iterator is exactly the pre-tracing chain — zero added work.
    """
    if block_size is None:
        return trace.iter_tuples()
    if recorder is None:
        return chain.from_iterable(
            block.iter_tuples() for block in trace.iter_blocks(block_size)
        )
    return _traced_block_tuples(trace, block_size, recorder)


def _traced_block_tuples(trace: "TraceSource", block_size: int, recorder):
    """Block-wise record iterator emitting one span per consumed block.

    The lenient ``pop_if_open`` matters: on an exception in the
    consuming loop this generator is finalized *after* the caller has
    already closed its own enclosing span, and a blind pop would then
    close somebody else's.
    """
    for index, block in enumerate(trace.iter_blocks(block_size)):
        span_id = recorder.push("block", cat="engine", index=index, records=len(block))
        try:
            yield from block.iter_tuples()
        finally:
            recorder.pop_if_open(span_id)


def _log_run_end(logger, result: SimulationResult) -> None:
    """Emit the engine's run-completed record (telemetry only)."""
    logger.event(
        "run_end",
        scheme=result.predictor_name,
        trace=result.trace_name,
        branches=result.conditional_branches,
        accuracy=round(result.accuracy, 6),
        context_switches=result.context_switches,
    )


def _simulate_probed(
    predictor: BranchPredictor,
    trace: "TraceSource",
    probe: "Probe",
    context_switches: Optional[ContextSwitchConfig] = None,
    track_per_site: bool = False,
    warmup_branches: int = 0,
    block_size: Optional[int] = None,
) -> SimulationResult:
    """The probed twin of :func:`simulate`.

    Identical simulation semantics — every branch is predicted, updated
    and scored in exactly the same order with exactly the same state —
    plus the probe callbacks:

    * ``on_run_start(predictor, trace)`` before the first record;
    * ``on_branch(pc, predicted, taken, instret)`` after each
      conditional branch resolves (warm-up branches included);
    * ``on_context_switch(instret)`` after each history flush;
    * ``on_interval(index, instret)`` each time the instruction clock
      crosses a multiple of ``probe.interval_instructions`` (skipped
      entirely when that attribute is ``None``);
    * ``on_run_end(result)`` with the final result.
    """
    conditional = 0
    correct = 0
    switches = 0
    per_site_seen: Dict[int, int] = {}
    per_site_wrong: Dict[int, int] = {}

    cs_enabled = context_switches is not None
    interval = context_switches.interval if cs_enabled else 0
    switch_on_traps = context_switches.switch_on_traps if cs_enabled else False
    next_switch = interval

    predict = predictor.predict
    update = predictor.update
    cond_class = int(BranchClass.CONDITIONAL)

    probe.on_run_start(predictor, trace)
    on_branch = probe.on_branch
    on_context_switch = probe.on_context_switch
    on_interval = probe.on_interval
    window = getattr(probe, "interval_instructions", None)
    next_window = window if window else 0
    window_index = 0

    for pc, taken, cls, target, instret, trap in _record_tuples(trace, block_size):
        if cs_enabled and ((trap and switch_on_traps) or instret >= next_switch):
            predictor.on_context_switch()
            switches += 1
            if instret >= next_switch:
                # Absolute interval boundaries — see the plain loop.
                next_switch += interval * ((instret - next_switch) // interval + 1)
            on_context_switch(instret)
        if cls == cond_class:
            prediction = predict(pc, target)
            update(pc, taken, target)
            conditional += 1
            on_branch(pc, prediction, taken, instret)
            if conditional > warmup_branches:
                if prediction == taken:
                    correct += 1
                elif track_per_site:
                    per_site_wrong[pc] = per_site_wrong.get(pc, 0) + 1
                if track_per_site:
                    per_site_seen[pc] = per_site_seen.get(pc, 0) + 1
        if window and instret >= next_window:
            while instret >= next_window:
                next_window += window
                window_index += 1
            on_interval(window_index - 1, instret)

    scored = max(conditional - warmup_branches, 0)
    result = SimulationResult(
        predictor_name=predictor.name,
        trace_name=trace.meta.name,
        dataset=trace.meta.dataset,
        conditional_branches=scored,
        correct_predictions=correct,
        context_switches=switches,
        per_site_executions=per_site_seen if track_per_site else None,
        per_site_mispredictions=per_site_wrong if track_per_site else None,
        total_instructions=trace.meta.total_instructions,
    )
    probe.on_run_end(result)
    return result


def simulate_named(
    predictor: BranchPredictor,
    trace: Trace,
    with_context_switches: bool = False,
) -> SimulationResult:
    """Convenience wrapper mirroring the paper's ``[c]`` naming flag."""
    config = ContextSwitchConfig() if with_context_switches else None
    return simulate(predictor, trace, context_switches=config)
