"""Target address caching and fetch-bubble accounting (paper §3.2).

Predicting the *direction* of a branch is not enough to keep a
pipeline's fetch engine busy: a predicted-taken branch still stalls
until the target address is known. The paper's fix is to cache target
addresses alongside the branch history ("one extra field in each entry
of the branch history table") so prediction and redirection happen in
the same cycle.

This module models that front end:

* :class:`BranchTargetCache` — a tagged, set-associative cache of
  resolved branch targets (the extra field of §3.2).
* :class:`ReturnAddressStack` — the natural companion for ``return``
  branches, whose targets a BTAC mispredicts whenever a subroutine is
  called from a new site (Kaeli & Emma, the paper's reference [4]).
* :class:`FetchEngine` — drives a direction predictor + BTAC + RAS over
  a trace and charges fetch bubbles:

  - ``mispredict_penalty`` cycles when the direction is wrong
    (speculative work squashed at resolve),
  - ``taken_bubble`` cycles when a correctly-predicted-taken (or
    unconditional) transfer has no cached target — the §3.2 bubble.

The summary statistic is **fetch cycles per instruction**; 1.0 is a
perfect front end. ``benchmarks/test_bench_fetch.py`` quantifies the
paper's argument that target caching removes most of the non-mispredict
bubbles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.history import CacheBHT
from ..predictors.base import BranchPredictor
from ..trace.events import BranchClass, Trace

__all__ = ["BranchTargetCache", "FetchEngine", "FetchStats", "ReturnAddressStack"]


class BranchTargetCache:
    """Cached resolved targets, tagged and set-associative.

    Reuses the BHT cache machinery with the target address as payload.
    """

    def __init__(self, num_entries: int = 512, associativity: int = 4) -> None:
        self._cache = CacheBHT(num_entries, associativity, init_value=0)
        self.lookups = 0
        self.hits = 0
        self.correct = 0

    def predict_target(self, pc: int) -> Optional[int]:
        """The cached target for ``pc``, or None on miss."""
        self.lookups += 1
        entry = self._cache.peek(pc)
        if entry is None or entry.fresh:
            return None
        self.hits += 1
        return entry.value

    def record(self, pc: int, target: int) -> None:
        """Install/refresh the resolved target."""
        entry, _hit = self._cache.access(pc)
        entry.value = target
        entry.fresh = False

    def flush(self) -> None:
        self._cache.flush()

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ReturnAddressStack:
    """A bounded return-address stack.

    Calls push their fall-through address (we model it as the call's
    recorded target provider); returns pop. Overflow wraps (oldest entry
    lost), underflow predicts nothing — both as in simple hardware.
    """

    def __init__(self, depth: int = 16) -> None:
        if depth < 1:
            raise ValueError("RAS depth must be >= 1")
        self.depth = depth
        self._stack: List[int] = []
        self.pushes = 0
        self.pops = 0
        self.underflows = 0
        self.overflows = 0

    def push(self, return_address: int) -> None:
        self.pushes += 1
        if len(self._stack) == self.depth:
            self.overflows += 1
            del self._stack[0]
        self._stack.append(return_address)

    def pop(self) -> Optional[int]:
        self.pops += 1
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def flush(self) -> None:
        self._stack.clear()

    def __len__(self) -> int:
        return len(self._stack)


@dataclass
class FetchStats:
    """Front-end accounting for one trace replay."""

    instructions: int = 0
    conditional_branches: int = 0
    direction_correct: int = 0
    taken_transfers: int = 0
    target_bubbles: int = 0
    mispredict_squashes: int = 0
    penalty_cycles: int = 0
    btac_hit_rate: float = 0.0
    ras_return_hits: int = 0
    ras_returns: int = 0

    @property
    def direction_accuracy(self) -> float:
        if self.conditional_branches == 0:
            return 0.0
        return self.direction_correct / self.conditional_branches

    @property
    def fetch_cycles(self) -> int:
        """Idealised cycles: one per instruction plus every bubble."""
        return self.instructions + self.penalty_cycles

    @property
    def cycles_per_instruction(self) -> float:
        if self.instructions == 0:
            return 0.0
        return self.fetch_cycles / self.instructions

    @property
    def ras_accuracy(self) -> float:
        if self.ras_returns == 0:
            return 0.0
        return self.ras_return_hits / self.ras_returns


class FetchEngine:
    """Direction predictor + BTAC + RAS with bubble accounting."""

    def __init__(
        self,
        predictor: BranchPredictor,
        btac: Optional[BranchTargetCache] = None,
        ras: Optional[ReturnAddressStack] = None,
        mispredict_penalty: int = 5,
        taken_bubble: int = 1,
    ) -> None:
        """Args:
            predictor: the conditional direction predictor.
            btac: target cache; None models a front end without §3.2's
                target field (every taken transfer pays the bubble).
            ras: return-address stack; None sends returns to the BTAC.
            mispredict_penalty: squash cost of a wrong direction.
            taken_bubble: redirect cost of a taken transfer whose
                target was not supplied by BTAC/RAS.
        """
        if mispredict_penalty < 0 or taken_bubble < 0:
            raise ValueError("penalties must be non-negative")
        self.predictor = predictor
        self.btac = btac
        self.ras = ras
        self.mispredict_penalty = mispredict_penalty
        self.taken_bubble = taken_bubble

    def run(self, trace: Trace) -> FetchStats:
        """Replay ``trace`` and account fetch bubbles."""
        stats = FetchStats()
        predictor = self.predictor
        btac = self.btac
        ras = self.ras
        last_instret = 0
        for pc, taken, cls, target, instret, _trap in trace.iter_tuples():
            stats.instructions += instret - last_instret
            last_instret = instret
            if cls == BranchClass.CONDITIONAL:
                stats.conditional_branches += 1
                prediction = predictor.predict(pc, target)
                predictor.update(pc, taken, target)
                if prediction != taken:
                    stats.mispredict_squashes += 1
                    stats.penalty_cycles += self.mispredict_penalty
                    if btac is not None and taken:
                        btac.record(pc, target)
                    continue
                stats.direction_correct += 1
                if taken:
                    self._charge_taken_transfer(stats, pc, target)
            elif cls == BranchClass.CALL:
                if ras is not None:
                    ras.push(pc + 4)
                self._charge_taken_transfer(stats, pc, target)
            elif cls == BranchClass.RETURN:
                stats.ras_returns += 1
                if ras is not None:
                    predicted = ras.pop()
                    if predicted is not None and (target == 0 or predicted == target):
                        stats.ras_return_hits += 1
                        stats.taken_transfers += 1
                        continue
                self._charge_taken_transfer(stats, pc, target)
            else:  # unconditional
                self._charge_taken_transfer(stats, pc, target)
        if btac is not None:
            stats.btac_hit_rate = btac.hit_rate
        return stats

    def _charge_taken_transfer(self, stats: FetchStats, pc: int, target: int) -> None:
        stats.taken_transfers += 1
        if self.btac is None:
            stats.target_bubbles += 1
            stats.penalty_cycles += self.taken_bubble
            return
        predicted_target = self.btac.predict_target(pc)
        if predicted_target is None or (target != 0 and predicted_target != target):
            stats.target_bubbles += 1
            stats.penalty_cycles += self.taken_bubble
        self.btac.record(pc, target)
