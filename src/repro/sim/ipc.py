"""Prediction accuracy -> delivered performance (the paper's §1 claim).

The introduction motivates everything: "Even a prediction miss rate of
5 percent results in a substantial loss in performance due to the
number of instructions fetched each cycle and the number of cycles
these instructions are in the pipeline before an incorrect branch
prediction becomes known."

This module makes that sentence a formula. For a machine that issues
``width`` instructions per cycle with ``resolve_depth`` cycles between
fetch and branch resolution, each misprediction squashes roughly
``width x resolve_depth`` instructions' worth of fetch slots:

    wasted slots / branch   = miss_rate x width x resolve_depth
    useful slots / branch   = 1 / branch_fraction      (instructions per branch)
    fetch efficiency        = useful / (useful + wasted)
    effective IPC           = width x fetch efficiency

It is deliberately a first-order model (no cache misses, no fetch
fragmentation) — the same altitude as the paper's sentence — and it is
what turns "97 % vs 93 %" into "why a 1.3x speedup at 8-wide".
"""

from __future__ import annotations

from dataclasses import dataclass

from .results import SimulationResult

__all__ = ["IPCEstimate", "MachineModel", "ipc_estimate", "ipc_from_result", "speedup"]


@dataclass(frozen=True)
class MachineModel:
    """A wide-issue, deep-pipeline machine sketch.

    Attributes:
        width: instructions issued per cycle.
        resolve_depth: cycles from fetching a branch to resolving it —
            the window of speculative work at risk per prediction.
    """

    width: int = 4
    resolve_depth: int = 8

    def __post_init__(self) -> None:
        if self.width < 1 or self.resolve_depth < 1:
            raise ValueError("width and resolve_depth must be >= 1")


@dataclass(frozen=True)
class IPCEstimate:
    """First-order performance impact of a predictor on a machine."""

    machine: MachineModel
    accuracy: float
    branch_fraction: float
    wasted_slots_per_branch: float
    effective_ipc: float

    @property
    def fetch_efficiency(self) -> float:
        return self.effective_ipc / self.machine.width


def ipc_estimate(
    accuracy: float,
    branch_fraction: float,
    machine: MachineModel = MachineModel(),
) -> IPCEstimate:
    """First-order effective IPC for a given prediction accuracy.

    Args:
        accuracy: conditional-branch prediction accuracy in [0, 1].
        branch_fraction: conditional branches per dynamic instruction
            (e.g. ~0.2 for the integer analogs, ~0.04 for FP).
    """
    if not 0.0 <= accuracy <= 1.0:
        raise ValueError("accuracy must be within [0, 1]")
    if not 0.0 < branch_fraction <= 1.0:
        raise ValueError("branch_fraction must be within (0, 1]")
    miss_rate = 1.0 - accuracy
    instructions_per_branch = 1.0 / branch_fraction
    wasted = miss_rate * machine.width * machine.resolve_depth
    efficiency = instructions_per_branch / (instructions_per_branch + wasted)
    return IPCEstimate(
        machine=machine,
        accuracy=accuracy,
        branch_fraction=branch_fraction,
        wasted_slots_per_branch=wasted,
        effective_ipc=machine.width * efficiency,
    )


def ipc_from_result(
    result: SimulationResult,
    machine: MachineModel = MachineModel(),
) -> IPCEstimate:
    """IPC estimate from a measured simulation result.

    Uses the result's own accuracy and branch density (requires the
    trace to have carried instruction counts).
    """
    if result.total_instructions <= 0:
        raise ValueError("result carries no instruction count")
    branch_fraction = result.conditional_branches / result.total_instructions
    return ipc_estimate(result.accuracy, branch_fraction, machine)


def speedup(
    better_accuracy: float,
    worse_accuracy: float,
    branch_fraction: float,
    machine: MachineModel = MachineModel(),
) -> float:
    """Relative IPC gain of the better predictor over the worse one."""
    better = ipc_estimate(better_accuracy, branch_fraction, machine)
    worse = ipc_estimate(worse_accuracy, branch_fraction, machine)
    return better.effective_ipc / worse.effective_ipc
