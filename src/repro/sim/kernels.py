"""NumPy-vectorized fast-path simulation kernels.

The interpreted engine (:mod:`repro.sim.engine`) replays a trace one
record at a time through predictor objects. For the paper's table-driven
schemes that loop is pure data movement — table lookups and two-bit
automaton steps — which this module evaluates in batch over the columnar
arrays exported by :meth:`repro.trace.events.Trace.as_arrays`. Results
are **bit-identical** to the interpreted engine: same accuracy, same
per-site counts, same context-switch count (the equivalence-pin suite in
``tests/test_sim_kernels.py`` enforces this for every supported scheme).

How a two-level scheme is vectorized
------------------------------------

1. **Context-switch segmentation.** With the engine's fixed
   absolute-boundary semantics, the records at which a flush fires are
   exactly ``trap | (instret // interval changed)`` — a pure function of
   the trace, computed once as a mask. First-level state never crosses a
   segment boundary.
2. **History patterns in closed form.** A history register's content
   before record ``i`` is the window of the last ``min(d, k)`` outcomes
   (``d`` = records since the register was (re)initialised) extended
   with the fill bit — computable for all records at once with ``k``
   shifted adds. Per-address registers need the records grouped by BHT
   residency first, which one stable sort provides.
3. **Pattern-table evolution as a composed automaton.** Grouping records
   by (table, pattern) key makes each pattern entry's life a sequence of
   outcomes driving one automaton. The per-outcome transition function
   packs into a byte (:func:`repro.core.automata.packed_transition_code`),
   function composition becomes a 256x256 table lookup, and a segmented
   doubling scan yields every entry's state *before* each update. Runs
   of identical outcomes collapse via ``f^m = f^3`` for ``m >= 3``
   (:func:`repro.core.automata.supports_vector_scan`), which both bounds
   the scan depth and allows closed-form scoring of whole runs when no
   per-record output is needed.

Not every predictor has a kernel: set-associative BHTs (the paper's
4-way tables) would need an exact sequential LRU stack-distance model,
and hybrid schemes (tournament, gselect, SAg/SAs) compose multiple
tables. Those fall back to the interpreted loop — ``simulate(...,
backend="auto")`` arranges this automatically via
:func:`kernel_supports`.

Kernels never mutate the predictor: they read its *configuration*
(history length, automaton, BHT geometry, preset/profiled bits) and
assume it is freshly constructed, exactly as the experiment runner
builds predictors.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.automata import (
    IDENTITY_CODE,
    AutomatonSpec,
    packed_transition_code,
    supports_vector_scan,
)
from ..core.history import CacheBHT, IdealBHT
from ..core.static_training import GSgPredictor, PSgPredictor
from ..core.twolevel import (
    GAgPredictor,
    GApPredictor,
    GsharePredictor,
    PAgPredictor,
    PApPredictor,
)
from ..predictors.btb import BTBPredictor
from ..predictors.static import AlwaysNotTaken, AlwaysTaken, BTFN, ProfileGuided
from ..trace.events import Trace
from .engine import ContextSwitchConfig
from .results import SimulationResult

__all__ = ["KernelUnavailable", "kernel_supports", "simulate_vectorized"]

#: Longest history register the kernels accept. Pattern keys stay well
#: inside int64 and the windowing loop stays short; the paper's longest
#: register is 18 bits.
_MAX_HISTORY_BITS = 24


class KernelUnavailable(RuntimeError):
    """No vectorized kernel covers this predictor (or this trace)."""


# ----------------------------------------------------------------------
# Automaton machinery: packed codes, composition LUT, run scans
# ----------------------------------------------------------------------

class _AutomatonOps:
    """Precomputed lookup tables for one automaton.

    Attributes:
        compose: ``compose[a, b]`` = packed code of "apply a, then b".
        apply: ``apply[code, state]`` = the mapped state.
        pred4: per-state predicted direction, padded to 4 states.
        compose_flat: the same table flattened (``a * 256 + b``) for
            single-gather lookups in the scan's hot loop.
        pow_codes: ``pow_codes[outcome, j]`` = code of ``f_outcome^j``
            for j in 0..3 (``f^m == f^3`` for m >= 3 by the
            :func:`supports_vector_scan` gate).
        is_const: whether a code maps every state to one state — a run
            carrying such a code makes everything after it independent
            of earlier history, which caps the scan depth.
        head_wrong: ``head_wrong[outcome, state, c]`` = mispredictions
            across the first ``c`` (<= 3) steps of an ``outcome`` run
            entered in ``state``.
        tail_mis: ``tail_mis[outcome, state]`` = whether the automaton
            mispredicts at the run's fixed point ``f^3(state)``.
        init: the automaton's initial state.
    """

    def __init__(self, spec: AutomatonSpec) -> None:
        codes = np.arange(256, dtype=np.uint16)
        decode = np.stack(
            [(codes >> (2 * s)) & 3 for s in range(4)], axis=1
        ).astype(np.uint8)
        # chained[b, a, s] = decode[b, decode[a, s]] -> code over s.
        chained = decode[:, decode]
        weights = np.array([1, 4, 16, 64], dtype=np.uint16)
        composed = (chained.astype(np.uint16) * weights).sum(axis=2)
        self.compose = np.ascontiguousarray(composed.T.astype(np.uint8))
        self.compose_flat = self.compose.ravel()
        self.apply = decode
        self.pred4 = np.array(
            [
                spec.predictions[s] if s < spec.num_states else False
                for s in range(4)
            ],
            dtype=np.bool_,
        )
        self.pow_codes = np.empty((2, 4), dtype=np.uint8)
        for outcome in (0, 1):
            f1 = packed_transition_code(spec, bool(outcome))
            self.pow_codes[outcome, 0] = IDENTITY_CODE
            self.pow_codes[outcome, 1] = f1
            self.pow_codes[outcome, 2] = self.compose[f1, f1]
            self.pow_codes[outcome, 3] = self.compose[self.pow_codes[outcome, 2], f1]
        self.is_const = (decode == decode[:, :1]).all(axis=1)
        self.head_wrong = np.zeros((2, 4, 4), dtype=np.int64)
        self.tail_mis = np.zeros((2, 4), dtype=np.int64)
        for outcome in (0, 1):
            for state in range(4):
                current = state
                for j in range(3):
                    self.head_wrong[outcome, state, j + 1] = (
                        self.head_wrong[outcome, state, j]
                        + (self.pred4[current] != bool(outcome))
                    )
                    current = self.apply[self.pow_codes[outcome, 1], current]
                fixed = self.apply[self.pow_codes[outcome, 3], state]
                self.tail_mis[outcome, state] = self.pred4[fixed] != bool(outcome)
        self.init = spec.initial_state


_OPS_CACHE: Dict[tuple, _AutomatonOps] = {}


def _ops_for(spec: AutomatonSpec) -> _AutomatonOps:
    key = (spec.transitions, spec.predictions, spec.initial_state)
    ops = _OPS_CACHE.get(key)
    if ops is None:
        ops = _OPS_CACHE[key] = _AutomatonOps(spec)
    return ops


class _Runs:
    """Maximal same-outcome runs within pattern groups, plus the
    automaton state entering each run (the output of the scan)."""

    __slots__ = ("first", "length", "lcap", "out", "state0", "starts")

    def __init__(self, first, length, lcap, out, state0, starts) -> None:
        self.first = first
        self.length = length
        self.lcap = lcap
        self.out = out
        self.state0 = state0
        self.starts = starts


def _find_runs(out_u8: np.ndarray, grp_new: np.ndarray, ops: _AutomatonOps) -> _Runs:
    """Collapse group-sorted outcomes into runs and scan their states.

    ``out_u8`` must be ordered group-major with time order inside each
    group; ``grp_new`` marks each group's first element. Every group's
    automaton starts from ``ops.init``.
    """
    n = out_u8.shape[0]
    starts = grp_new.copy()
    starts[1:] |= out_u8[1:] != out_u8[:-1]
    first = np.flatnonzero(starts)
    nruns = first.shape[0]
    length = np.empty(nruns, dtype=np.int64)
    if nruns > 1:
        length[:-1] = np.diff(first)
    length[-1] = n - first[-1]
    out = out_u8[first]
    lcap = np.minimum(length, 3)
    code = ops.pow_codes[out, lcap]

    grp_first = grp_new[first]
    prev_code = np.empty(nruns, dtype=np.uint8)
    prev_code[0] = IDENTITY_CODE
    prev_code[1:] = code[:-1]
    # A constant predecessor code pins the state regardless of anything
    # earlier: start a fresh scan segment there with a known init.
    absorbed = ~grp_first & ops.is_const[prev_code]
    absorbed[0] = False
    seg_new = grp_first | absorbed
    seg_new[0] = True
    seg_start = _start_indices(seg_new)
    idx_in_seg = np.arange(nruns, dtype=np.int32) - seg_start
    init_run = np.where(absorbed, prev_code & 3, ops.init).astype(np.uint8)[seg_start]

    # Exclusive segmented composition scan (Hillis-Steele doubling):
    # after the loop, H[i] maps a segment's init state to the state
    # entering run i. Only positions >= step into their segment change
    # in an iteration, so each pass touches the (rapidly shrinking)
    # active set instead of the whole array; reading ``H[active-step]``
    # before any write keeps the gather on pre-iteration values, and
    # ``idx_in_seg >= step`` guarantees ``active - step`` stays inside
    # the same segment.
    H = np.empty(nruns, dtype=np.uint8)
    H[0] = IDENTITY_CODE
    H[1:] = code[:-1]
    H[seg_new] = IDENTITY_CODE
    compose_flat = ops.compose_flat
    step = 1
    while True:
        active = np.flatnonzero(idx_in_seg >= step)
        if active.size == 0:
            break
        prior = H[active - step].astype(np.uint16)
        H[active] = compose_flat[(prior << 8) | H[active]]
        step <<= 1
    state0 = ops.apply[H, init_run]
    return _Runs(first, length, lcap, out, state0, starts)


def _runs_wrong_total(runs: _Runs, ops: _AutomatonOps) -> int:
    """Total mispredictions, scored per run in closed form."""
    cell = (runs.out.astype(np.int64) * 4 + runs.state0) * 4
    head = ops.head_wrong.ravel()[cell + runs.lcap]
    tail = (runs.length - runs.lcap) * ops.tail_mis.ravel()[cell >> 2]
    return int(head.sum() + tail.sum())


def _expand_run_preds(n: int, runs: _Runs, ops: _AutomatonOps) -> np.ndarray:
    """Per-record predictions (group-sorted order) from run states."""
    nruns = runs.first.shape[0]
    preds = np.empty((nruns, 4), dtype=np.bool_)
    for j in range(4):
        preds[:, j] = ops.pred4[ops.apply[ops.pow_codes[runs.out, j], runs.state0]]
    run_id = np.cumsum(runs.starts) - 1
    offset = np.minimum(np.arange(n) - runs.first[run_id], 3)
    return preds[run_id, offset]


# ----------------------------------------------------------------------
# Sorting / grouping / history-window helpers
# ----------------------------------------------------------------------

def _stable_argsort(keys: np.ndarray) -> np.ndarray:
    """Stable argsort specialised for small non-negative keys.

    Radix sort on uint16 keys is ~8x faster than comparison sort on
    int64, and two chained stable uint16 passes (LSD radix) cover the
    32-bit range; wider keys fall back to the generic stable sort.
    """
    if keys.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    top = int(keys.max())
    if top < (1 << 16):
        return np.argsort(keys.astype(np.uint16), kind="stable")
    if top < (1 << 32):
        wide = keys.astype(np.uint32)
        low = (wide & np.uint32(0xFFFF)).astype(np.uint16)
        high = (wide >> np.uint32(16)).astype(np.uint16)
        by_low = np.argsort(low, kind="stable")
        by_high = np.argsort(high[by_low], kind="stable")
        return by_low[by_high]
    return np.argsort(keys, kind="stable")


def _group_sort(keys: np.ndarray):
    """``(order, grp_new)``: stable sort by key + group-start marks."""
    order = _stable_argsort(keys)
    key_s = keys[order]
    grp_new = np.empty(key_s.shape[0], dtype=np.bool_)
    grp_new[0] = True
    grp_new[1:] = key_s[1:] != key_s[:-1]
    return order, grp_new


def _start_indices(new_mark: np.ndarray) -> np.ndarray:
    """For each position, the index of its group's first element.

    int32 keeps this (and its downstream arithmetic) at half the memory
    traffic; traces are nowhere near 2**31 records.
    """
    n = new_mark.shape[0]
    return np.maximum.accumulate(
        np.where(new_mark, np.arange(n, dtype=np.int32), np.int32(0))
    )


def _outcome_window(out_u8: np.ndarray, k: int) -> np.ndarray:
    """``W[i]`` = the previous ``k`` outcomes before position ``i``,
    newest in bit 0 (group boundaries handled by the callers' masks)."""
    n = out_u8.shape[0]
    window = np.zeros(n, dtype=np.int32)
    lifted = out_u8.astype(np.int32)
    for back in range(1, k + 1):
        window[back:] += lifted[:-back] << np.int32(back - 1)
    return window


def _fill_extended(window: np.ndarray, since: np.ndarray, fill: np.ndarray, k: int) -> np.ndarray:
    """History-register contents: ``min(since, k)`` window bits with the
    ``fill`` bit extended through the remaining upper positions."""
    mask = np.int32((1 << k) - 1)
    depth = np.minimum(since, np.int32(k))
    low_mask = (np.int32(1) << depth) - np.int32(1)
    return (window & low_mask) | (fill * (mask ^ low_mask))


# ----------------------------------------------------------------------
# The run container
# ----------------------------------------------------------------------

class _Run:
    """Prepared per-call inputs shared by every kernel."""

    __slots__ = ("arrays", "n_c", "out_bool", "out_u8", "seg_c", "switches",
                 "aggregate", "warmup", "track_per_site", "_pc_c")

    def __init__(self, trace: Trace, context_switches: Optional[ContextSwitchConfig],
                 track_per_site: bool, warmup_branches: int) -> None:
        arrays = trace.as_arrays()
        self.arrays = arrays
        cond = arrays.cond_mask
        self.out_bool = arrays.taken[cond]
        self.out_u8 = self.out_bool.view(np.uint8)
        self.n_c = int(self.out_bool.shape[0])
        self.warmup = max(int(warmup_branches), 0)
        self.track_per_site = bool(track_per_site)
        self.aggregate = self.warmup == 0 and not self.track_per_site
        self._pc_c = None
        if context_switches is None or len(arrays) == 0:
            self.switches = 0
            self.seg_c = np.zeros(self.n_c, dtype=np.int64)
            return
        instret = arrays.instret
        if np.any(instret[1:] < instret[:-1]):
            raise KernelUnavailable(
                "instret decreases within the trace; the vectorized "
                "context-switch model requires a non-decreasing clock"
            )
        boundary = np.empty(len(arrays), dtype=np.bool_)
        epoch = instret // context_switches.interval
        boundary[0] = epoch[0] > 0
        boundary[1:] = epoch[1:] > epoch[:-1]
        fires = boundary | arrays.trap if context_switches.switch_on_traps else boundary
        self.switches = int(np.count_nonzero(fires))
        self.seg_c = np.cumsum(fires)[cond]

    @property
    def pc_c(self) -> np.ndarray:
        if self._pc_c is None:
            self._pc_c = self.arrays.pc[self.arrays.cond_mask]
        return self._pc_c


def _scan_scheme(run: _Run, out_sorted: np.ndarray, grp_new: np.ndarray,
                 order: np.ndarray, ops: _AutomatonOps):
    """Shared tail of every pattern-table scheme: scan, then either
    closed-form aggregate scoring or per-record expansion."""
    runs = _find_runs(out_sorted, grp_new, ops)
    if run.aggregate:
        return run.n_c - _runs_wrong_total(runs, ops)
    pred_sorted = _expand_run_preds(run.n_c, runs, ops)
    pred = np.empty(run.n_c, dtype=np.bool_)
    pred[order] = pred_sorted
    return pred


# ----------------------------------------------------------------------
# Global-history schemes: GAg, GSg, gshare, GAp
# ----------------------------------------------------------------------

def _global_history(run: _Run, k: int, fill_taken: bool) -> np.ndarray:
    """The GHR value before each conditional record, per segment."""
    seg = run.seg_c
    n = run.n_c
    new_seg = np.empty(n, dtype=np.bool_)
    new_seg[0] = True
    new_seg[1:] = seg[1:] != seg[:-1]
    since = np.arange(n, dtype=np.int32) - _start_indices(new_seg)
    window = _outcome_window(run.out_u8, k)
    fill = np.int32(1) if fill_taken else np.int32(0)
    return _fill_extended(window, since, fill, k)


def _kernel_gag(predictor: GAgPredictor):
    ops = _ops_for(predictor.automaton)
    k = predictor.history_bits

    def kernel(run: _Run):
        order, grp_new = _group_sort(_global_history(run, k, fill_taken=True))
        return _scan_scheme(run, run.out_u8[order], grp_new, order, ops)

    return kernel


def _kernel_gshare(predictor: GsharePredictor):
    ops = _ops_for(predictor.automaton)
    k = predictor.history_bits

    def kernel(run: _Run):
        ghr = _global_history(run, k, fill_taken=False)
        keys = (ghr ^ run.pc_c) & ((1 << k) - 1)
        order, grp_new = _group_sort(keys)
        return _scan_scheme(run, run.out_u8[order], grp_new, order, ops)

    return kernel


def _kernel_gap(predictor: GApPredictor):
    ops = _ops_for(predictor.automaton)
    k = predictor.history_bits

    def kernel(run: _Run):
        ghr = _global_history(run, k, fill_taken=True)
        _sites, ids = run.arrays.conditional_site_ids()
        order, grp_new = _group_sort((ids << k) | ghr)
        return _scan_scheme(run, run.out_u8[order], grp_new, order, ops)

    return kernel


def _kernel_gsg(predictor: GSgPredictor):
    bits = np.asarray(predictor.table.bits_snapshot(), dtype=np.bool_)
    k = predictor.history_bits

    def kernel(run: _Run):
        return bits[_global_history(run, k, fill_taken=True)]

    return kernel


# ----------------------------------------------------------------------
# Per-address first level: PAg, PSg, PAp, BTB
# ----------------------------------------------------------------------

class _Layout:
    """Conditional records regrouped by BHT residency.

    ``order`` stable-sorts conditional records by site key (dense pc id
    for the ideal BHT, set index for direct-mapped), which is exactly
    (site, time) order. An *episode* is one entry's tenure: it restarts
    at segment changes (flush) and, for direct-mapped tables, whenever a
    different branch claims the set. ``evict`` marks episode starts that
    displace a still-valid occupant (never true right after a flush).
    """

    __slots__ = ("order", "out_s", "ep_new", "ep_start", "m", "blk_new", "evict")

    def __init__(self, order, out_s, ep_new, ep_start, m, blk_new, evict) -> None:
        self.order = order
        self.out_s = out_s
        self.ep_new = ep_new
        self.ep_start = ep_start
        self.m = m
        self.blk_new = blk_new
        self.evict = evict


def _pa_layout(run: _Run, bht) -> _Layout:
    n = run.n_c
    if isinstance(bht, IdealBHT):
        _sites, keys = run.arrays.conditional_site_ids()
        direct = False
    else:
        keys = run.pc_c % bht.num_sets
        direct = True
    order = _stable_argsort(keys)
    key_s = keys[order]
    seg_s = run.seg_c[order]
    out_s = run.out_u8[order]
    blk_new = np.empty(n, dtype=np.bool_)
    blk_new[0] = True
    blk_new[1:] = key_s[1:] != key_s[:-1]
    seg_chg = np.empty(n, dtype=np.bool_)
    seg_chg[0] = True
    seg_chg[1:] = seg_s[1:] != seg_s[:-1]
    seg_chg |= blk_new
    if direct:
        pc_s = run.pc_c[order]
        pc_chg = np.empty(n, dtype=np.bool_)
        pc_chg[0] = True
        pc_chg[1:] = pc_s[1:] != pc_s[:-1]
        ep_new = seg_chg | pc_chg
        evict = pc_chg & ~seg_chg
    else:
        ep_new = seg_chg
        evict = np.zeros(n, dtype=np.bool_)
    ep_start = _start_indices(ep_new)
    m = np.arange(n, dtype=np.int32) - ep_start
    return _Layout(order, out_s, ep_new, ep_start, m, blk_new, evict)


def _pa_patterns(layout: _Layout, k: int) -> np.ndarray:
    """Per-address history-register contents before each record.

    The register fills with the episode's first outcome on the first
    update and shifts afterwards, so before occurrence ``m >= 1`` it
    holds the last ``min(m, k)`` episode outcomes extended with the
    first outcome; before occurrence 0 the predictors read the all-ones
    pattern a miss would be allocated with.
    """
    mask = (1 << k) - 1
    window = _outcome_window(layout.out_s, k)
    first_outcome = layout.out_s[layout.ep_start].astype(np.int32)
    patterns = _fill_extended(window, layout.m, first_outcome, k)
    patterns[layout.m == 0] = mask
    return patterns


def _supported_bht(bht) -> bool:
    if isinstance(bht, IdealBHT):
        return True
    return isinstance(bht, CacheBHT) and bht.associativity == 1


def _kernel_pag(predictor: PAgPredictor):
    ops = _ops_for(predictor.automaton)
    k = predictor.history_bits
    bht = predictor.bht

    def kernel(run: _Run):
        layout = _pa_layout(run, bht)
        patterns_s = _pa_patterns(layout, k)
        patterns = np.empty(run.n_c, dtype=np.int32)
        patterns[layout.order] = patterns_s
        order, grp_new = _group_sort(patterns)
        return _scan_scheme(run, run.out_u8[order], grp_new, order, ops)

    return kernel


def _kernel_psg(predictor: PSgPredictor):
    bits = np.asarray(predictor.table.bits_snapshot(), dtype=np.bool_)
    k = predictor.history_bits
    bht = predictor.bht

    def kernel(run: _Run):
        layout = _pa_layout(run, bht)
        pred = np.empty(run.n_c, dtype=np.bool_)
        pred[layout.order] = bits[_pa_patterns(layout, k)]
        return pred

    return kernel


def _kernel_pap(predictor: PApPredictor):
    ops = _ops_for(predictor.automaton)
    k = predictor.history_bits
    bht = predictor.bht
    reset_on_evict = predictor.config.reset_pht_on_evict

    def kernel(run: _Run):
        layout = _pa_layout(run, bht)
        patterns_s = _pa_patterns(layout, k)
        if isinstance(bht, IdealBHT):
            # Every (segment, branch) episode opens a brand-new slot
            # whose pattern table materialises in the initial state.
            table_id = np.cumsum(layout.ep_new) - 1
        elif reset_on_evict:
            # A slot's table is reinitialised when a valid occupant is
            # displaced; flushes invalidate without resetting tables.
            table_id = np.cumsum(layout.blk_new | layout.evict) - 1
        else:
            table_id = np.cumsum(layout.blk_new) - 1
        # Sorting by (table, pattern) from the site-sorted order keeps
        # time order inside each group (a table's records live within
        # one site block, where this order is already chronological).
        keys = (table_id << k) | patterns_s
        order2, grp_new = _group_sort(keys)
        order = layout.order[order2]
        return _scan_scheme(run, layout.out_s[order2], grp_new, order, ops)

    return kernel


def _kernel_btb(predictor: BTBPredictor):
    ops = _ops_for(predictor.automaton)
    bht = predictor.bht

    def kernel(run: _Run):
        layout = _pa_layout(run, bht)
        return _scan_scheme(run, layout.out_s, layout.ep_new, layout.order, ops)

    return kernel


# ----------------------------------------------------------------------
# Static schemes
# ----------------------------------------------------------------------

def _kernel_constant(direction: bool):
    def kernel(run: _Run):
        return np.full(run.n_c, direction, dtype=np.bool_)

    return kernel


def _kernel_btfn(predictor: BTFN):
    unknown = predictor.unknown_direction

    def kernel(run: _Run):
        target_c = run.arrays.target[run.arrays.cond_mask]
        return np.where(target_c == 0, unknown, target_c < run.pc_c)

    return kernel


def _kernel_profile(predictor: ProfileGuided):
    directions = predictor.directions_snapshot()
    default = predictor.default_direction

    def kernel(run: _Run):
        sites, ids = run.arrays.conditional_site_ids()
        site_dirs = np.fromiter(
            (directions.get(int(site), default) for site in sites),
            dtype=np.bool_,
            count=sites.shape[0],
        )
        return site_dirs[ids]

    return kernel


# ----------------------------------------------------------------------
# Dispatch + public API
# ----------------------------------------------------------------------

def _kernel_for(predictor):
    """The kernel closure for ``predictor``, or None when unsupported.

    Dispatch is on the *exact* type: a subclass may override predict or
    update semantics the kernels hard-code.
    """
    kind = type(predictor)
    if kind is AlwaysTaken:
        return _kernel_constant(True)
    if kind is AlwaysNotTaken:
        return _kernel_constant(False)
    if kind is BTFN:
        return _kernel_btfn(predictor)
    if kind is ProfileGuided:
        return _kernel_profile(predictor)

    def scannable(spec: AutomatonSpec) -> bool:
        return supports_vector_scan(spec)

    def k_ok(bits: int) -> bool:
        return bits <= _MAX_HISTORY_BITS

    if kind is GAgPredictor and scannable(predictor.automaton) and k_ok(predictor.history_bits):
        return _kernel_gag(predictor)
    if kind is GsharePredictor and scannable(predictor.automaton) and k_ok(predictor.history_bits):
        return _kernel_gshare(predictor)
    if kind is GApPredictor and scannable(predictor.automaton) and k_ok(predictor.history_bits):
        return _kernel_gap(predictor)
    if kind is GSgPredictor and k_ok(predictor.history_bits):
        return _kernel_gsg(predictor)
    if kind is PAgPredictor and scannable(predictor.automaton) \
            and k_ok(predictor.history_bits) and _supported_bht(predictor.bht):
        return _kernel_pag(predictor)
    if kind is PSgPredictor and k_ok(predictor.history_bits) and _supported_bht(predictor.bht):
        return _kernel_psg(predictor)
    if kind is PApPredictor and scannable(predictor.automaton) \
            and k_ok(predictor.history_bits) and _supported_bht(predictor.bht):
        return _kernel_pap(predictor)
    if kind is BTBPredictor and scannable(predictor.automaton) and _supported_bht(predictor.bht):
        return _kernel_btb(predictor)
    return None


def kernel_supports(predictor) -> bool:
    """Whether :func:`simulate_vectorized` can replay ``predictor``.

    True for the paper's table-driven schemes with an ideal or
    direct-mapped first level and a <= 4-state automaton whose
    transition functions stabilise within three repeats (all of LT,
    A1-A4 and the preset bit); False for set-associative BHTs, hybrid
    predictors, and exotic automaton extensions — those run through the
    interpreted loop instead.
    """
    return _kernel_for(predictor) is not None


def simulate_vectorized(
    predictor,
    trace: Trace,
    context_switches: Optional[ContextSwitchConfig] = None,
    track_per_site: bool = False,
    warmup_branches: int = 0,
) -> SimulationResult:
    """Batch-replay ``trace`` through a vectorized model of ``predictor``.

    Bit-identical to :func:`repro.sim.engine.simulate` for every
    supported predictor, *assuming a freshly-constructed predictor*
    (kernels model initial tables; they neither read nor write the
    predictor's mutable state, so the instance is untouched afterwards).

    Raises:
        KernelUnavailable: when no kernel covers the predictor, or the
            trace breaks a kernel precondition (decreasing ``instret``
            with context switches enabled).
    """
    kernel = _kernel_for(predictor)
    if kernel is None:
        raise KernelUnavailable(
            f"no vectorized kernel for {getattr(predictor, 'name', type(predictor).__name__)}"
        )
    run = _Run(trace, context_switches, track_per_site, warmup_branches)
    per_seen: Optional[Dict[int, int]] = None
    per_wrong: Optional[Dict[int, int]] = None
    if run.n_c == 0:
        correct = 0
        if run.track_per_site:
            per_seen, per_wrong = {}, {}
    else:
        outcome = kernel(run)
        if isinstance(outcome, (int, np.integer)):
            correct = int(outcome)
        else:
            correct, per_seen, per_wrong = _score_predictions(run, outcome)
    scored = max(run.n_c - run.warmup, 0)
    return SimulationResult(
        predictor_name=predictor.name,
        trace_name=trace.meta.name,
        dataset=trace.meta.dataset,
        conditional_branches=scored,
        correct_predictions=correct,
        context_switches=run.switches,
        per_site_executions=per_seen,
        per_site_mispredictions=per_wrong,
        total_instructions=trace.meta.total_instructions,
    )


def _score_predictions(run: _Run, pred: np.ndarray):
    """Score per-record predictions against outcomes, honouring warmup
    and (optionally) collecting the per-site dictionaries."""
    ok = pred == run.out_bool
    scored_ok = ok[run.warmup:]
    correct = int(np.count_nonzero(scored_ok))
    if not run.track_per_site:
        return correct, None, None
    sites, ids = run.arrays.conditional_site_ids()
    scored_ids = ids[run.warmup:]
    seen = np.bincount(scored_ids, minlength=sites.shape[0])
    wrong = np.bincount(scored_ids[~scored_ok], minlength=sites.shape[0])
    per_seen = {int(sites[i]): int(seen[i]) for i in np.flatnonzero(seen)}
    per_wrong = {int(sites[i]): int(wrong[i]) for i in np.flatnonzero(wrong)}
    return correct, per_seen, per_wrong
