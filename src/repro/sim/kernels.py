"""NumPy-vectorized fast-path simulation kernels.

The interpreted engine (:mod:`repro.sim.engine`) replays a trace one
record at a time through predictor objects. For the paper's table-driven
schemes that loop is pure data movement — table lookups and two-bit
automaton steps — which this module evaluates in batch over the columnar
arrays exported by :meth:`repro.trace.events.Trace.as_arrays`. Results
are **bit-identical** to the interpreted engine: same accuracy, same
per-site counts, same context-switch count (the equivalence-pin suite in
``tests/test_sim_kernels.py`` enforces this for every supported scheme).

How a two-level scheme is vectorized
------------------------------------

1. **Context-switch segmentation.** With the engine's fixed
   absolute-boundary semantics, the records at which a flush fires are
   exactly ``trap | (instret // interval changed)`` — a pure function of
   the trace, computed once as a mask. First-level state never crosses a
   segment boundary.
2. **History patterns in closed form.** A history register's content
   before record ``i`` is the window of the last ``min(d, k)`` outcomes
   (``d`` = records since the register was (re)initialised) extended
   with the fill bit — computable for all records at once with ``k``
   shifted adds. Per-address registers need the records grouped by BHT
   residency first, which one stable sort provides.
3. **Pattern-table evolution as a composed automaton.** Grouping records
   by (table, pattern) key makes each pattern entry's life a sequence of
   outcomes driving one automaton. The per-outcome transition function
   packs into a byte (:func:`repro.core.automata.packed_transition_code`),
   function composition becomes a 256x256 table lookup, and a segmented
   doubling scan yields every entry's state *before* each update. Runs
   of identical outcomes collapse via ``f^m = f^3`` for ``m >= 3``
   (:func:`repro.core.automata.supports_vector_scan`), which both bounds
   the scan depth and allows closed-form scoring of whole runs when no
   per-record output is needed.

Set-associative BHTs (the paper's 4-way tables) are modelled exactly:
an event-compressed, set-parallel LRU pass (:func:`_assoc_layout`)
replays each set's way array — first-invalid-way allocation, true-LRU
victim choice, flush invalidation that keeps stale tags — and emits the
same (episode, slot, evict) layout the direct-mapped path derives in
closed form. Hybrid and per-set schemes compose the existing machinery:
gselect concatenates address bits into the global-history key, SAg/SAs
group per-set shift registers, and the tournament kernel runs both
component kernels per-record and arbitrates with a chooser-automaton
scan over the disagreement records. The remaining exclusions are
structural: automata beyond 4 states or without the ``f^4 == f^3``
fixed point, and history registers above ``_MAX_HISTORY_BITS``. Those
fall back to the interpreted loop — ``simulate(..., backend="auto")``
arranges this automatically via :func:`kernel_supports`.

Kernels never mutate the predictor: they read its *configuration*
(history length, automaton, BHT geometry, preset/profiled bits) and
assume it is freshly constructed, exactly as the experiment runner
builds predictors.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.automata import (
    IDENTITY_CODE,
    AutomatonSpec,
    packed_transition_code,
    saturating_counter,
    supports_vector_scan,
)
from ..core.history import CacheBHT, IdealBHT
from ..core.perset import SAgPredictor, SAsPredictor
from ..core.static_training import GSgPredictor, PSgPredictor
from ..core.twolevel import (
    GAgPredictor,
    GApPredictor,
    GsharePredictor,
    PAgPredictor,
    PApPredictor,
)
from ..predictors.btb import BTBPredictor
from ..predictors.extensions import GselectPredictor, TournamentPredictor
from ..predictors.static import AlwaysNotTaken, AlwaysTaken, BTFN, ProfileGuided
from ..trace.events import Trace
from ..trace.stream import DEFAULT_BLOCK_SIZE as _DEFAULT_STREAM_BLOCK
from .engine import ContextSwitchConfig
from .results import SimulationResult

__all__ = [
    "CHOOSER_AUTOMATON",
    "KernelUnavailable",
    "automaton_ops",
    "kernel_supports",
    "simulate_vectorized",
    "simulate_vectorized_stream",
    "stream_kernel_supports",
]

#: Longest history register the kernels accept. Pattern keys stay well
#: inside int64 and the windowing loop stays short; the paper's longest
#: register is 18 bits.
_MAX_HISTORY_BITS = 24


class KernelUnavailable(RuntimeError):
    """No vectorized kernel covers this predictor (or this trace)."""


# ----------------------------------------------------------------------
# Automaton machinery: packed codes, composition LUT, run scans
# ----------------------------------------------------------------------

class _AutomatonOps:
    """Precomputed lookup tables for one automaton.

    Attributes:
        compose: ``compose[a, b]`` = packed code of "apply a, then b".
        apply: ``apply[code, state]`` = the mapped state.
        pred4: per-state predicted direction, padded to 4 states.
        compose_flat: the same table flattened (``a * 256 + b``) for
            single-gather lookups in the scan's hot loop.
        pow_codes: ``pow_codes[outcome, j]`` = code of ``f_outcome^j``
            for j in 0..3 (``f^m == f^3`` for m >= 3 by the
            :func:`supports_vector_scan` gate).
        is_const: whether a code maps every state to one state — a run
            carrying such a code makes everything after it independent
            of earlier history, which caps the scan depth.
        head_wrong: ``head_wrong[outcome, state, c]`` = mispredictions
            across the first ``c`` (<= 3) steps of an ``outcome`` run
            entered in ``state``.
        tail_mis: ``tail_mis[outcome, state]`` = whether the automaton
            mispredicts at the run's fixed point ``f^3(state)``.
        init: the automaton's initial state.
    """

    def __init__(self, spec: AutomatonSpec) -> None:
        codes = np.arange(256, dtype=np.uint16)
        decode = np.stack(
            [(codes >> (2 * s)) & 3 for s in range(4)], axis=1
        ).astype(np.uint8)
        # chained[b, a, s] = decode[b, decode[a, s]] -> code over s.
        chained = decode[:, decode]
        weights = np.array([1, 4, 16, 64], dtype=np.uint16)
        composed = (chained.astype(np.uint16) * weights).sum(axis=2)
        self.compose = np.ascontiguousarray(composed.T.astype(np.uint8))
        self.compose_flat = self.compose.ravel()
        self.apply = decode
        self.pred4 = np.array(
            [
                spec.predictions[s] if s < spec.num_states else False
                for s in range(4)
            ],
            dtype=np.bool_,
        )
        self.pow_codes = np.empty((2, 4), dtype=np.uint8)
        for outcome in (0, 1):
            f1 = packed_transition_code(spec, bool(outcome))
            self.pow_codes[outcome, 0] = IDENTITY_CODE
            self.pow_codes[outcome, 1] = f1
            self.pow_codes[outcome, 2] = self.compose[f1, f1]
            self.pow_codes[outcome, 3] = self.compose[self.pow_codes[outcome, 2], f1]
        self.is_const = (decode == decode[:, :1]).all(axis=1)
        self.head_wrong = np.zeros((2, 4, 4), dtype=np.int64)
        self.tail_mis = np.zeros((2, 4), dtype=np.int64)
        for outcome in (0, 1):
            for state in range(4):
                current = state
                for j in range(3):
                    self.head_wrong[outcome, state, j + 1] = (
                        self.head_wrong[outcome, state, j]
                        + (self.pred4[current] != bool(outcome))
                    )
                    current = self.apply[self.pow_codes[outcome, 1], current]
                fixed = self.apply[self.pow_codes[outcome, 3], state]
                self.tail_mis[outcome, state] = self.pred4[fixed] != bool(outcome)
        self.init = spec.initial_state


_OPS_CACHE: Dict[tuple, _AutomatonOps] = {}


def _ops_for(spec: AutomatonSpec) -> _AutomatonOps:
    key = (spec.transitions, spec.predictions, spec.initial_state)
    ops = _OPS_CACHE.get(key)
    if ops is None:
        ops = _OPS_CACHE[key] = _AutomatonOps(spec)
    return ops


def automaton_ops(spec: AutomatonSpec) -> _AutomatonOps:
    """The kernel table bundle (:class:`_AutomatonOps`) for ``spec``.

    This is the public verification hook used by the
    ``repro.check.kernels`` encoding prover: it returns exactly the
    packed-code / composition-LUT / run-scoring tables the vectorized
    scans gather from, so external checks prove the objects the kernels
    actually run on, not a reconstruction. The bundle is cached and
    shared with the simulation hot path — callers that want to mutate
    tables (mutation tests) must ``copy.deepcopy`` it first.
    """
    return _ops_for(spec)


class _Runs:
    """Maximal same-outcome runs within pattern groups, plus the
    automaton state entering each run (the output of the scan)."""

    __slots__ = ("first", "length", "lcap", "out", "state0", "starts")

    def __init__(self, first, length, lcap, out, state0, starts) -> None:
        self.first = first
        self.length = length
        self.lcap = lcap
        self.out = out
        self.state0 = state0
        self.starts = starts


def _find_runs(out_u8: np.ndarray, grp_new: np.ndarray, ops: _AutomatonOps,
               group_init: Optional[np.ndarray] = None) -> _Runs:
    """Collapse group-sorted outcomes into runs and scan their states.

    ``out_u8`` must be ordered group-major with time order inside each
    group; ``grp_new`` marks each group's first element. Every group's
    automaton starts from ``ops.init`` — unless ``group_init`` (a
    per-record uint8 state array, consulted at each group's first
    record) supplies carried-over states, which is how the streaming
    driver resumes a pattern entry where the previous block left it.
    """
    n = out_u8.shape[0]
    starts = grp_new.copy()
    starts[1:] |= out_u8[1:] != out_u8[:-1]
    first = np.flatnonzero(starts)
    nruns = first.shape[0]
    length = np.empty(nruns, dtype=np.int64)
    if nruns > 1:
        length[:-1] = np.diff(first)
    length[-1] = n - first[-1]
    out = out_u8[first]
    lcap = np.minimum(length, 3)
    code = ops.pow_codes[out, lcap]

    grp_first = grp_new[first]
    prev_code = np.empty(nruns, dtype=np.uint8)
    prev_code[0] = IDENTITY_CODE
    prev_code[1:] = code[:-1]
    # A constant predecessor code pins the state regardless of anything
    # earlier: start a fresh scan segment there with a known init.
    absorbed = ~grp_first & ops.is_const[prev_code]
    absorbed[0] = False
    seg_new = grp_first | absorbed
    seg_new[0] = True
    seg_start = _start_indices(seg_new)
    idx_in_seg = np.arange(nruns, dtype=np.int32) - seg_start
    if group_init is None:
        init_vals = np.full(nruns, ops.init, dtype=np.uint8)
    else:
        init_vals = group_init[first]
    init_run = np.where(absorbed, prev_code & 3, init_vals).astype(np.uint8)[seg_start]

    # Exclusive segmented composition scan (Hillis-Steele doubling):
    # after the loop, H[i] maps a segment's init state to the state
    # entering run i. Only positions >= step into their segment change
    # in an iteration, so each pass touches the (rapidly shrinking)
    # active set instead of the whole array; reading ``H[active-step]``
    # before any write keeps the gather on pre-iteration values, and
    # ``idx_in_seg >= step`` guarantees ``active - step`` stays inside
    # the same segment.
    H = np.empty(nruns, dtype=np.uint8)
    H[0] = IDENTITY_CODE
    H[1:] = code[:-1]
    H[seg_new] = IDENTITY_CODE
    compose_flat = ops.compose_flat
    step = 1
    while True:
        active = np.flatnonzero(idx_in_seg >= step)
        if active.size == 0:
            break
        prior = H[active - step].astype(np.uint16)
        H[active] = compose_flat[(prior << 8) | H[active]]
        step <<= 1
    state0 = ops.apply[H, init_run]
    return _Runs(first, length, lcap, out, state0, starts)


def _runs_wrong_total(runs: _Runs, ops: _AutomatonOps) -> int:
    """Total mispredictions, scored per run in closed form."""
    cell = (runs.out.astype(np.int64) * 4 + runs.state0) * 4
    head = ops.head_wrong.ravel()[cell + runs.lcap]
    tail = (runs.length - runs.lcap) * ops.tail_mis.ravel()[cell >> 2]
    return int(head.sum() + tail.sum())


def _expand_run_preds(n: int, runs: _Runs, ops: _AutomatonOps) -> np.ndarray:
    """Per-record predictions (group-sorted order) from run states."""
    nruns = runs.first.shape[0]
    preds = np.empty((nruns, 4), dtype=np.bool_)
    for j in range(4):
        preds[:, j] = ops.pred4[ops.apply[ops.pow_codes[runs.out, j], runs.state0]]
    run_id = np.cumsum(runs.starts) - 1
    offset = np.minimum(np.arange(n) - runs.first[run_id], 3)
    return preds[run_id, offset]


# ----------------------------------------------------------------------
# Sorting / grouping / history-window helpers
# ----------------------------------------------------------------------

def _stable_argsort(keys: np.ndarray) -> np.ndarray:
    """Stable argsort specialised for small non-negative keys.

    Radix sort on uint16 keys is ~8x faster than comparison sort on
    int64, and two chained stable uint16 passes (LSD radix) cover the
    32-bit range; wider keys fall back to the generic stable sort.
    """
    if keys.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    top = int(keys.max())
    if top < (1 << 16):
        return np.argsort(keys.astype(np.uint16), kind="stable")
    if top < (1 << 32):
        wide = keys.astype(np.uint32)
        low = (wide & np.uint32(0xFFFF)).astype(np.uint16)
        high = (wide >> np.uint32(16)).astype(np.uint16)
        by_low = np.argsort(low, kind="stable")
        by_high = np.argsort(high[by_low], kind="stable")
        return by_low[by_high]
    return np.argsort(keys, kind="stable")


def _group_sort(keys: np.ndarray):
    """``(order, grp_new)``: stable sort by key + group-start marks."""
    order = _stable_argsort(keys)
    key_s = keys[order]
    grp_new = np.empty(key_s.shape[0], dtype=np.bool_)
    grp_new[0] = True
    grp_new[1:] = key_s[1:] != key_s[:-1]
    return order, grp_new


def _start_indices(new_mark: np.ndarray) -> np.ndarray:
    """For each position, the index of its group's first element.

    int32 keeps this (and its downstream arithmetic) at half the memory
    traffic; traces are nowhere near 2**31 records.
    """
    n = new_mark.shape[0]
    return np.maximum.accumulate(
        np.where(new_mark, np.arange(n, dtype=np.int32), np.int32(0))
    )


def _outcome_window(out_u8: np.ndarray, k: int) -> np.ndarray:
    """``W[i]`` = the previous ``k`` outcomes before position ``i``,
    newest in bit 0 (group boundaries handled by the callers' masks)."""
    n = out_u8.shape[0]
    window = np.zeros(n, dtype=np.int32)
    lifted = out_u8.astype(np.int32)
    for back in range(1, k + 1):
        window[back:] += lifted[:-back] << np.int32(back - 1)
    return window


def _fill_extended(window: np.ndarray, since: np.ndarray, fill: np.ndarray, k: int) -> np.ndarray:
    """History-register contents: ``min(since, k)`` window bits with the
    ``fill`` bit extended through the remaining upper positions."""
    mask = np.int32((1 << k) - 1)
    depth = np.minimum(since, np.int32(k))
    low_mask = (np.int32(1) << depth) - np.int32(1)
    return (window & low_mask) | (fill * (mask ^ low_mask))


# ----------------------------------------------------------------------
# The run container
# ----------------------------------------------------------------------

class _Run:
    """Prepared per-call inputs shared by every kernel.

    For whole-trace kernels the defaults apply. The streaming driver
    additionally threads ``prev_epoch`` (the context-switch epoch of the
    previous block's last record, so a flush boundary falling exactly
    between two blocks still fires) and ``fires_base`` (the global flush
    count entering this block, so ``seg_c`` values — and the per-site
    residency stamps derived from them — stay comparable across blocks).
    """

    __slots__ = ("arrays", "n_c", "out_bool", "out_u8", "seg_c", "switches",
                 "aggregate", "warmup", "track_per_site", "_pc_c",
                 "fires_base", "fires_end", "last_epoch", "head_fires",
                 "tail_fires")

    def __init__(self, trace: Trace, context_switches: Optional[ContextSwitchConfig],
                 track_per_site: bool, warmup_branches: int, *,
                 prev_epoch: Optional[int] = None, fires_base: int = 0) -> None:
        arrays = trace.as_arrays()
        self.arrays = arrays
        cond = arrays.cond_mask
        self.out_bool = arrays.taken[cond]
        self.out_u8 = self.out_bool.view(np.uint8)
        self.n_c = int(self.out_bool.shape[0])
        self.warmup = max(int(warmup_branches), 0)
        self.track_per_site = bool(track_per_site)
        self.aggregate = self.warmup == 0 and not self.track_per_site
        self._pc_c = None
        self.fires_base = int(fires_base)
        if context_switches is None or len(arrays) == 0:
            self.switches = 0
            self.seg_c = np.full(self.n_c, self.fires_base, dtype=np.int64)
            self.fires_end = self.fires_base
            self.last_epoch = 0 if prev_epoch is None else int(prev_epoch)
            self.head_fires = 0
            self.tail_fires = 0
            return
        instret = arrays.instret
        if np.any(instret[1:] < instret[:-1]):
            raise KernelUnavailable(
                "instret decreases within the trace; the vectorized "
                "context-switch model requires a non-decreasing clock"
            )
        boundary = np.empty(len(arrays), dtype=np.bool_)
        epoch = instret // context_switches.interval
        boundary[0] = epoch[0] > (0 if prev_epoch is None else prev_epoch)
        boundary[1:] = epoch[1:] > epoch[:-1]
        fires = boundary | arrays.trap if context_switches.switch_on_traps else boundary
        self.switches = int(np.count_nonzero(fires))
        fires_cum = np.cumsum(fires)
        total_fires = int(fires_cum[-1])
        self.seg_c = self.fires_base + fires_cum[cond]
        self.fires_end = self.fires_base + total_fires
        self.last_epoch = int(epoch[-1])
        if self.n_c:
            self.head_fires = int(self.seg_c[0]) - self.fires_base
            self.tail_fires = total_fires - (int(self.seg_c[-1]) - self.fires_base)
        else:
            self.head_fires = total_fires
            self.tail_fires = total_fires

    @property
    def pc_c(self) -> np.ndarray:
        if self._pc_c is None:
            self._pc_c = self.arrays.pc[self.arrays.cond_mask]
        return self._pc_c


def _scan_scheme(run: _Run, out_sorted: np.ndarray, grp_new: np.ndarray,
                 order: np.ndarray, ops: _AutomatonOps):
    """Shared tail of every pattern-table scheme: scan, then either
    closed-form aggregate scoring or per-record expansion."""
    runs = _find_runs(out_sorted, grp_new, ops)
    if run.aggregate:
        return run.n_c - _runs_wrong_total(runs, ops)
    pred_sorted = _expand_run_preds(run.n_c, runs, ops)
    pred = np.empty(run.n_c, dtype=np.bool_)
    pred[order] = pred_sorted
    return pred


# ----------------------------------------------------------------------
# Global-history schemes: GAg, GSg, gshare, GAp
# ----------------------------------------------------------------------

def _global_history(run: _Run, k: int, fill_taken: bool) -> np.ndarray:
    """The GHR value before each conditional record, per segment."""
    seg = run.seg_c
    n = run.n_c
    new_seg = np.empty(n, dtype=np.bool_)
    new_seg[0] = True
    new_seg[1:] = seg[1:] != seg[:-1]
    since = np.arange(n, dtype=np.int32) - _start_indices(new_seg)
    window = _outcome_window(run.out_u8, k)
    fill = np.int32(1) if fill_taken else np.int32(0)
    return _fill_extended(window, since, fill, k)


def _kernel_gag(predictor: GAgPredictor):
    ops = _ops_for(predictor.automaton)
    k = predictor.history_bits

    def kernel(run: _Run):
        order, grp_new = _group_sort(_global_history(run, k, fill_taken=True))
        return _scan_scheme(run, run.out_u8[order], grp_new, order, ops)

    return kernel


def _kernel_gshare(predictor: GsharePredictor):
    ops = _ops_for(predictor.automaton)
    k = predictor.history_bits

    def kernel(run: _Run):
        ghr = _global_history(run, k, fill_taken=False)
        keys = (ghr ^ run.pc_c) & ((1 << k) - 1)
        order, grp_new = _group_sort(keys)
        return _scan_scheme(run, run.out_u8[order], grp_new, order, ops)

    return kernel


def _kernel_gap(predictor: GApPredictor):
    ops = _ops_for(predictor.automaton)
    k = predictor.history_bits

    def kernel(run: _Run):
        ghr = _global_history(run, k, fill_taken=True)
        _sites, ids = run.arrays.conditional_site_ids()
        order, grp_new = _group_sort((ids << k) | ghr)
        return _scan_scheme(run, run.out_u8[order], grp_new, order, ops)

    return kernel


def _kernel_gsg(predictor: GSgPredictor):
    bits = np.asarray(predictor.table.bits_snapshot(), dtype=np.bool_)
    k = predictor.history_bits

    def kernel(run: _Run):
        return bits[_global_history(run, k, fill_taken=True)]

    return kernel


def _kernel_gselect(predictor: GselectPredictor):
    ops = _ops_for(predictor.pht.automaton)
    k = predictor.history_bits
    addr_mask = (1 << predictor.address_bits) - 1

    def kernel(run: _Run):
        ghr = _global_history(run, k, fill_taken=True)
        keys = ((run.pc_c & addr_mask) << k) | ghr
        order, grp_new = _group_sort(keys)
        return _scan_scheme(run, run.out_u8[order], grp_new, order, ops)

    return kernel


# ----------------------------------------------------------------------
# Per-address first level: PAg, PSg, PAp, BTB
# ----------------------------------------------------------------------

class _Layout:
    """Conditional records regrouped by BHT residency.

    ``order`` stable-sorts conditional records by site key (dense pc id
    for the ideal BHT, set index for direct-mapped), which is exactly
    (site, time) order. An *episode* is one entry's tenure: it restarts
    at segment changes (flush) and, for direct-mapped tables, whenever a
    different branch claims the set. ``evict`` marks episode starts that
    displace a still-valid occupant (never true right after a flush).
    """

    __slots__ = ("order", "out_s", "ep_new", "ep_start", "m", "blk_new", "evict")

    def __init__(self, order, out_s, ep_new, ep_start, m, blk_new, evict) -> None:
        self.order = order
        self.out_s = out_s
        self.ep_new = ep_new
        self.ep_start = ep_start
        self.m = m
        self.blk_new = blk_new
        self.evict = evict


def _pa_layout(run: _Run, bht) -> _Layout:
    n = run.n_c
    if isinstance(bht, IdealBHT):
        _sites, keys = run.arrays.conditional_site_ids()
        direct = False
    elif bht.associativity > 1:
        return _assoc_layout(run, bht)
    else:
        keys = run.pc_c % bht.num_sets
        direct = True
    order = _stable_argsort(keys)
    key_s = keys[order]
    seg_s = run.seg_c[order]
    out_s = run.out_u8[order]
    blk_new = np.empty(n, dtype=np.bool_)
    blk_new[0] = True
    blk_new[1:] = key_s[1:] != key_s[:-1]
    seg_chg = np.empty(n, dtype=np.bool_)
    seg_chg[0] = True
    seg_chg[1:] = seg_s[1:] != seg_s[:-1]
    seg_chg |= blk_new
    if direct:
        pc_s = run.pc_c[order]
        pc_chg = np.empty(n, dtype=np.bool_)
        pc_chg[0] = True
        pc_chg[1:] = pc_s[1:] != pc_s[:-1]
        ep_new = seg_chg | pc_chg
        evict = pc_chg & ~seg_chg
    else:
        ep_new = seg_chg
        evict = np.zeros(n, dtype=np.bool_)
    ep_start = _start_indices(ep_new)
    m = np.arange(n, dtype=np.int32) - ep_start
    return _Layout(order, out_s, ep_new, ep_start, m, blk_new, evict)


def _pa_patterns(layout: _Layout, k: int) -> np.ndarray:
    """Per-address history-register contents before each record.

    The register fills with the episode's first outcome on the first
    update and shifts afterwards, so before occurrence ``m >= 1`` it
    holds the last ``min(m, k)`` episode outcomes extended with the
    first outcome; before occurrence 0 the predictors read the all-ones
    pattern a miss would be allocated with.
    """
    mask = (1 << k) - 1
    window = _outcome_window(layout.out_s, k)
    first_outcome = layout.out_s[layout.ep_start].astype(np.int32)
    patterns = _fill_extended(window, layout.m, first_outcome, k)
    patterns[layout.m == 0] = mask
    return patterns


def _lru_metadata(run: _Run, bht: CacheBHT, order1: np.ndarray):
    """Replay every set's LRU way array over the (set, time)-sorted
    conditional records.

    Returns per-record arrays in ``order1`` order: ``miss`` (the access
    allocated its entry), ``evict`` (the allocation displaced a valid
    occupant), and ``way`` (the physical way the record's entry lives
    in). The model mirrors :meth:`repro.core.history.CacheBHT.access`
    exactly: hits refresh recency, misses claim the first invalid way by
    index (else the true-LRU victim), and a flush invalidates every way
    while keeping its tag and recency — only ``access`` ticks the clock,
    so recency order is conditional-record order.

    Consecutive records of one set with the same tag and segment
    collapse into a single *event* (everything after the first is a
    guaranteed hit on the way just touched, and only the last touch's
    recency survives). Events partition into *epochs* — one set's
    tenure between flushes — and epochs are independent: a flush
    invalidates every way, allocations claim invalid ways by index
    before consulting recency, and hits require validity, so neither
    the retained tags nor the pre-flush recency can ever influence a
    later epoch.

    Within an epoch that touches at most ``associativity`` distinct
    branches nothing is ever displaced: every first touch allocates the
    next invalid way (fill order), every later touch hits, and
    ``evict`` never fires. That is the common case for the paper's
    geometries (hundreds of sets, a handful of resident branches each)
    and is computed with pure array passes below. Only epochs with more
    distinct branches than ways — where true LRU replacement decides —
    take the event-serial round loop, restricted to exactly those
    epochs: round ``r`` processes the ``r``-th event of every still-live
    contended epoch at once with 2-D way arrays.
    """
    n = run.n_c
    assoc = bht.associativity
    set_s = (run.pc_c % bht.num_sets)[order1]
    tag_s = (run.pc_c // bht.num_sets)[order1]
    seg_s = run.seg_c[order1]

    set_chg = np.empty(n, dtype=np.bool_)
    set_chg[0] = True
    set_chg[1:] = set_s[1:] != set_s[:-1]
    ev_new = set_chg.copy()
    ev_new[1:] |= (tag_s[1:] != tag_s[:-1]) | (seg_s[1:] != seg_s[:-1])
    ev_first = np.flatnonzero(ev_new)
    n_ev = ev_first.shape[0]
    ev_tag = tag_s[ev_first]
    ev_seg = seg_s[ev_first]

    # Epoch boundaries: a new set, or a segment change within the set.
    ep_new = set_chg[ev_first].copy()
    ep_new[0] = True
    ep_new[1:] |= ev_seg[1:] != ev_seg[:-1]
    ep_id = np.cumsum(ep_new, dtype=np.int64) - 1
    n_ep = int(ep_id[-1]) + 1

    # First touch of each (epoch, tag) group: a stable sort by tag then
    # by (already monotone) epoch puts each group's events in time
    # order with the first touch leading. Epochs never span sets, so
    # tag alone identifies the branch within a group.
    by_tag = _stable_argsort(ev_tag)
    gorder = by_tag[_stable_argsort(ep_id[by_tag])]
    g_ep = ep_id[gorder]
    g_tag = ev_tag[gorder]
    gnew = np.empty(n_ev, dtype=np.bool_)
    gnew[0] = True
    gnew[1:] = (g_ep[1:] != g_ep[:-1]) | (g_tag[1:] != g_tag[:-1])
    is_first = np.zeros(n_ev, dtype=np.bool_)
    first_idx = gorder[gnew]
    is_first[first_idx] = True

    ev_miss = is_first.copy()
    ev_evict = np.zeros(n_ev, dtype=np.bool_)
    # Fill order: the d-th distinct branch of an epoch lands in way d.
    touched = np.cumsum(is_first)  # inclusive count of first touches
    ep_start_ev = _start_indices(ep_new)
    fill = touched - touched[ep_start_ev]  # epoch starts are first touches
    grp_id_g = np.cumsum(gnew, dtype=np.int64) - 1
    grp_id = np.empty(n_ev, dtype=np.int64)
    grp_id[gorder] = grp_id_g
    grp_way = np.empty(int(grp_id_g[-1]) + 1, dtype=np.int64)
    grp_way[grp_id[first_idx]] = fill[first_idx]
    ev_way = grp_way[grp_id]

    distinct = np.bincount(ep_id[is_first], minlength=n_ep)
    contended = distinct > assoc
    if np.any(contended):
        ep_first = np.flatnonzero(ep_new)
        ep_end = np.empty(n_ep, dtype=np.int64)
        ep_end[:-1] = ep_first[1:]
        ep_end[-1] = n_ev
        c_start = ep_first[contended]
        c_end = ep_end[contended]
        n_live = c_start.shape[0]

        way_tag = np.full((n_live, assoc), -1, dtype=np.int64)
        way_rec = np.full((n_live, assoc), -1, dtype=np.int64)
        way_valid = np.zeros((n_live, assoc), dtype=np.bool_)

        far = np.iinfo(np.int64).max
        cursor = c_start.copy()
        alive = np.arange(n_live, dtype=np.int64)
        while alive.size:
            e = cursor[alive]
            valid = way_valid[alive]
            hits = valid & (way_tag[alive] == ev_tag[e, None])
            hit = hits.any(axis=1)
            invalid_any = ~valid.all(axis=1)
            lru = np.argmin(np.where(valid, way_rec[alive], far), axis=1)
            way = np.where(
                hit, np.argmax(hits, axis=1),
                np.where(invalid_any, np.argmax(~valid, axis=1), lru),
            )
            ev_miss[e] = miss = ~hit
            ev_evict[e] = miss & ~invalid_any
            ev_way[e] = way
            way_tag[alive, way] = ev_tag[e]
            way_rec[alive, way] = e  # event index: monotone in time per set
            way_valid[alive, way] = True
            cursor[alive] += 1
            alive = alive[cursor[alive] < c_end[alive]]

    # Expand events back to records: miss/evict fire only on an event's
    # first record; every record inherits its event's way.
    miss_r = np.zeros(n, dtype=np.bool_)
    evict_r = np.zeros(n, dtype=np.bool_)
    miss_r[ev_first] = ev_miss
    evict_r[ev_first] = ev_evict
    way_r = ev_way[np.cumsum(ev_new) - 1]
    return miss_r, evict_r, way_r


def _assoc_layout(run: _Run, bht: CacheBHT) -> _Layout:
    """The :class:`_Layout` for a set-associative :class:`CacheBHT`.

    Records regroup by *physical slot* (set x associativity + way) —
    the unit PAp hangs a pattern table off — with episodes opened by
    every BHT miss (an allocation reinitialises the entry, and every
    post-flush access misses, so miss marks subsume flush boundaries).
    """
    n = run.n_c
    order1 = _stable_argsort(run.pc_c % bht.num_sets)
    miss_r, evict_r, way_r = _lru_metadata(run, bht, order1)
    # A stable way-sort of the (set, time)-ordered records yields
    # (set, way, time) == (slot, time) order.
    order2 = _stable_argsort(way_r)
    order = order1[order2]
    out_s = run.out_u8[order]
    ep_new = miss_r[order2]
    evict = evict_r[order2]
    slot_s = (run.pc_c[order] % bht.num_sets) * bht.associativity + way_r[order2]
    blk_new = np.empty(n, dtype=np.bool_)
    blk_new[0] = True
    blk_new[1:] = slot_s[1:] != slot_s[:-1]
    ep_start = _start_indices(ep_new)
    m = np.arange(n, dtype=np.int32) - ep_start
    return _Layout(order, out_s, ep_new, ep_start, m, blk_new, evict)


def _supported_bht(bht) -> bool:
    """Batch kernels model any BHT geometry the simulator builds."""
    return isinstance(bht, (IdealBHT, CacheBHT))


def _stream_supported_bht(bht) -> bool:
    """Streaming kernels carry one entry per site key across blocks,
    which identifies sets with occupants — sound only for the ideal and
    direct-mapped tables. Set-associative configs take the whole-trace
    batch kernels (or the interpreted streaming loop)."""
    if isinstance(bht, IdealBHT):
        return True
    return isinstance(bht, CacheBHT) and bht.associativity == 1


def _kernel_pag(predictor: PAgPredictor):
    ops = _ops_for(predictor.automaton)
    k = predictor.history_bits
    bht = predictor.bht

    def kernel(run: _Run):
        layout = _pa_layout(run, bht)
        patterns_s = _pa_patterns(layout, k)
        patterns = np.empty(run.n_c, dtype=np.int32)
        patterns[layout.order] = patterns_s
        order, grp_new = _group_sort(patterns)
        return _scan_scheme(run, run.out_u8[order], grp_new, order, ops)

    return kernel


def _kernel_psg(predictor: PSgPredictor):
    bits = np.asarray(predictor.table.bits_snapshot(), dtype=np.bool_)
    k = predictor.history_bits
    bht = predictor.bht

    def kernel(run: _Run):
        layout = _pa_layout(run, bht)
        pred = np.empty(run.n_c, dtype=np.bool_)
        pred[layout.order] = bits[_pa_patterns(layout, k)]
        return pred

    return kernel


def _kernel_pap(predictor: PApPredictor):
    ops = _ops_for(predictor.automaton)
    k = predictor.history_bits
    bht = predictor.bht
    reset_on_evict = predictor.config.reset_pht_on_evict

    def kernel(run: _Run):
        layout = _pa_layout(run, bht)
        patterns_s = _pa_patterns(layout, k)
        if isinstance(bht, IdealBHT):
            # Every (segment, branch) episode opens a brand-new slot
            # whose pattern table materialises in the initial state.
            table_id = np.cumsum(layout.ep_new) - 1
        elif reset_on_evict:
            # A slot's table is reinitialised when a valid occupant is
            # displaced; flushes invalidate without resetting tables.
            table_id = np.cumsum(layout.blk_new | layout.evict) - 1
        else:
            table_id = np.cumsum(layout.blk_new) - 1
        # Sorting by (table, pattern) from the site-sorted order keeps
        # time order inside each group (a table's records live within
        # one site block, where this order is already chronological).
        keys = (table_id << k) | patterns_s
        order2, grp_new = _group_sort(keys)
        order = layout.order[order2]
        return _scan_scheme(run, layout.out_s[order2], grp_new, order, ops)

    return kernel


def _kernel_btb(predictor: BTBPredictor):
    ops = _ops_for(predictor.automaton)
    bht = predictor.bht

    def kernel(run: _Run):
        layout = _pa_layout(run, bht)
        return _scan_scheme(run, layout.out_s, layout.ep_new, layout.order, ops)

    return kernel


# ----------------------------------------------------------------------
# Per-set first level: SAg, SAs
# ----------------------------------------------------------------------

def _perset_patterns(run: _Run, num_sets: int, k: int):
    """``(order1, set_s, patterns_s)`` for the per-set shift registers.

    Registers are untagged — selected by an address field, never fresh —
    so their contents are simply the last ``min(d, k)`` outcomes of the
    (set, segment) episode extended with the all-ones initialisation the
    registers (re)start from (``d`` = records since the segment began in
    that set). No miss protocol: the first access after (re)init reads
    the all-ones pattern and shifts normally afterwards.
    """
    n = run.n_c
    sets = (run.pc_c >> 2) % num_sets
    order1 = _stable_argsort(sets)
    set_s = sets[order1]
    seg_s = run.seg_c[order1]
    out_s = run.out_u8[order1]
    ep_new = np.empty(n, dtype=np.bool_)
    ep_new[0] = True
    ep_new[1:] = (set_s[1:] != set_s[:-1]) | (seg_s[1:] != seg_s[:-1])
    since = np.arange(n, dtype=np.int32) - _start_indices(ep_new)
    window = _outcome_window(out_s, k)
    patterns_s = _fill_extended(window, since, np.int32(1), k)
    return order1, set_s, out_s, patterns_s


def _kernel_sag(predictor: SAgPredictor):
    ops = _ops_for(predictor.pht.automaton)
    k = predictor.history_bits
    num_sets = predictor.num_sets

    def kernel(run: _Run):
        order1, _set_s, _out_s, patterns_s = _perset_patterns(run, num_sets, k)
        patterns = np.empty(run.n_c, dtype=np.int32)
        patterns[order1] = patterns_s
        order, grp_new = _group_sort(patterns)
        return _scan_scheme(run, run.out_u8[order], grp_new, order, ops)

    return kernel


def _kernel_sas(predictor: SAsPredictor):
    ops = _ops_for(predictor.tables[0].automaton)
    k = predictor.history_bits
    num_sets = predictor.num_sets

    def kernel(run: _Run):
        order1, set_s, out_s, patterns_s = _perset_patterns(run, num_sets, k)
        # (set, pattern) keys from the set-sorted order keep time order
        # inside each per-set table group (cf. the PAp kernel).
        keys = (set_s.astype(np.int64) << k) | patterns_s
        order2, grp_new = _group_sort(keys)
        order = order1[order2]
        return _scan_scheme(run, out_s[order2], grp_new, order, ops)

    return kernel


# ----------------------------------------------------------------------
# Hybrid schemes: tournament
# ----------------------------------------------------------------------

CHOOSER_AUTOMATON = saturating_counter(2, initial=1)
"""The tournament chooser as an automaton: a 2-bit saturating counter
started weakly favouring the first component, stepped toward whichever
component was correct (input = "second component was right"), predicting
"use the second component" in its upper half. Exported so the
``repro.check.kernels`` prover can verify its packed encoding alongside
the paper automata."""


def _per_record_preds(kernel, run: _Run) -> np.ndarray:
    """Run a component kernel forcing per-record predictions (the
    tournament needs both components' guesses even when the outer run
    could aggregate)."""
    saved = run.aggregate
    run.aggregate = False
    try:
        return kernel(run)
    finally:
        run.aggregate = saved


def _kernel_tournament(predictor: TournamentPredictor):
    first_kernel = _kernel_for(predictor.first)
    second_kernel = _kernel_for(predictor.second)
    if first_kernel is None or second_kernel is None:
        return None
    ops = _ops_for(CHOOSER_AUTOMATON)
    cmask = predictor.chooser_mask

    def kernel(run: _Run):
        p1 = _per_record_preds(first_kernel, run)
        p2 = _per_record_preds(second_kernel, run)
        pred = p1.copy()
        d = np.flatnonzero(p1 != p2)
        if d.size:
            # Choosers step only on disagreement, keyed by pc, and are
            # never flushed — one scan over the disagreement records
            # with input "second component was correct" yields each
            # record's pre-update chooser verdict.
            second_correct = p2[d] == run.out_bool[d]
            order, grp_new = _group_sort(run.pc_c[d] & cmask)
            runs = _find_runs(second_correct.view(np.uint8)[order], grp_new, ops)
            use_second = np.empty(d.size, dtype=np.bool_)
            use_second[order] = _expand_run_preds(d.size, runs, ops)
            pred[d] = np.where(use_second, p2[d], p1[d])
        return pred

    return kernel


# ----------------------------------------------------------------------
# Static schemes
# ----------------------------------------------------------------------

def _kernel_constant(direction: bool):
    def kernel(run: _Run):
        return np.full(run.n_c, direction, dtype=np.bool_)

    return kernel


def _kernel_btfn(predictor: BTFN):
    unknown = predictor.unknown_direction

    def kernel(run: _Run):
        target_c = run.arrays.target[run.arrays.cond_mask]
        return np.where(target_c == 0, unknown, target_c < run.pc_c)

    return kernel


def _kernel_profile(predictor: ProfileGuided):
    directions = predictor.directions_snapshot()
    default = predictor.default_direction

    def kernel(run: _Run):
        sites, ids = run.arrays.conditional_site_ids()
        site_dirs = np.fromiter(
            (directions.get(int(site), default) for site in sites),
            dtype=np.bool_,
            count=sites.shape[0],
        )
        return site_dirs[ids]

    return kernel


# ----------------------------------------------------------------------
# Dispatch + public API
# ----------------------------------------------------------------------

def _kernel_for(predictor):
    """The kernel closure for ``predictor``, or None when unsupported.

    Dispatch is on the *exact* type: a subclass may override predict or
    update semantics the kernels hard-code.
    """
    kind = type(predictor)
    if kind is AlwaysTaken:
        return _kernel_constant(True)
    if kind is AlwaysNotTaken:
        return _kernel_constant(False)
    if kind is BTFN:
        return _kernel_btfn(predictor)
    if kind is ProfileGuided:
        return _kernel_profile(predictor)

    def scannable(spec: AutomatonSpec) -> bool:
        return supports_vector_scan(spec)

    def k_ok(bits: int) -> bool:
        return bits <= _MAX_HISTORY_BITS

    if kind is GAgPredictor and scannable(predictor.automaton) and k_ok(predictor.history_bits):
        return _kernel_gag(predictor)
    if kind is GsharePredictor and scannable(predictor.automaton) and k_ok(predictor.history_bits):
        return _kernel_gshare(predictor)
    if kind is GApPredictor and scannable(predictor.automaton) and k_ok(predictor.history_bits):
        return _kernel_gap(predictor)
    if kind is GSgPredictor and k_ok(predictor.history_bits):
        return _kernel_gsg(predictor)
    if kind is PAgPredictor and scannable(predictor.automaton) \
            and k_ok(predictor.history_bits) and _supported_bht(predictor.bht):
        return _kernel_pag(predictor)
    if kind is PSgPredictor and k_ok(predictor.history_bits) and _supported_bht(predictor.bht):
        return _kernel_psg(predictor)
    if kind is PApPredictor and scannable(predictor.automaton) \
            and k_ok(predictor.history_bits) and _supported_bht(predictor.bht):
        return _kernel_pap(predictor)
    if kind is BTBPredictor and scannable(predictor.automaton) and _supported_bht(predictor.bht):
        return _kernel_btb(predictor)
    if kind is SAgPredictor and scannable(predictor.pht.automaton) and k_ok(predictor.history_bits):
        return _kernel_sag(predictor)
    if kind is SAsPredictor and scannable(predictor.tables[0].automaton) \
            and k_ok(predictor.history_bits):
        return _kernel_sas(predictor)
    if kind is GselectPredictor and scannable(predictor.pht.automaton) \
            and k_ok(predictor.history_bits + predictor.address_bits):
        return _kernel_gselect(predictor)
    if kind is TournamentPredictor and scannable(CHOOSER_AUTOMATON):
        return _kernel_tournament(predictor)
    return None


def kernel_supports(predictor) -> bool:
    """Whether :func:`simulate_vectorized` can replay ``predictor``.

    True for every scheme in the paper registry — the table-driven
    two-level configurations with ideal, direct-mapped *or*
    set-associative first levels, the BTB designs, the static schemes,
    and the hybrid/per-set extensions (tournament, gselect, SAg/SAs) —
    as long as the automata involved have <= 4 states and stabilise
    within three repeats (all of LT, A1-A4, the preset bit and the
    tournament chooser do). False only for exotic automaton extensions,
    over-long history registers, subclassed predictor types (dispatch is
    exact-type), and tournaments whose components are themselves
    unsupported — those run through the interpreted loop instead.
    """
    return _kernel_for(predictor) is not None


def simulate_vectorized(
    predictor,
    trace: Trace,
    context_switches: Optional[ContextSwitchConfig] = None,
    track_per_site: bool = False,
    warmup_branches: int = 0,
) -> SimulationResult:
    """Batch-replay ``trace`` through a vectorized model of ``predictor``.

    Bit-identical to :func:`repro.sim.engine.simulate` for every
    supported predictor, *assuming a freshly-constructed predictor*
    (kernels model initial tables; they neither read nor write the
    predictor's mutable state, so the instance is untouched afterwards).

    Raises:
        KernelUnavailable: when no kernel covers the predictor, or the
            trace breaks a kernel precondition (decreasing ``instret``
            with context switches enabled).
    """
    kernel = _kernel_for(predictor)
    if kernel is None:
        raise KernelUnavailable(
            f"no vectorized kernel for {getattr(predictor, 'name', type(predictor).__name__)}"
        )
    run = _Run(trace, context_switches, track_per_site, warmup_branches)
    per_seen: Optional[Dict[int, int]] = None
    per_wrong: Optional[Dict[int, int]] = None
    if run.n_c == 0:
        correct = 0
        if run.track_per_site:
            per_seen, per_wrong = {}, {}
    else:
        outcome = kernel(run)
        if isinstance(outcome, (int, np.integer)):
            correct = int(outcome)
        else:
            correct, per_seen, per_wrong = _score_predictions(run, outcome)
    scored = max(run.n_c - run.warmup, 0)
    return SimulationResult(
        predictor_name=predictor.name,
        trace_name=trace.meta.name,
        dataset=trace.meta.dataset,
        conditional_branches=scored,
        correct_predictions=correct,
        context_switches=run.switches,
        per_site_executions=per_seen,
        per_site_mispredictions=per_wrong,
        total_instructions=trace.meta.total_instructions,
    )


def _score_predictions(run: _Run, pred: np.ndarray):
    """Score per-record predictions against outcomes, honouring warmup
    and (optionally) collecting the per-site dictionaries."""
    ok = pred == run.out_bool
    scored_ok = ok[run.warmup:]
    correct = int(np.count_nonzero(scored_ok))
    if not run.track_per_site:
        return correct, None, None
    sites, ids = run.arrays.conditional_site_ids()
    scored_ids = ids[run.warmup:]
    seen = np.bincount(scored_ids, minlength=sites.shape[0])
    wrong = np.bincount(scored_ids[~scored_ok], minlength=sites.shape[0])
    per_seen = {int(sites[i]): int(seen[i]) for i in np.flatnonzero(seen)}
    per_wrong = {int(sites[i]): int(wrong[i]) for i in np.flatnonzero(wrong)}
    return correct, per_seen, per_wrong


# ----------------------------------------------------------------------
# Streaming kernels: per-block passes with explicit state handoff
# ----------------------------------------------------------------------
#
# The whole-trace kernels above exploit one global fact: every pattern
# entry starts from the automaton's initial state, so a single sort and
# scan covers the trace. Streaming breaks that fact — a block sees
# pattern entries, history registers, and BHT residencies mid-life. The
# classes below make the carried state explicit:
#
# * pattern tables persist as dense uint8 state arrays (or per-site
#   arrays for GAp); each block gathers the stored state at every
#   group's first record (``group_init``), scans, and scatters the
#   groups' final states back;
# * the global history register is carried as an integer and spliced
#   into the first ``min(len, k)`` records of a block whose leading
#   segment continues across the boundary;
# * per-address registers / BTB entries are carried in a dict keyed by
#   site (real pc for the ideal BHT, set index for direct-mapped),
#   stamped with the global flush count at the site's last occurrence —
#   a stamp mismatch at the next occurrence means a flush intervened,
#   which invalidates the entry exactly like the sequential model.
#
# Context-switch bookkeeping stays on absolute ``instret // interval``
# epochs threaded through ``_Run`` (``prev_epoch`` / ``fires_base``), so
# block boundaries can never shift a flush — the same guarantee the
# interpreted engine's absolute ``next_switch`` arithmetic provides.

def _group_final_states(runs: _Runs, grp_new: np.ndarray, ops: _AutomatonOps) -> np.ndarray:
    """Each group's automaton state after its last update, in group
    order (one value per True in ``grp_new``)."""
    grp_first_runs = grp_new[runs.first]
    nruns = runs.first.shape[0]
    last = np.empty(nruns, dtype=np.bool_)
    last[:-1] = grp_first_runs[1:]
    last[-1] = True
    idx = np.flatnonzero(last)
    codes = ops.pow_codes[runs.out[idx], runs.lcap[idx]]
    return ops.apply[codes, runs.state0[idx]]


def _scan_with_store(run: _Run, keys: np.ndarray, store: np.ndarray,
                     ops: _AutomatonOps):
    """One block's pattern-table pass against a persistent dense store.

    Groups the block's conditional records by ``keys`` (pattern-table
    index), seeds each group's scan with the stored entry state, commits
    every touched entry's final state back into ``store``, and returns
    either the closed-form correct count or per-record predictions in
    trace order.
    """
    order, grp_new = _group_sort(keys)
    key_s = keys[order]
    out_sorted = run.out_u8[order]
    starts = np.flatnonzero(grp_new)
    start_keys = key_s[starts]
    group_init = np.zeros(run.n_c, dtype=np.uint8)
    group_init[starts] = store[start_keys]
    runs = _find_runs(out_sorted, grp_new, ops, group_init=group_init)
    store[start_keys] = _group_final_states(runs, grp_new, ops)
    if run.aggregate:
        return run.n_c - _runs_wrong_total(runs, ops)
    pred_sorted = _expand_run_preds(run.n_c, runs, ops)
    pred = np.empty(run.n_c, dtype=np.bool_)
    pred[order] = pred_sorted
    return pred


class _GlobalHistoryCarry:
    """The global history register carried across blocks.

    ``reg`` starts at the predictor's reset value (fill bit replicated),
    which is also what a flush restores — so the first block and every
    post-flush head share one code path: a block whose leading segment
    continues splices ``reg`` into its first ``min(len, k)`` records.
    """

    __slots__ = ("k", "mask", "fill_bit", "reg")

    def __init__(self, k: int, fill_taken: bool) -> None:
        self.k = k
        self.mask = (1 << k) - 1
        self.fill_bit = 1 if fill_taken else 0
        self.reg = self.mask if fill_taken else 0

    def patterns(self, run: _Run) -> np.ndarray:
        """GHR contents before each of the block's conditional records."""
        n = run.n_c
        seg = run.seg_c
        new_seg = np.empty(n, dtype=np.bool_)
        new_seg[0] = run.head_fires > 0
        new_seg[1:] = seg[1:] != seg[:-1]
        since = np.arange(n, dtype=np.int32) - _start_indices(new_seg)
        window = _outcome_window(run.out_u8, self.k)
        ghr = _fill_extended(window, since, np.int32(self.fill_bit), self.k)
        if not new_seg[0]:
            # The leading segment continues the previous block: its
            # first min(len, k) records still see carried register bits
            # above the block-local window bits.
            head_len = int(np.argmax(new_seg)) if bool(new_seg.any()) else n
            span = min(head_len, self.k)
            j = np.arange(span, dtype=np.int64)
            local = window[:span].astype(np.int64) & ((np.int64(1) << j) - 1)
            ghr[:span] = ((np.int64(self.reg) << j) | local) & self.mask
        return ghr

    def advance(self, run: _Run, ghr: Optional[np.ndarray]) -> None:
        """Roll ``reg`` past the block (flushes happen *before* the
        record they fire at, so a trailing flush resets the register
        only when it lands strictly after the last conditional)."""
        if run.n_c and run.tail_fires == 0:
            self.reg = ((int(ghr[-1]) << 1) | int(run.out_u8[-1])) & self.mask
        elif run.tail_fires > 0:
            self.reg = self.mask if self.fill_bit else 0


class _StreamStateless:
    """Per-block wrapper for kernels with no cross-block state (the
    static schemes and the preset-table second levels)."""

    __slots__ = ("_kernel",)

    def __init__(self, kernel) -> None:
        self._kernel = kernel

    def process(self, run: _Run):
        if run.n_c == 0:
            return 0
        return self._kernel(run)


class _StreamGlobalScan:
    """Streamed GAg (keys = GHR) / gshare (keys = GHR xor pc)."""

    __slots__ = ("ops", "k", "xor_pc", "hist", "pht")

    def __init__(self, predictor, xor_pc: bool) -> None:
        self.ops = _ops_for(predictor.automaton)
        self.k = predictor.history_bits
        self.xor_pc = xor_pc
        self.hist = _GlobalHistoryCarry(self.k, fill_taken=not xor_pc)
        self.pht = np.full(1 << self.k, self.ops.init, dtype=np.uint8)

    def process(self, run: _Run):
        if run.n_c == 0:
            self.hist.advance(run, None)
            return 0
        ghr = self.hist.patterns(run)
        if self.xor_pc:
            keys = (ghr ^ run.pc_c) & ((1 << self.k) - 1)
        else:
            keys = ghr
        result = _scan_with_store(run, keys, self.pht, self.ops)
        self.hist.advance(run, ghr)
        return result


class _StreamGSg:
    """Streamed GSg: preset bits read under the carried GHR."""

    __slots__ = ("bits", "hist")

    def __init__(self, predictor: GSgPredictor) -> None:
        self.bits = np.asarray(predictor.table.bits_snapshot(), dtype=np.bool_)
        self.hist = _GlobalHistoryCarry(predictor.history_bits, fill_taken=True)

    def process(self, run: _Run):
        if run.n_c == 0:
            self.hist.advance(run, None)
            return 0
        ghr = self.hist.patterns(run)
        self.hist.advance(run, ghr)
        return self.bits[ghr]


class _StreamGAp:
    """Streamed GAp: carried GHR + one dense per-site pattern table."""

    __slots__ = ("ops", "k", "hist", "tables")

    def __init__(self, predictor: GApPredictor) -> None:
        self.ops = _ops_for(predictor.automaton)
        self.k = predictor.history_bits
        self.hist = _GlobalHistoryCarry(self.k, fill_taken=True)
        self.tables: Dict[int, np.ndarray] = {}

    def process(self, run: _Run):
        if run.n_c == 0:
            self.hist.advance(run, None)
            return 0
        ghr = self.hist.patterns(run)
        sites, ids = run.arrays.conditional_site_ids()
        keys = (ids.astype(np.int64) << self.k) | ghr
        order, grp_new = _group_sort(keys)
        key_s = keys[order]
        out_sorted = run.out_u8[order]
        starts = np.flatnonzero(grp_new)
        start_keys = key_s[starts]
        # Group starts are key-sorted, so each site's groups are
        # contiguous: one searchsorted gives per-site slices.
        site_of = (start_keys >> self.k).astype(np.int64)
        patt_of = (start_keys & np.int64((1 << self.k) - 1)).astype(np.int64)
        bounds = np.searchsorted(site_of, np.arange(sites.shape[0] + 1))
        group_init = np.zeros(run.n_c, dtype=np.uint8)
        tbls = []
        for si in range(sites.shape[0]):
            tbl = self.tables.get(int(sites[si]))
            if tbl is None:
                tbl = self.tables[int(sites[si])] = np.full(
                    1 << self.k, self.ops.init, dtype=np.uint8
                )
            tbls.append(tbl)
            a, b = int(bounds[si]), int(bounds[si + 1])
            group_init[starts[a:b]] = tbl[patt_of[a:b]]
        runs = _find_runs(out_sorted, grp_new, self.ops, group_init=group_init)
        finals = _group_final_states(runs, grp_new, self.ops)
        for si in range(sites.shape[0]):
            a, b = int(bounds[si]), int(bounds[si + 1])
            tbls[si][patt_of[a:b]] = finals[a:b]
        if run.aggregate:
            result = run.n_c - _runs_wrong_total(runs, self.ops)
        else:
            pred_sorted = _expand_run_preds(run.n_c, runs, self.ops)
            pred = np.empty(run.n_c, dtype=np.bool_)
            pred[order] = pred_sorted
            result = pred
        self.hist.advance(run, ghr)
        return result


class _StreamLayout:
    """One block's conditional records in (site, time) order, plus which
    leading site occurrences continue a carried BHT entry."""

    __slots__ = ("order", "key_s", "pc_s", "seg_s", "out_s", "ep_new",
                 "heads", "lasts", "cont", "direct")

    def __init__(self, order, key_s, pc_s, seg_s, out_s, ep_new,
                 heads, lasts, cont, direct) -> None:
        self.order = order
        self.key_s = key_s
        self.pc_s = pc_s
        self.seg_s = seg_s
        self.out_s = out_s
        self.ep_new = ep_new
        self.heads = heads
        self.lasts = lasts
        self.cont = cont
        self.direct = direct


def _stream_carry_key(layout: _StreamLayout, h: int) -> int:
    # Ideal BHTs key the carry by real pc (block-local dense ids are not
    # stable across blocks); direct-mapped tables key by set index.
    return int(layout.key_s[h]) if layout.direct else int(layout.pc_s[h])


def _pa_stream_layout(run: _Run, bht, carry: Dict[int, tuple]) -> _StreamLayout:
    """Site-sorted block layout with carried-entry continuation marks.

    A carried entry is still live at the block's first occurrence of its
    site iff no flush fired since it was written (stamp == global flush
    count at the occurrence) and — for direct-mapped tables — the same
    branch still owns the set. Stale entries need no eager eviction: a
    mismatched stamp or occupant simply fails the check, and the
    occurrence opens a fresh episode exactly like the sequential model.
    """
    n = run.n_c
    if isinstance(bht, IdealBHT):
        _sites, keys = run.arrays.conditional_site_ids()
        direct = False
    else:
        keys = run.pc_c % bht.num_sets
        direct = True
    order = _stable_argsort(keys)
    key_s = keys[order]
    pc_s = run.pc_c[order]
    seg_s = run.seg_c[order]
    out_s = run.out_u8[order]
    blk_new = np.empty(n, dtype=np.bool_)
    blk_new[0] = True
    blk_new[1:] = key_s[1:] != key_s[:-1]
    seg_chg = np.empty(n, dtype=np.bool_)
    seg_chg[0] = True
    seg_chg[1:] = seg_s[1:] != seg_s[:-1]
    seg_chg |= blk_new
    if direct:
        pc_chg = np.empty(n, dtype=np.bool_)
        pc_chg[0] = True
        pc_chg[1:] = pc_s[1:] != pc_s[:-1]
        ep_new = seg_chg | pc_chg
    else:
        ep_new = seg_chg
    heads = np.flatnonzero(blk_new)
    lasts = np.empty(heads.shape[0], dtype=np.int64)
    lasts[:-1] = heads[1:] - 1
    lasts[-1] = n - 1
    cont = np.zeros(heads.shape[0], dtype=np.bool_)
    layout = _StreamLayout(order, key_s, pc_s, seg_s, out_s, ep_new,
                           heads, lasts, cont, direct)
    for hi in range(heads.shape[0]):
        h = int(heads[hi])
        entry = carry.get(_stream_carry_key(layout, h))
        if entry is not None and entry[0] == int(seg_s[h]) and entry[1] == int(pc_s[h]):
            cont[hi] = True
    return layout


def _pa_stream_patterns(layout: _StreamLayout, carry: Dict[int, tuple], k: int):
    """Per-address register contents per record, resuming carried
    registers at continuing site heads.

    Returns ``(patterns, ep2)`` where ``ep2`` is ``ep_new`` with
    continuing heads cleared — i.e. True exactly at records whose update
    hits a *fresh* entry. For a continuing head the block-local episode
    start is unknowable from this block alone; the first ``min(len, k)``
    records are spliced from the carried register, and deeper records
    are depth-``k`` pure-window values either way.
    """
    n = layout.out_s.shape[0]
    mask = (1 << k) - 1
    ep2 = layout.ep_new.copy()
    ep2[layout.heads[layout.cont]] = False
    ep_start = _start_indices(ep2)
    m = np.arange(n, dtype=np.int32) - ep_start
    window = _outcome_window(layout.out_s, k)
    first_outcome = layout.out_s[ep_start].astype(np.int32)
    patterns = _fill_extended(window, m, first_outcome, k)
    patterns[m == 0] = mask
    ep_true = np.flatnonzero(ep2)
    for hi in np.flatnonzero(layout.cont):
        h = int(layout.heads[hi])
        reg = carry[_stream_carry_key(layout, h)][2]
        nxt = int(np.searchsorted(ep_true, h, side="right"))
        end = int(ep_true[nxt]) if nxt < ep_true.shape[0] else n
        if hi + 1 < layout.heads.shape[0]:
            end = min(end, int(layout.heads[hi + 1]))
        span = min(k, end - h)
        j = np.arange(span, dtype=np.int64)
        local = window[h:h + span].astype(np.int64) & ((np.int64(1) << j) - 1)
        patterns[h:h + span] = ((np.int64(reg) << j) | local) & mask
    return patterns, ep2


def _pa_register_carry_out(layout: _StreamLayout, carry: Dict[int, tuple],
                           patterns: np.ndarray, ep2: np.ndarray, k: int) -> None:
    """Record each site's post-block register into the carry dict.

    The register after a site's last update is the pre-update pattern
    shifted once — unless that update hit a fresh entry (``ep2`` True),
    which fills with the outcome bit instead, mirroring
    ``history_fill`` in the sequential model.
    """
    mask = (1 << k) - 1
    for hi in range(layout.heads.shape[0]):
        h = int(layout.heads[hi])
        last = int(layout.lasts[hi])
        out_last = int(layout.out_s[last])
        if ep2[last]:
            reg = mask if out_last else 0
        else:
            reg = ((int(patterns[last]) << 1) | out_last) & mask
        carry[_stream_carry_key(layout, h)] = (
            int(layout.seg_s[last]), int(layout.pc_s[last]), reg
        )


class _StreamPAg:
    """Streamed PAg: carried per-site registers + one dense shared PHT."""

    __slots__ = ("ops", "k", "bht", "carry", "pht")

    def __init__(self, predictor: PAgPredictor) -> None:
        self.ops = _ops_for(predictor.automaton)
        self.k = predictor.history_bits
        self.bht = predictor.bht
        self.carry: Dict[int, tuple] = {}
        self.pht = np.full(1 << self.k, self.ops.init, dtype=np.uint8)

    def process(self, run: _Run):
        if run.n_c == 0:
            return 0
        layout = _pa_stream_layout(run, self.bht, self.carry)
        patterns_s, ep2 = _pa_stream_patterns(layout, self.carry, self.k)
        _pa_register_carry_out(layout, self.carry, patterns_s, ep2, self.k)
        patterns = np.empty(run.n_c, dtype=np.int32)
        patterns[layout.order] = patterns_s
        return _scan_with_store(run, patterns, self.pht, self.ops)


class _StreamPSg:
    """Streamed PSg: carried per-site registers reading preset bits."""

    __slots__ = ("bits", "k", "bht", "carry")

    def __init__(self, predictor: PSgPredictor) -> None:
        self.bits = np.asarray(predictor.table.bits_snapshot(), dtype=np.bool_)
        self.k = predictor.history_bits
        self.bht = predictor.bht
        self.carry: Dict[int, tuple] = {}

    def process(self, run: _Run):
        if run.n_c == 0:
            return 0
        layout = _pa_stream_layout(run, self.bht, self.carry)
        patterns_s, ep2 = _pa_stream_patterns(layout, self.carry, self.k)
        _pa_register_carry_out(layout, self.carry, patterns_s, ep2, self.k)
        pred = np.empty(run.n_c, dtype=np.bool_)
        pred[layout.order] = self.bits[patterns_s]
        return pred


class _StreamBTB:
    """Streamed BTB: carried per-entry automaton states.

    Episodes stay block-local scan groups; a continuing head seeds its
    episode with the carried state instead of the automaton init, and
    each site's final episode state is carried out.
    """

    __slots__ = ("ops", "bht", "carry")

    def __init__(self, predictor: BTBPredictor) -> None:
        self.ops = _ops_for(predictor.automaton)
        self.bht = predictor.bht
        self.carry: Dict[int, tuple] = {}

    def process(self, run: _Run):
        if run.n_c == 0:
            return 0
        layout = _pa_stream_layout(run, self.bht, self.carry)
        n = run.n_c
        group_init = np.full(n, self.ops.init, dtype=np.uint8)
        for h in layout.heads[layout.cont]:
            group_init[int(h)] = self.carry[_stream_carry_key(layout, int(h))][2]
        runs = _find_runs(layout.out_s, layout.ep_new, self.ops,
                          group_init=group_init)
        finals = _group_final_states(runs, layout.ep_new, self.ops)
        grp_starts = np.flatnonzero(layout.ep_new)
        if run.aggregate:
            result = n - _runs_wrong_total(runs, self.ops)
        else:
            pred_sorted = _expand_run_preds(n, runs, self.ops)
            pred = np.empty(n, dtype=np.bool_)
            pred[layout.order] = pred_sorted
            result = pred
        for hi in range(layout.heads.shape[0]):
            h = int(layout.heads[hi])
            last = int(layout.lasts[hi])
            g = int(np.searchsorted(grp_starts, last, side="right")) - 1
            self.carry[_stream_carry_key(layout, h)] = (
                int(layout.seg_s[last]), int(layout.pc_s[last]), int(finals[g])
            )
        return result


#: GAp streams one dense ``2**k``-entry table per distinct site, so its
#: streamed kernel is gated tighter than ``_MAX_HISTORY_BITS``.
_MAX_STREAM_GAP_BITS = 16


def _stream_kernel_for(predictor):
    """A fresh per-block kernel (``process(run)``) or None.

    Same exact-type dispatch as :func:`_kernel_for`. PAp is excluded: a
    direct-mapped PAp whose tables survive eviction would need every
    (set, pattern) entry carried across blocks — the interpreted loop
    streams it instead.
    """
    kind = type(predictor)
    if kind is AlwaysTaken:
        return _StreamStateless(_kernel_constant(True))
    if kind is AlwaysNotTaken:
        return _StreamStateless(_kernel_constant(False))
    if kind is BTFN:
        return _StreamStateless(_kernel_btfn(predictor))
    if kind is ProfileGuided:
        return _StreamStateless(_kernel_profile(predictor))

    def k_ok(bits: int) -> bool:
        return bits <= _MAX_HISTORY_BITS

    if kind is GAgPredictor and supports_vector_scan(predictor.automaton) \
            and k_ok(predictor.history_bits):
        return _StreamGlobalScan(predictor, xor_pc=False)
    if kind is GsharePredictor and supports_vector_scan(predictor.automaton) \
            and k_ok(predictor.history_bits):
        return _StreamGlobalScan(predictor, xor_pc=True)
    if kind is GApPredictor and supports_vector_scan(predictor.automaton) \
            and predictor.history_bits <= _MAX_STREAM_GAP_BITS:
        return _StreamGAp(predictor)
    if kind is GSgPredictor and k_ok(predictor.history_bits):
        return _StreamGSg(predictor)
    if kind is PAgPredictor and supports_vector_scan(predictor.automaton) \
            and k_ok(predictor.history_bits) and _stream_supported_bht(predictor.bht):
        return _StreamPAg(predictor)
    if kind is PSgPredictor and k_ok(predictor.history_bits) \
            and _stream_supported_bht(predictor.bht):
        return _StreamPSg(predictor)
    if kind is BTBPredictor and supports_vector_scan(predictor.automaton) \
            and _stream_supported_bht(predictor.bht):
        return _StreamBTB(predictor)
    return None


def stream_kernel_supports(predictor) -> bool:
    """Whether :func:`simulate_vectorized_stream` covers ``predictor``.

    A strict subset of :func:`kernel_supports`: PAp (whose per-entry
    pattern tables would all need carrying), GAp above 16 history bits,
    set-associative BHTs (whose LRU way state the per-site carry dicts
    cannot represent), and the hybrid/per-set extensions fall back to
    the interpreted streaming loop. ``backend="auto"`` degrades
    gracefully (and logs a ``kernel_fallback`` event); an explicit
    ``backend="vectorized"`` with ``block_size`` raises
    :class:`KernelUnavailable` naming the gap — drop the block size (or
    use ``shards``, which parallelises the whole-trace kernels) to keep
    the fast path.
    """
    return _stream_kernel_for(predictor) is not None


def _traced_blocks(blocks, recorder):
    """Wrap a block iterator so each block's kernel pass is a span.

    The span opens when the block is handed to the consumer and closes
    when the consumer asks for the next one, so it covers the batch
    kernel work for that block — the per-block level of the sweep →
    cell → phase → block hierarchy. The lenient ``pop_if_open`` keeps
    exception-path generator finalization from closing another span.
    """
    for index, block in enumerate(blocks):
        span_id = recorder.push("block", cat="engine", index=index, records=len(block))
        try:
            yield block
        finally:
            recorder.pop_if_open(span_id)


def simulate_vectorized_stream(
    predictor,
    source,
    context_switches: Optional[ContextSwitchConfig] = None,
    track_per_site: bool = False,
    warmup_branches: int = 0,
    block_size: Optional[int] = None,
) -> SimulationResult:
    """Replay a :class:`repro.trace.stream.TraceSource` block by block.

    Bit-identical to :func:`simulate_vectorized` on the materialized
    trace for every supported predictor and *any* block size: all
    predictor state (pattern tables, history registers, BHT residency,
    context-switch epoch) is carried across block boundaries, and flush
    boundaries stay pinned to absolute ``instret // interval`` epochs.
    Peak memory scales with ``block_size``, not the trace length.

    Raises:
        KernelUnavailable: when no streaming kernel covers the
            predictor, or ``instret`` decreases (within a block or
            across blocks) with context switches enabled.
        ValueError: for an unbounded source or a block size < 1.
    """
    kernel = _stream_kernel_for(predictor)
    if kernel is None:
        name = getattr(predictor, "name", type(predictor).__name__)
        hint = (
            " (the whole-trace batch kernel covers it: drop block_size, "
            "or use shards= for chunk-parallel execution)"
            if _kernel_for(predictor) is not None
            else ""
        )
        raise KernelUnavailable(f"no streaming kernel for {name}{hint}")
    if block_size is None:
        block_size = _DEFAULT_STREAM_BLOCK
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    if getattr(source, "num_records", 0) is None:
        raise ValueError(
            "cannot simulate an unbounded source; bound it with .limit(n)"
        )
    meta = source.meta
    warmup = max(int(warmup_branches), 0)
    track = bool(track_per_site)
    correct = 0
    cond_seen = 0
    switches = 0
    prev_epoch: Optional[int] = None
    fires = 0
    last_instret: Optional[int] = None
    per_seen: Optional[Dict[int, int]] = {} if track else None
    per_wrong: Optional[Dict[int, int]] = {} if track else None
    # Span tracing of the streamed block loop: deferred import, None
    # unless tracing is on — the traced iterator wrapper only exists on
    # the traced path, so the default loop is byte-for-byte unchanged.
    from ..obs.spans import get_recorder as _get_span_recorder

    recorder = _get_span_recorder()
    blocks = source.iter_blocks(block_size)
    if recorder is not None:
        blocks = _traced_blocks(blocks, recorder)
    for block in blocks:
        if len(block) == 0:
            continue
        w_local = max(warmup - cond_seen, 0)
        run = _Run(block, context_switches, track, w_local,
                   prev_epoch=prev_epoch, fires_base=fires)
        if context_switches is not None:
            first_instret = int(run.arrays.instret[0])
            if last_instret is not None and first_instret < last_instret:
                raise KernelUnavailable(
                    "instret decreases across blocks; the vectorized "
                    "context-switch model requires a non-decreasing clock"
                )
            last_instret = int(run.arrays.instret[-1])
            prev_epoch = run.last_epoch
        switches += run.switches
        fires = run.fires_end
        outcome = kernel.process(run)
        if isinstance(outcome, (int, np.integer)):
            correct += int(outcome)
        else:
            block_correct, block_seen, block_wrong = _score_predictions(run, outcome)
            correct += block_correct
            if track:
                for pc, count in block_seen.items():
                    per_seen[pc] = per_seen.get(pc, 0) + count
                for pc, count in block_wrong.items():
                    per_wrong[pc] = per_wrong.get(pc, 0) + count
        cond_seen += run.n_c
    scored = max(cond_seen - warmup, 0)
    return SimulationResult(
        predictor_name=predictor.name,
        trace_name=meta.name,
        dataset=meta.dataset,
        conditional_branches=scored,
        correct_predictions=correct,
        context_switches=switches,
        per_site_executions=per_seen,
        per_site_mispredictions=per_wrong,
        total_instructions=meta.total_instructions,
    )
