"""Parallel, cached execution of (scheme x benchmark) sweeps.

The paper's evaluation is a large cross product — Figures 5-11 replay
nine traces through dozens of predictor configurations — and every cell
is independent of every other. This module is the execution layer that
exploits that:

* **Fan-out** — cells are distributed over worker processes
  (:class:`concurrent.futures.ProcessPoolExecutor`). ``n_workers=1``
  takes a deterministic in-process path with no executor involved.
* **Picklable work units** — workers receive a :class:`PredictorSpec`
  (a registry name, e.g. ``"pag-12"``) rather than a closure, plus the
  path of a spooled trace file. Plain-callable builders (lambdas) still
  work: they are detected as unpicklable and executed in the parent
  process, so ``run_matrix`` never rejects a builder.
* **Result caching** — with a :class:`~repro.trace.cache.ResultCache`,
  each cell is keyed by a content-hash of the trace bytes, the scheme's
  cache key and the context-switch configuration
  (:func:`result_cache_key`); warm reruns execute zero simulations.
* **Telemetry** — every run produces a
  :class:`~repro.sim.results.RunTelemetry` (per-cell wall time, cache
  hit/miss counts) attached to the returned matrix.

Determinism guarantee: for fixed builders, cases and configuration, the
returned :class:`~repro.sim.results.ResultMatrix` is bit-identical for
every ``n_workers`` value and for cold or warm caches — cells are
independent simulations, results are reassembled in the same
scheme-major order the serial loop uses, and cached cells store the
exact integer counts the simulation produced.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import queue as queue_module
import shutil
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..predictors.base import BranchPredictor, TrainingUnavailable
from ..trace.cache import ResultCache
from ..trace.events import Trace
from ..trace.io import dumps as trace_dumps
from ..trace.io import load_trace, save_trace
from .engine import ContextSwitchConfig, simulate_with_backend
from .results import ResultMatrix, RunTelemetry, SimulationResult

__all__ = [
    "PredictorSpec",
    "execute_matrix",
    "result_cache_key",
    "spec",
    "trace_digest",
]

#: Bumped whenever the cached payload layout or key recipe changes, so
#: stale caches from older revisions can never satisfy a new lookup.
_KEY_VERSION = "v1"


@dataclass(frozen=True)
class PredictorSpec:
    """A picklable, cacheable predictor builder.

    Wraps a name understood by
    :func:`repro.predictors.registry.make_predictor` (friendly grammar
    like ``"pag-12-a2-512x4"`` or a full Table 3 configuration string)
    and behaves as a ``PredictorBuilder``: calling it with the
    benchmark's training trace (or ``None``) returns a fresh predictor.

    Unlike a lambda, a spec survives pickling (so it can cross a
    process boundary) and carries a stable :attr:`cache_key` (so its
    results can live in the on-disk result cache).
    """

    name: str

    def __call__(self, training_trace: Optional[Trace]) -> BranchPredictor:
        """Build a fresh predictor; raises ``TrainingUnavailable`` when
        the scheme needs a training trace the benchmark lacks."""
        from ..predictors.registry import make_predictor

        if self.requires_training and training_trace is None:
            raise TrainingUnavailable(f"{self.name} needs a training trace")
        return make_predictor(self.name, training_trace)

    @property
    def requires_training(self) -> bool:
        """True for the statically-trained schemes (GSg/PSg/Profile).

        Determines whether the training trace participates in the
        cell's cache key: schemes that ignore the training trace must
        not be invalidated when it changes.
        """
        text = self.name.strip().lower()
        return text == "profile" or text.startswith(("gsg", "psg"))

    @property
    def cache_key(self) -> str:
        """Stable identity of the scheme configuration for result keys."""
        return f"spec:{self.name.strip().lower()}"


def spec(name: str) -> PredictorSpec:
    """Shorthand constructor: ``spec("pag-12")``."""
    return PredictorSpec(name)


def trace_digest(trace) -> str:
    """Content-hash of a trace (sha256 over its binary serialization).

    Two traces with identical records and metadata always digest
    equally, regardless of how they were produced. Accepts any bounded
    :class:`repro.trace.stream.TraceSource`; a non-``Trace`` source is
    hashed block-wise via :func:`repro.trace.stream.content_digest`
    (the same digest, computed in bounded memory).
    """
    if isinstance(trace, Trace):
        return hashlib.sha256(trace_dumps(trace)).hexdigest()
    from ..trace.stream import content_digest

    return content_digest(trace)


def result_cache_key(
    test_digest: str,
    builder_key: str,
    context_switches: Optional[ContextSwitchConfig],
    training_digest: Optional[str] = None,
) -> str:
    """The result-cache key for one (scheme, benchmark) cell.

    Args:
        test_digest: :func:`trace_digest` of the scored trace.
        builder_key: the builder's ``cache_key`` (scheme configuration).
        context_switches: the run's context-switch model (``None`` for
            an undisturbed run); both fields participate in the key.
        training_digest: digest of the training trace, for schemes whose
            predictor depends on it (``None`` otherwise).
    """
    if context_switches is None:
        cs_part = "cs:none"
    else:
        cs_part = f"cs:{context_switches.interval}:{int(context_switches.switch_on_traps)}"
    parts = [
        _KEY_VERSION,
        f"trace:{test_digest}",
        f"builder:{builder_key}",
        cs_part,
        f"training:{training_digest or 'none'}",
    ]
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Per-worker-process memo of spooled traces, so a worker deserializes
#: each benchmark trace once no matter how many of its cells it draws.
_TRACE_MEMO: Dict[str, Trace] = {}

#: Per-worker-process span recorder (traced sweeps only). One recorder
#: per process — not per cell — so span ids stay unique within the
#: worker's pid across every cell it draws; never read by the parent.
_SPAN_STATE: Dict[str, Any] = {}


def _load_spooled(path: str) -> Trace:
    trace = _TRACE_MEMO.get(path)
    if trace is None:
        trace = load_trace(path)
        # Deliberate per-worker-process memo: never read by the parent.
        _TRACE_MEMO[path] = trace  # check: allow(conc/global-write-in-worker)
    return trace


def _worker_recorder():
    """The worker's persistent span recorder (created and enabled once).

    Enabling it process-wide is what lets the engine's backend/block
    spans nest under the cell's ``simulate`` phase span.
    """
    recorder = _SPAN_STATE.get("recorder")
    if recorder is None or recorder.pid != os.getpid():
        from ..obs import spans as spans_mod

        recorder = spans_mod.SpanRecorder()
        # Deliberate per-worker-process state: never read by the parent.
        _SPAN_STATE["recorder"] = recorder  # check: allow(conc/global-write-in-worker)
        spans_mod.enable(recorder)
    return recorder


def _pulse(
    heartbeats, kind: str, label: str, case_name: str, branches: int = 0,
    wall: float = 0.0, rss: int = 0,
) -> None:
    """Best-effort heartbeat put; telemetry must never fail a cell.

    Workers emit plain tuples (not :class:`repro.obs.live.Heartbeat`
    objects) so the worker side stays import-free; the parent rewraps
    them before invoking the ``progress`` hook. Span batches travel on
    the same queue as ``("spans", pid, wire)`` triples — the string
    first element is what distinguishes them from these int-pid-first
    heartbeat tuples on the draining side.
    """
    if heartbeats is None:
        return
    try:
        heartbeats.put((os.getpid(), kind, label, case_name, branches, wall, rss))
    except Exception:
        pass


def _ship_spans(heartbeats, recorder) -> None:
    """Ship a worker recorder's completed spans to the parent.

    One ``("spans", pid, wire)`` message per cell, put *after* the cell
    completes — so a crashed worker contributes no batch at all (its
    spans are lost, the sweep trace stays coherent) and a full batch is
    never torn. Best-effort like :func:`_pulse`: span telemetry must
    never fail a cell.
    """
    if recorder is None:
        return
    spans = recorder.drain()
    if heartbeats is None or not spans:
        return
    from ..obs.spans import to_wire

    try:
        heartbeats.put(("spans", recorder.pid, to_wire(spans)))
    except Exception:
        pass


def _finish_cell(recorder, cell_id: int, end: float, backend: str,
                 heartbeats, own_recorder: bool) -> int:
    """Close a traced cell: resource reading, span shipping, cleanup.

    Always reads the process's resource usage (peak worker RSS is
    recorded per cell whether or not tracing is on — it is two /proc
    reads against a cell that runs for seconds) and returns the peak
    RSS in bytes. With an active recorder, the reading lands on the
    closing ``"cell"`` span and — for the worker's own persistent
    recorder — the completed spans are drained and shipped; a recorder
    an in-process caller enabled keeps its spans for that caller to
    collect.
    """
    from ..obs.resources import read_resources

    sample = read_resources()
    if recorder is not None:
        recorder.pop_through(cell_id, end=end, backend=backend, **sample.as_args())
        if own_recorder:
            _ship_spans(heartbeats, recorder)
    return sample.peak_rss_bytes


def _run_cell(
    label: str,
    case_name: str,
    builder,
    test_path: str,
    training_path: Optional[str],
    context_switches: Optional[ContextSwitchConfig],
    backend: str = "auto",
    shards=None,
    heartbeats=None,
    traced: bool = False,
) -> Tuple[str, str, Optional[SimulationResult], float, Dict[str, float], str, int]:
    """Execute one cell from spooled traces (runs inside a worker).

    Returns ``(label, case_name, result-or-None, wall_time, phases,
    backend, peak_rss_bytes)``; a ``None`` result means the builder
    raised ``TrainingUnavailable``. ``phases`` breaks the wall time
    into trace_load / build / simulate spans for the run telemetry
    (and, downstream, ``repro.obs`` run reports); ``backend`` is the
    engine backend that actually ran (``""`` when no simulation
    happened); ``peak_rss_bytes`` is the worker's RSS high-water mark
    as of cell completion. When ``heartbeats`` (a multiprocessing
    queue) is given, the worker announces the cell's start and
    completion on it for live ``--follow`` monitoring.

    With ``traced=True`` the worker records a ``"cell"`` span with
    ``trace_load`` / ``build`` / ``simulate`` phase children — built
    from the *same* ``perf_counter`` readings as the returned
    ``phases`` dict, so span durations equal the telemetry phase times
    exactly — and ships them back on the heartbeat queue. The engine's
    own spans (backend choice, per-block) nest under the ``simulate``
    phase via the worker's process-wide recorder.
    """
    recorder = None
    own_recorder = False
    if traced:
        from ..obs import spans as spans_mod

        recorder = spans_mod.get_recorder()
        if (
            recorder is None
            or recorder is _SPAN_STATE.get("recorder")
            or recorder.pid != os.getpid()
        ):
            # Worker path: the persistent per-process recorder (span
            # ids stay unique across every cell this worker draws). A
            # recorder whose pid differs is a fork-inherited copy of
            # the parent's — useless here, since its spans would never
            # ship — so the worker replaces it with its own. Only a
            # recorder enabled by an in-process caller (same pid, not
            # ours) is used as-is, its spans left for that caller.
            recorder = _worker_recorder()
            own_recorder = True
            if recorder.depth:
                # A previous cell in this worker died mid-span (pool
                # workers outlive task exceptions). Abandon its partial
                # trace — close and discard everything — so this cell's
                # spans stay well-formed; that cell's spans are simply
                # lost, the queue-loss-tolerance contract.
                while recorder.depth:
                    recorder.pop()
                recorder.drain()
    started = time.perf_counter()
    cell_id = (
        recorder.push(
            "cell", cat="sweep", start=started, scheme=label, benchmark=case_name
        )
        if recorder is not None
        else 0
    )
    _pulse(heartbeats, "start", label, case_name)
    test_trace = _load_spooled(test_path)
    training_trace = _load_spooled(training_path) if training_path else None
    loaded = time.perf_counter()
    phases = {"trace_load": loaded - started}
    if recorder is not None:
        recorder.record("trace_load", cat="phase", start=started, end=loaded)
    try:
        predictor = builder(training_trace)
    except TrainingUnavailable:
        built = time.perf_counter()
        phases["build"] = built - loaded
        if recorder is not None:
            recorder.record("build", cat="phase", start=loaded, end=built)
        wall = built - started
        rss = _finish_cell(recorder, cell_id, built, "", heartbeats, own_recorder)
        _pulse(heartbeats, "done", label, case_name, 0, wall, rss)
        return label, case_name, None, wall, phases, "", rss
    built = time.perf_counter()
    phases["build"] = built - loaded
    if recorder is not None:
        recorder.record("build", cat="phase", start=loaded, end=built)
    sim_id = (
        recorder.push("simulate", cat="phase", start=built)
        if recorder is not None
        else 0
    )
    result, used_backend = simulate_with_backend(
        predictor,
        test_trace,
        context_switches=context_switches,
        backend=backend,
        shards=shards,
    )
    sim_end = time.perf_counter()
    phases["simulate"] = sim_end - built
    if recorder is not None:
        recorder.pop_through(sim_id, end=sim_end)
    wall = sim_end - started
    rss = _finish_cell(recorder, cell_id, sim_end, used_backend, heartbeats, own_recorder)
    _pulse(heartbeats, "done", label, case_name, result.conditional_branches, wall, rss)
    return label, case_name, result, wall, phases, used_backend, rss


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


def _is_picklable(builder) -> bool:
    try:
        pickle.dumps(builder)
        return True
    except Exception:
        return False


def execute_matrix(
    builders: Mapping[str, "PredictorBuilder"],  # noqa: F821 - doc alias
    cases: Sequence["BenchmarkCase"],  # noqa: F821
    context_switches: Optional[ContextSwitchConfig] = None,
    n_workers: int = 1,
    result_cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[Any], None]] = None,
    tick: Optional[Callable[[], None]] = None,
    progress_interval: float = 0.5,
    backend: str = "auto",
    tracer: Optional[Any] = None,
    shards: Optional[int] = None,
) -> ResultMatrix:
    """Evaluate every scheme on every benchmark, in parallel and cached.

    This is the engine behind :func:`repro.sim.runner.run_matrix`; call
    that instead unless you are building new sweep machinery.

    Args:
        builders: scheme label -> builder. :class:`PredictorSpec`
            builders parallelize and cache; plain callables run in the
            parent process and bypass the cache.
        cases: the benchmark suite, figure order.
        context_switches: applied to every simulation when given.
        backend: simulation backend passed through to
            :func:`repro.sim.engine.simulate_with_backend` for every
            cell — ``"auto"`` (default) uses the vectorized kernels
            where available and falls back per predictor, ``"python"``
            forces the interpreted loop, ``"vectorized"`` fails loudly
            on unsupported predictors. Backends are bit-identical, so
            the choice does not participate in result-cache keys: a
            cell cached under one backend satisfies lookups under any
            other (cache hits report ``backend="cache"``). The backend
            that actually ran each cell is recorded in the telemetry.
        shards: when given, every simulated cell runs the trace-sharded
            kernel driver with this many chunks
            (:mod:`repro.sim.shard`). Bit-identical at every shard
            count, so — like ``backend`` — it stays out of cache keys.
        n_workers: worker processes; ``1`` is a plain in-process loop
            (no executor, no trace spooling) whose results every other
            worker count reproduces bit-identically.
        result_cache: on-disk cell cache; ``None`` disables caching.
        progress: live-monitoring hook; receives one
            :class:`repro.obs.live.Heartbeat` per cell event (start /
            done / cached). When workers are involved the beats travel
            over a ``multiprocessing`` manager queue and are delivered
            from the parent process, so the hook needs no locking.
            ``None`` (the default) adds zero overhead — no manager, no
            queue, no wait timeouts.
        tick: called roughly every ``progress_interval`` seconds while
            remote cells are in flight (and after every local cell), so
            a ``--follow`` renderer can refresh ETA/staleness even when
            no heartbeat arrived.
        progress_interval: polling period for ``tick`` draining.
        tracer: optional :class:`repro.obs.spans.SpanCollector`. When
            given, the sweep is span-traced: the parent records a
            ``"sweep"`` root span with one ``"cell"`` child per cell
            (phase children built from the same clock readings as the
            telemetry, so span totals equal phase times exactly),
            worker processes record their cells locally and ship the
            completed spans back on the heartbeat queue, and everything
            lands in the collector. A worker that crashes simply never
            ships — its spans are lost, the sweep trace stays valid.

    Returns:
        A :class:`ResultMatrix` with telemetry attached.

    Heartbeats and spans are telemetry only: results, ordering and
    cache contents are bit-identical with or without a ``progress``
    hook or a ``tracer``.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    parent_recorder = None
    own_recorder = False
    sweep_id = 0
    if tracer is not None:
        from ..obs import spans as spans_mod

        parent_recorder = spans_mod.get_recorder()
        if parent_recorder is None:
            parent_recorder = spans_mod.enable(spans_mod.SpanRecorder())
            own_recorder = True
    emit: Optional[Callable[..., None]] = None
    if progress is not None:
        # Deferred import: repro.obs imports repro.sim.results, so a
        # module-level import here would cycle during package init.
        from ..obs.live import Heartbeat

        def emit(pid: int, kind: str, label: str, case_name: str,
                 branches: int = 0, wall: float = 0.0, rss: int = 0) -> None:
            progress(
                Heartbeat(
                    worker=pid,
                    kind=kind,
                    scheme=label,
                    benchmark=case_name,
                    branches=branches,
                    wall=wall,
                    rss_bytes=rss,
                )
            )

    # Deferred import: keeps package init acyclic; a no-op unless the
    # caller enabled structured logging.
    from ..obs.log import get_logger

    logger = get_logger("sim.parallel")
    logger.event(
        "matrix_start",
        schemes=len(builders),
        benchmarks=len(cases),
        workers=n_workers,
        cached=result_cache is not None,
        backend=backend,
        shards=0 if shards is None else shards,
    )
    started = time.perf_counter()
    if parent_recorder is not None:
        sweep_id = parent_recorder.push(
            "sweep",
            cat="sweep",
            start=started,
            schemes=len(builders),
            benchmarks=len(cases),
            workers=n_workers,
        )
    telemetry = RunTelemetry(n_workers=n_workers, shards=0 if shards is None else shards)
    matrix = ResultMatrix(
        benchmarks=[case.name for case in cases],
        categories={case.name: case.category for case in cases},
        telemetry=telemetry,
    )

    # Digest each case's traces once (only needed for cache keys).
    digests: Dict[str, Tuple[str, Optional[str]]] = {}
    if result_cache is not None:
        for case in cases:
            digests[case.name] = (
                trace_digest(case.test_trace),
                trace_digest(case.training_trace) if case.training_trace else None,
            )

    # Phase 1: resolve what we can from the cache, in cell order.
    # outcomes: (label, case.name) ->
    #     (result, source, wall_time, phases, backend, rss_peak)
    outcomes: Dict[
        Tuple[str, str],
        Tuple[Optional[SimulationResult], str, float, Dict[str, float], str, int],
    ] = {}
    pending: List[Tuple[str, "BenchmarkCase", Optional[str]]] = []
    for label, builder in builders.items():
        builder_key = getattr(builder, "cache_key", None)
        for case in cases:
            if result_cache is None or builder_key is None:
                if result_cache is not None:
                    telemetry.uncacheable += 1
                pending.append((label, case, None))
                continue
            test_digest, training_digest = digests[case.name]
            key = result_cache_key(
                test_digest,
                builder_key,
                context_switches,
                training_digest if getattr(builder, "requires_training", True) else None,
            )
            lookup_started = time.perf_counter()
            hit, payload = result_cache.load(key)
            if hit:
                result = SimulationResult.from_dict(payload) if payload is not None else None
                lookup_end = time.perf_counter()
                lookup_wall = lookup_end - lookup_started
                # backend="cache": cache hits never ran an engine, and
                # backends are excluded from cache keys, so reporting
                # any engine backend here would attribute the *cached*
                # run's backend to a near-zero lookup wall time and
                # pollute regress()'s per-backend throughput medians.
                outcomes[(label, case.name)] = (
                    result,
                    "cache" if result is not None else "unavailable",
                    lookup_wall,
                    {"cache_lookup": lookup_wall},
                    "cache" if result is not None else "",
                    0,
                )
                if parent_recorder is not None:
                    cell_id = parent_recorder.push(
                        "cell",
                        cat="sweep",
                        start=lookup_started,
                        scheme=label,
                        benchmark=case.name,
                        cached=True,
                    )
                    parent_recorder.record(
                        "cache_lookup",
                        cat="phase",
                        start=lookup_started,
                        end=lookup_end,
                    )
                    parent_recorder.pop_through(cell_id, end=lookup_end)
                if emit is not None:
                    emit(0, "cached", label, case.name, 0, lookup_wall)
            else:
                telemetry.cache_misses += 1
                pending.append((label, case, key))

    # Phase 2: compute the remaining cells — in worker processes when
    # asked and possible, in-process otherwise.
    def _run_local(label: str, case, key: Optional[str]) -> None:
        from ..obs.resources import read_resources

        cell_started = time.perf_counter()
        cell_id = (
            parent_recorder.push(
                "cell", cat="sweep", start=cell_started, scheme=label,
                benchmark=case.name,
            )
            if parent_recorder is not None
            else 0
        )
        if emit is not None:
            emit(os.getpid(), "start", label, case.name)
        try:
            predictor = builder_by_label[label](case.training_trace)
        except TrainingUnavailable:
            predictor = None
        built = time.perf_counter()
        phases = {"build": built - cell_started}
        if parent_recorder is not None:
            parent_recorder.record("build", cat="phase", start=cell_started, end=built)
        result: Optional[SimulationResult] = None
        used_backend = ""
        cell_end = built
        if predictor is not None:
            sim_id = (
                parent_recorder.push("simulate", cat="phase", start=built)
                if parent_recorder is not None
                else 0
            )
            result, used_backend = simulate_with_backend(
                predictor,
                case.test_trace,
                context_switches=context_switches,
                backend=backend,
                shards=shards,
            )
            cell_end = time.perf_counter()
            phases["simulate"] = cell_end - built
            if parent_recorder is not None:
                parent_recorder.pop_through(sim_id, end=cell_end)
        wall = cell_end - cell_started
        sample = read_resources()
        if parent_recorder is not None:
            parent_recorder.pop_through(
                cell_id, end=cell_end, backend=used_backend, **sample.as_args()
            )
        outcomes[(label, case.name)] = (
            result,
            "simulated" if result is not None else "unavailable",
            wall,
            phases,
            used_backend,
            sample.peak_rss_bytes,
        )
        if key is not None and result_cache is not None:
            result_cache.store(key, result.to_dict() if result is not None else None)
        if emit is not None:
            emit(
                os.getpid(),
                "done",
                label,
                case.name,
                result.conditional_branches if result is not None else 0,
                wall,
                sample.peak_rss_bytes,
            )
        if tick is not None:
            tick()

    builder_by_label = dict(builders)
    if n_workers == 1 or not pending:
        for label, case, key in pending:
            _run_local(label, case, key)
    else:
        remote = [cell for cell in pending if _is_picklable(builder_by_label[cell[0]])]
        local = [cell for cell in pending if not _is_picklable(builder_by_label[cell[0]])]
        spool = Path(tempfile.mkdtemp(prefix="repro-spool-"))
        manager = None
        heartbeat_queue = None
        if (emit is not None or tracer is not None) and remote:
            # A manager queue (not a raw mp.Queue) because the executor
            # pickles task arguments; manager proxies survive that.
            # Spans ride the same queue as heartbeats, so tracing alone
            # also needs it.
            import multiprocessing

            manager = multiprocessing.Manager()
            heartbeat_queue = manager.Queue()

        def _drain_heartbeats() -> None:
            if heartbeat_queue is None:
                return
            while True:
                try:
                    message = heartbeat_queue.get_nowait()
                except queue_module.Empty:
                    break
                except Exception:
                    break
                if message and message[0] == "spans":
                    # A worker's shipped span batch: ("spans", pid, wire).
                    if tracer is not None:
                        tracer.ingest_wire(message[2])
                    continue
                if emit is not None:
                    pid, kind, hb_label, hb_case, branches, hb_wall, hb_rss = message
                    emit(pid, kind, hb_label, hb_case, branches, hb_wall, hb_rss)

        try:
            trace_paths = _spool_traces({case.name: case for _, case, _ in remote}, spool)
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                futures = {}
                for label, case, key in remote:
                    test_path, training_path = trace_paths[case.name]
                    future = pool.submit(
                        _run_cell,
                        label,
                        case.name,
                        builder_by_label[label],
                        test_path,
                        training_path,
                        context_switches,
                        backend,
                        shards,
                        heartbeat_queue,
                        tracer is not None,
                    )
                    futures[future] = key
                # Overlap the unpicklable (parent-process) cells with
                # the pool instead of serializing them afterwards.
                for label, case, key in local:
                    _run_local(label, case, key)
                not_done = set(futures)
                poll = (
                    progress_interval
                    if heartbeat_queue is not None or tick is not None
                    else None
                )
                while not_done:
                    done, not_done = wait(
                        not_done, timeout=poll, return_when=FIRST_COMPLETED
                    )
                    _drain_heartbeats()
                    if tick is not None:
                        tick()
                    for future in done:
                        label, case_name, result, wall, phases, used_backend, rss = (
                            future.result()
                        )
                        outcomes[(label, case_name)] = (
                            result,
                            "simulated" if result is not None else "unavailable",
                            wall,
                            phases,
                            used_backend,
                            rss,
                        )
                        key = futures[future]
                        if key is not None and result_cache is not None:
                            result_cache.store(
                                key, result.to_dict() if result is not None else None
                            )
            _drain_heartbeats()
            if tick is not None:
                tick()
        finally:
            shutil.rmtree(spool, ignore_errors=True)
            if manager is not None:
                manager.shutdown()

    # Phase 3: assemble in the canonical (scheme-major) order, so the
    # matrix layout is independent of completion order.
    for label in builders:
        for case in cases:
            result, source, wall, phases, used_backend, rss = outcomes[
                (label, case.name)
            ]
            telemetry.record(
                label,
                case.name,
                wall,
                source,
                phases=phases,
                backend=used_backend,
                rss_peak=rss,
            )
            if result is not None:
                matrix.add(label, result)
    finished = time.perf_counter()
    telemetry.wall_time = finished - started
    if parent_recorder is not None:
        parent_recorder.pop_through(
            sweep_id, end=finished, cells=telemetry.total_cells
        )
        tracer.ingest(parent_recorder.drain())
        if own_recorder:
            from ..obs.spans import disable as _spans_disable

            _spans_disable()
    logger.event(
        "matrix_done",
        cells=telemetry.total_cells,
        simulations=telemetry.simulations,
        cache_hits=telemetry.cache_hits,
        unavailable=telemetry.unavailable,
        wall_s=round(telemetry.wall_time, 3),
    )
    return matrix


def _spool_traces(
    cases_by_name: Mapping[str, "BenchmarkCase"],  # noqa: F821
    spool: Path,
) -> Dict[str, Tuple[str, Optional[str]]]:
    """Write each distinct trace to the spool directory once.

    Workers load traces from these files (memoized per process) instead
    of receiving multi-megabyte pickled columns with every task.
    """
    paths: Dict[str, Tuple[str, Optional[str]]] = {}
    for name, case in cases_by_name.items():
        test_path = spool / f"{name}-test.btb"
        save_trace(case.test_trace, test_path)
        training_path: Optional[str] = None
        if case.training_trace is not None:
            path = spool / f"{name}-training.btb"
            save_trace(case.training_trace, path)
            training_path = str(path)
        paths[name] = (str(test_path), training_path)
    return paths
