"""Pipeline-timing effects on prediction (paper §3.1).

The baseline engine resolves every branch before the next one is
predicted. A real pipeline does not: with resolution latency D, the
next D branches are predicted before the current one's outcome is
known, so the first-level history a two-level predictor consults is
*stale* unless it is updated **speculatively** with predictions.

The paper's §3.1 prescribes exactly that: update the branch history
speculatively with the predicted direction (accuracy is high, so the
speculation is usually right); on a misprediction either *reinitialise*
the register or *repair* it, "depending on the hardware budget"; and
leave the pattern-table update until the outcome is known.

This module implements that machinery for the two-level predictors:

* :class:`SpeculativeTwoLevel` wraps GAg/PAg/PAp with speculative
  first-level update and a configurable mis-speculation policy
  (``repair`` — restore the exact pre-branch history then insert the
  real outcome; ``reinitialise`` — refill with the resolved outcome, a
  cheap approximation; ``none`` — leave the wrong bit in place).
* :func:`simulate_delayed` replays a trace with resolution latency D:
  predictions happen immediately, outcomes (pattern-table updates and
  mis-speculation recovery) arrive D branches later.

With D = 0 the speculative wrapper is exactly equivalent to the
baseline predictor (tested); the interesting measurements are the
accuracy loss of *stale* (non-speculative) history at D > 0 versus the
near-zero loss of speculative history with repair — the paper's
argument, quantified in ``benchmarks/test_bench_speculative.py``.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple, Union

from ..predictors.base import BranchPredictor
from ..trace.events import BranchClass, Trace
from .results import SimulationResult
from ..core.history import history_fill, history_mask
from ..core.twolevel import GAgPredictor, PAgPredictor, PApPredictor

__all__ = ["DelayedResult", "RecoveryPolicy", "SpeculativeTwoLevel", "simulate_delayed"]


class RecoveryPolicy(enum.Enum):
    """What to do with speculative history after a misprediction."""

    REPAIR = "repair"
    REINITIALISE = "reinitialise"
    NONE = "none"


class SpeculativeTwoLevel(BranchPredictor):
    """Speculative first-level update for a two-level predictor.

    ``predict`` shifts the *predicted* direction into the branch's
    history register immediately (so subsequent predictions see fresh
    history even before resolution); ``resolve`` applies the pattern-
    table update with the history the prediction used and recovers the
    register if the speculation was wrong.

    The wrapped predictor must be one of the two-level classes; its own
    ``predict``/``update`` are bypassed in favour of this protocol.
    """

    def __init__(
        self,
        inner: Union[GAgPredictor, PAgPredictor, PApPredictor],
        policy: RecoveryPolicy = RecoveryPolicy.REPAIR,
    ) -> None:
        self.inner = inner
        self.policy = policy
        self.history_bits = inner.history_bits
        self._mask = history_mask(self.history_bits)
        self.name = f"spec[{policy.value}]:{inner.name}"
        self.speculative_updates = 0
        self.recoveries = 0
        self._last: Optional[Tuple[int, Tuple[int, bool, bool]]] = None

    # ------------------------------------------------------------------
    # First-level plumbing over the three variants
    # ------------------------------------------------------------------
    def _read_history(self, pc: int) -> Tuple[int, bool]:
        """(history value, fresh) for the branch, allocating on miss."""
        if isinstance(self.inner, GAgPredictor):
            return self.inner.ghr, False
        entry = self.inner._access_entry(pc)
        return entry.value, entry.fresh

    def _write_history(self, pc: int, value: int, fresh: bool) -> None:
        if isinstance(self.inner, GAgPredictor):
            self.inner.ghr = value & self._mask
            return
        entry = self.inner.bht.peek(pc)
        if entry is None:
            entry = self.inner._access_entry(pc)
        entry.value = value & self._mask
        entry.fresh = fresh

    def _pattern_table(self, pc: int):
        if isinstance(self.inner, PApPredictor):
            entry = self.inner.bht.peek(pc)
            if entry is None:
                entry = self.inner._access_entry(pc)
            return self.inner.bank.table_for(entry.slot)
        return self.inner.pht

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def predict(self, pc: int, target: int = 0) -> bool:
        """Predict and speculatively advance the branch's history.

        Returns the prediction; the (pattern, prediction, fresh) tuple
        needed at resolve time is obtained via :meth:`predict_tagged`.
        """
        prediction, _context = self.predict_tagged(pc, target)
        return prediction

    def predict_tagged(self, pc: int, target: int = 0) -> Tuple[bool, Tuple[int, bool, bool]]:
        """Predict, speculate, and hand back the resolve context."""
        history, fresh = self._read_history(pc)
        table = self._pattern_table(pc)
        prediction = table.predict(history)
        # Speculative first-level update with the *predicted* outcome.
        if fresh:
            speculative = history_fill(prediction, self.history_bits)
        else:
            speculative = ((history << 1) | (1 if prediction else 0)) & self._mask
        self._write_history(pc, speculative, False)
        self.speculative_updates += 1
        context = (history, prediction, fresh)
        self._last = (pc, context)
        return prediction, context

    def resolve(self, pc: int, taken: bool, context: Tuple[int, bool, bool]) -> None:
        """Apply the outcome: pattern update + history recovery."""
        history, prediction, fresh = context
        self._pattern_table(pc).update(history, taken)
        if prediction == taken:
            return
        self.recoveries += 1
        if self.policy is RecoveryPolicy.REPAIR:
            if fresh:
                repaired = history_fill(taken, self.history_bits)
            else:
                repaired = ((history << 1) | (1 if taken else 0)) & self._mask
            self._write_history(pc, repaired, False)
        elif self.policy is RecoveryPolicy.REINITIALISE:
            self._write_history(pc, history_fill(taken, self.history_bits), False)
        # RecoveryPolicy.NONE: the wrong speculative bit stays.

    def update(self, pc: int, taken: bool, target: int = 0) -> None:
        """Immediate-resolution compatibility path (D = 0).

        Uses the context stashed by the most recent ``predict`` call,
        which the baseline engine guarantees was for this branch.
        """
        if self._last is None or self._last[0] != pc:
            # Engine discipline violated (update without predict):
            # fall back to a fresh prediction's context.
            self.predict_tagged(pc, target)
        assert self._last is not None
        _pc, context = self._last
        self._last = None
        self.resolve(pc, taken, context)

    def on_context_switch(self) -> None:
        self.inner.on_context_switch()


@dataclass(frozen=True)
class DelayedResult:
    """Outcome of a delayed-resolution simulation."""

    result: SimulationResult
    resolution_latency: int
    speculative: bool
    recoveries: int = 0


class _InFlight:
    """One unresolved branch in the delayed-resolution pipeline."""

    __slots__ = ("pc", "taken", "context", "prediction", "correct")

    def __init__(self, pc: int, taken: bool, context, prediction: bool) -> None:
        self.pc = pc
        self.taken = taken
        self.context = context
        self.prediction = prediction
        self.correct = prediction == taken


def simulate_delayed(
    predictor: BranchPredictor,
    trace: Trace,
    resolution_latency: int = 0,
    speculative: Optional[SpeculativeTwoLevel] = None,
) -> DelayedResult:
    """Replay ``trace`` with outcomes arriving ``resolution_latency``
    branches after their predictions.

    Two modes:

    * plain ``predictor`` — updates are simply applied D branches late,
      modelling *stale* history (the problem §3.1 identifies);
    * ``speculative`` wrapper — predictions update the first level
      speculatively; a misprediction **squashes** the younger in-flight
      branches exactly as a pipeline flush does: their speculative
      history writes are rolled back (checkpoint restore), the
      offending branch's register is recovered per the wrapper's
      policy, and the squashed branches are re-predicted with the
      corrected history. Their re-predictions are the architectural
      ones and are the ones scored.
    """
    if resolution_latency < 0:
        raise ValueError("resolution latency must be >= 0")
    conditional = 0
    correct = 0

    if speculative is None:
        pending: Deque = deque()
        cond_class = int(BranchClass.CONDITIONAL)
        for pc, taken, cls, target, _instret, _trap in trace.iter_tuples():
            if cls != cond_class:
                continue
            # Keep `resolution_latency` older branches unresolved while
            # this one is predicted with (stale) history.
            while len(pending) > resolution_latency:
                old_pc, old_taken = pending.popleft()
                predictor.update(old_pc, old_taken)
            prediction = predictor.predict(pc, target)
            pending.append((pc, taken))
            conditional += 1
            if prediction == taken:
                correct += 1
        while pending:
            old_pc, old_taken = pending.popleft()
            predictor.update(old_pc, old_taken)
        result = SimulationResult(
            predictor_name=predictor.name,
            trace_name=trace.meta.name,
            dataset=trace.meta.dataset,
            conditional_branches=conditional,
            correct_predictions=correct,
        )
        return DelayedResult(result, resolution_latency, speculative=False)

    wrapper = speculative
    pending_spec: Deque[_InFlight] = deque()

    def resolve_oldest() -> None:
        nonlocal correct
        record = pending_spec.popleft()
        if record.correct:
            # Pattern update only; speculative history was right.
            wrapper._pattern_table(record.pc).update(record.context[0], record.taken)
            correct += 1
            return
        # Misprediction: squash younger work. Roll back speculative
        # history writes youngest-first (checkpoint restore)...
        for young in reversed(pending_spec):
            history, _prediction, fresh = young.context
            wrapper._write_history(young.pc, history, fresh)
        squashed = list(pending_spec)
        pending_spec.clear()
        # ...apply the resolved outcome (pattern + recovery policy)...
        wrapper.resolve(record.pc, record.taken, record.context)
        # ...and re-fetch the squashed branches with corrected history.
        for young in squashed:
            prediction, context = wrapper.predict_tagged(young.pc)
            young.prediction = prediction
            young.context = context
            young.correct = prediction == young.taken
            pending_spec.append(young)

    cond_class = int(BranchClass.CONDITIONAL)
    for pc, taken, cls, target, _instret, _trap in trace.iter_tuples():
        if cls != cond_class:
            continue
        while len(pending_spec) > resolution_latency:
            resolve_oldest()
        prediction, context = wrapper.predict_tagged(pc, target)
        pending_spec.append(_InFlight(pc, taken, context, prediction))
        conditional += 1
    while pending_spec:
        resolve_oldest()

    result = SimulationResult(
        predictor_name=wrapper.name,
        trace_name=trace.meta.name,
        dataset=trace.meta.dataset,
        conditional_branches=conditional,
        correct_predictions=correct,
    )
    return DelayedResult(
        result=result,
        resolution_latency=resolution_latency,
        speculative=True,
        recoveries=wrapper.recoveries,
    )
