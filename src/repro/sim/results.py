"""Simulation results and the paper's aggregation conventions.

Every figure in the paper reports per-benchmark prediction accuracy
plus three geometric means: "Int GMean" over the integer benchmarks,
"FP GMean" over the floating-point benchmarks, and "Tot GMean" over all
nine. :class:`ResultMatrix` reproduces exactly that layout for a set of
schemes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "CellTelemetry",
    "ResultMatrix",
    "RunTelemetry",
    "SimulationResult",
    "geometric_mean",
]


@dataclass(frozen=True)
class SimulationResult:
    """The outcome of replaying one trace through one predictor."""

    predictor_name: str
    trace_name: str
    dataset: str
    conditional_branches: int
    correct_predictions: int
    context_switches: int = 0
    per_site_executions: Optional[Dict[int, int]] = None
    per_site_mispredictions: Optional[Dict[int, int]] = None
    total_instructions: int = 0

    @property
    def accuracy(self) -> float:
        """Fraction of conditional branches predicted correctly."""
        if self.conditional_branches == 0:
            return 0.0
        return self.correct_predictions / self.conditional_branches

    @property
    def mispredictions(self) -> int:
        return self.conditional_branches - self.correct_predictions

    @property
    def misprediction_rate(self) -> float:
        return 1.0 - self.accuracy if self.conditional_branches else 0.0

    @property
    def mpki(self) -> float:
        """Mispredictions per 1000 dynamic instructions.

        The architectural-impact view of accuracy: a benchmark with few
        branches per instruction can afford a worse predictor. Requires
        the trace to carry instruction counts (all producers in this
        repo do); 0.0 when unavailable.
        """
        if self.total_instructions <= 0:
            return 0.0
        return 1000.0 * self.mispredictions / self.total_instructions

    def worst_sites(self, count: int = 10) -> List[Tuple[int, int, int]]:
        """The ``count`` static branches with the most mispredictions.

        Returns:
            (pc, mispredictions, executions) tuples, most-missed first.
            Requires the simulation to have run with per-site tracking.
        """
        if self.per_site_mispredictions is None or self.per_site_executions is None:
            raise ValueError("simulation did not track per-site statistics")
        ranked = sorted(
            self.per_site_mispredictions.items(), key=lambda item: -item[1]
        )
        return [
            (pc, wrong, self.per_site_executions.get(pc, 0))
            for pc, wrong in ranked[:count]
        ]

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a JSON-compatible dict that round-trips exactly.

        All stored fields are integers, strings or integer-keyed count
        dicts, so :meth:`from_dict` reconstructs a result that compares
        equal (and whose derived floats — ``accuracy``, ``mpki`` — are
        bit-identical, since they are recomputed from the same ints).
        Per-site dict keys are stringified for JSON; ``from_dict``
        restores them to ints.
        """
        payload: Dict[str, Any] = {
            "predictor_name": self.predictor_name,
            "trace_name": self.trace_name,
            "dataset": self.dataset,
            "conditional_branches": self.conditional_branches,
            "correct_predictions": self.correct_predictions,
            "context_switches": self.context_switches,
            "total_instructions": self.total_instructions,
        }
        if self.per_site_executions is not None:
            payload["per_site_executions"] = {
                str(pc): count for pc, count in self.per_site_executions.items()
            }
        if self.per_site_mispredictions is not None:
            payload["per_site_mispredictions"] = {
                str(pc): count for pc, count in self.per_site_mispredictions.items()
            }
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SimulationResult":
        """Reconstruct a result serialized by :meth:`to_dict`."""

        def _int_keys(mapping: Optional[Mapping[Any, int]]) -> Optional[Dict[int, int]]:
            if mapping is None:
                return None
            return {int(pc): int(count) for pc, count in mapping.items()}

        return cls(
            predictor_name=payload["predictor_name"],
            trace_name=payload["trace_name"],
            dataset=payload["dataset"],
            conditional_branches=int(payload["conditional_branches"]),
            correct_predictions=int(payload["correct_predictions"]),
            context_switches=int(payload.get("context_switches", 0)),
            per_site_executions=_int_keys(payload.get("per_site_executions")),
            per_site_mispredictions=_int_keys(payload.get("per_site_mispredictions")),
            total_instructions=int(payload.get("total_instructions", 0)),
        )

    def __str__(self) -> str:
        return (
            f"{self.predictor_name} on {self.trace_name}: "
            f"{self.accuracy * 100:.2f}% "
            f"({self.correct_predictions}/{self.conditional_branches})"
        )


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; empty input yields 0.0 (matches 'no data' cells)."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class CellTelemetry:
    """How one (scheme, benchmark) cell of a run was satisfied.

    Attributes:
        scheme: scheme label (row of the matrix).
        benchmark: benchmark name (column of the matrix).
        wall_time: seconds spent producing this cell (simulation time in
            the worker, or lookup time for a cache hit).
        source: ``"simulated"`` (ran :func:`~repro.sim.engine.simulate`),
            ``"cache"`` (served from the on-disk result cache), or
            ``"unavailable"`` (builder raised ``TrainingUnavailable`` —
            the cell stays blank, as in the paper's Figure 11).
        phases: per-phase breakdown of ``wall_time`` in seconds, keyed
            by phase name (``"trace_load"``, ``"build"``, ``"simulate"``,
            ``"cache_lookup"``). Empty for records produced before the
            phase spans existed (e.g. deserialised old telemetry). The
            ``"simulate"`` span always carries that name regardless of
            engine backend, so throughput comparisons across backends
            line up; :attr:`backend` says which one ran.
        backend: the engine backend that produced the ``"simulate"``
            span (``"python"`` or ``"vectorized"``); ``""`` when the
            cell ran no simulation (cache hits, unavailable cells) or
            predates backend tracking.
        rss_peak: peak resident set size, in bytes, of the process that
            produced this cell (the worker's high-water mark as of cell
            completion — see :func:`repro.obs.resources.read_resources`);
            0 for cache hits and records that predate RSS tracking.
    """

    scheme: str
    benchmark: str
    wall_time: float
    source: str
    phases: Dict[str, float] = field(default_factory=dict)
    backend: str = ""
    rss_peak: int = 0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-compatible rendering (used by ``RunTelemetry.to_dict``)."""
        return {
            "scheme": self.scheme,
            "benchmark": self.benchmark,
            "wall_time": self.wall_time,
            "source": self.source,
            "phases": dict(self.phases),
            "backend": self.backend,
            "rss_peak": self.rss_peak,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CellTelemetry":
        return cls(
            scheme=payload["scheme"],
            benchmark=payload["benchmark"],
            wall_time=float(payload["wall_time"]),
            source=payload["source"],
            phases={k: float(v) for k, v in payload.get("phases", {}).items()},
            backend=payload.get("backend", ""),
            rss_peak=int(payload.get("rss_peak", 0)),
        )


@dataclass
class RunTelemetry:
    """Lightweight accounting for one ``run_matrix`` execution.

    Recorded on :attr:`ResultMatrix.telemetry` and surfaced by the
    experiments CLI. Telemetry never participates in matrix equality —
    a cached and a fresh run of the same sweep compare equal even
    though their telemetry differs.

    Attributes:
        n_workers: worker processes the run was configured with.
        shards: trace-shard count simulated cells ran with (the
            ``shards=`` knob of ``run_matrix``); 0 when the run used
            whole-trace execution.
        cache_hits: cells served from the on-disk result cache.
        cache_misses: cacheable cells that had to be computed.
        uncacheable: cells whose builder carries no cache key (plain
            callables) while a result cache was in use.
        simulations: cells that actually executed a simulation.
        unavailable: cells skipped because training data was missing.
        wall_time: end-to-end seconds for the whole matrix.
        phase_seconds: run-wide seconds per execution phase, aggregated
            over the cells' :attr:`CellTelemetry.phases` breakdowns.
        cells: per-cell records, deterministic (scheme-major) order.
    """

    n_workers: int = 1
    shards: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    uncacheable: int = 0
    simulations: int = 0
    unavailable: int = 0
    wall_time: float = 0.0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    cells: List[CellTelemetry] = field(default_factory=list)

    @property
    def total_cells(self) -> int:
        return len(self.cells)

    def record(
        self,
        scheme: str,
        benchmark: str,
        wall_time: float,
        source: str,
        phases: Optional[Mapping[str, float]] = None,
        backend: str = "",
        rss_peak: int = 0,
    ) -> None:
        """Append one cell record and bump the matching counter."""
        cell_phases = dict(phases) if phases else {}
        self.cells.append(
            CellTelemetry(
                scheme,
                benchmark,
                wall_time,
                source,
                phases=cell_phases,
                backend=backend,
                rss_peak=rss_peak,
            )
        )
        for phase, seconds in cell_phases.items():
            self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds
        if source == "simulated":
            self.simulations += 1
        elif source == "cache":
            self.cache_hits += 1
        elif source == "unavailable":
            self.unavailable += 1

    def merged_with(self, other: Optional["RunTelemetry"]) -> "RunTelemetry":
        """Combine two runs' telemetry (used when drivers merge matrices).

        ``other=None`` (a matrix that carried no telemetry) merges as an
        empty record, so drivers can combine matrices without checking.
        """
        if other is None:
            other = RunTelemetry(n_workers=self.n_workers)
        phase_seconds = dict(self.phase_seconds)
        for phase, seconds in other.phase_seconds.items():
            phase_seconds[phase] = phase_seconds.get(phase, 0.0) + seconds
        return RunTelemetry(
            n_workers=max(self.n_workers, other.n_workers),
            shards=max(self.shards, other.shards),
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            uncacheable=self.uncacheable + other.uncacheable,
            simulations=self.simulations + other.simulations,
            unavailable=self.unavailable + other.unavailable,
            wall_time=self.wall_time + other.wall_time,
            phase_seconds=phase_seconds,
            cells=self.cells + other.cells,
        )

    @staticmethod
    def merge(
        first: Optional["RunTelemetry"], second: Optional["RunTelemetry"]
    ) -> Optional["RunTelemetry"]:
        """None-safe combination of two optional telemetry records.

        Matrices built by hand (or deserialised from JSON) carry
        ``telemetry=None``; drivers that merge arbitrary matrices use
        this instead of :meth:`merged_with` so neither side needs a
        guard. Returns ``None`` only when both sides are ``None``.
        """
        if first is None:
            return second
        return first.merged_with(second)

    def as_dict(self) -> Dict[str, Any]:
        """Structured summary (counters only; JSON-compatible)."""
        return {
            "n_workers": self.n_workers,
            "total_cells": self.total_cells,
            "simulations": self.simulations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "uncacheable": self.uncacheable,
            "unavailable": self.unavailable,
            "wall_time_s": round(self.wall_time, 4),
            "phase_seconds": {
                phase: round(seconds, 4)
                for phase, seconds in sorted(self.phase_seconds.items())
            },
        }

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON-compatible serialisation, including per-cell records.

        Unlike :meth:`as_dict` (a rounded summary for run reports), this
        round-trips exactly through :meth:`from_dict` — used when run
        telemetry travels with a persisted :class:`RunReport`.
        """
        return {
            "n_workers": self.n_workers,
            "shards": self.shards,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "uncacheable": self.uncacheable,
            "simulations": self.simulations,
            "unavailable": self.unavailable,
            "wall_time": self.wall_time,
            "phase_seconds": dict(self.phase_seconds),
            "cells": [cell.as_dict() for cell in self.cells],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunTelemetry":
        """Reconstruct telemetry serialised by :meth:`to_dict`."""
        return cls(
            n_workers=int(payload.get("n_workers", 1)),
            shards=int(payload.get("shards", 0)),
            cache_hits=int(payload.get("cache_hits", 0)),
            cache_misses=int(payload.get("cache_misses", 0)),
            uncacheable=int(payload.get("uncacheable", 0)),
            simulations=int(payload.get("simulations", 0)),
            unavailable=int(payload.get("unavailable", 0)),
            wall_time=float(payload.get("wall_time", 0.0)),
            phase_seconds={
                k: float(v) for k, v in payload.get("phase_seconds", {}).items()
            },
            cells=[CellTelemetry.from_dict(cell) for cell in payload.get("cells", [])],
        )

    @property
    def peak_rss_bytes(self) -> int:
        """Largest per-cell worker RSS high-water mark (0 if untracked)."""
        return max((cell.rss_peak for cell in self.cells), default=0)

    @property
    def backend_counts(self) -> Dict[str, int]:
        """Simulated-cell count per engine backend, sorted by name."""
        counts: Dict[str, int] = {}
        for cell in self.cells:
            if cell.backend:
                counts[cell.backend] = counts.get(cell.backend, 0) + 1
        return {name: counts[name] for name in sorted(counts)}

    def summary_line(self) -> str:
        """One-line human rendering, e.g. for CLI stderr output."""
        line = (
            f"{self.total_cells} cells | {self.simulations} simulated, "
            f"{self.cache_hits} cache hits, {self.cache_misses} misses, "
            f"{self.unavailable} unavailable | workers={self.n_workers} "
            f"| {self.wall_time:.2f}s"
        )
        backends = self.backend_counts
        if backends:
            rendered = ", ".join(f"{name} x{count}" for name, count in backends.items())
            line += f" | backend: {rendered}"
        peak = self.peak_rss_bytes
        if peak > 0:
            line += f" | peak rss {peak / (1024 * 1024):.0f} MiB"
        return line


@dataclass
class ResultMatrix:
    """Accuracy of many schemes over many benchmarks (one figure's data).

    Attributes:
        benchmarks: benchmark names, figure order.
        categories: benchmark -> "int" or "fp" (drives the GMean split).
        cells: scheme -> benchmark -> :class:`SimulationResult`. Missing
            cells (e.g. GSg on benchmarks without a training set) are
            simply absent, as in the paper's Figure 11.
        telemetry: optional :class:`RunTelemetry` for the run that
            produced the matrix; excluded from equality comparisons so
            cached and fresh runs of the same sweep compare equal.
    """

    benchmarks: List[str]
    categories: Mapping[str, str]
    cells: Dict[str, Dict[str, SimulationResult]] = field(default_factory=dict)
    telemetry: Optional[RunTelemetry] = field(default=None, compare=False, repr=False)

    def add(self, scheme: str, result: SimulationResult) -> None:
        self.cells.setdefault(scheme, {})[result.trace_name] = result

    @property
    def schemes(self) -> List[str]:
        return list(self.cells)

    def accuracy(self, scheme: str, benchmark: str) -> Optional[float]:
        result = self.cells.get(scheme, {}).get(benchmark)
        return result.accuracy if result is not None else None

    def row(self, scheme: str) -> Dict[str, float]:
        """benchmark -> accuracy for one scheme (missing cells omitted)."""
        return {
            benchmark: result.accuracy
            for benchmark, result in self.cells.get(scheme, {}).items()
        }

    def gmean(self, scheme: str, category: Optional[str] = None) -> float:
        """Geometric-mean accuracy for a scheme.

        Args:
            category: ``"int"``, ``"fp"`` or ``None`` for "Tot GMean".
        """
        values = [
            result.accuracy
            for benchmark, result in self.cells.get(scheme, {}).items()
            if category is None or self.categories.get(benchmark) == category
        ]
        return geometric_mean(values)

    def summary(self, scheme: str) -> Dict[str, float]:
        """The paper's three means for one scheme."""
        return {
            "Int GMean": self.gmean(scheme, "int"),
            "FP GMean": self.gmean(scheme, "fp"),
            "Tot GMean": self.gmean(scheme, None),
        }

    def best_scheme(self, category: Optional[str] = None) -> str:
        """The scheme with the highest (category) geometric mean."""
        if not self.cells:
            raise ValueError("empty result matrix")
        return max(self.schemes, key=lambda scheme: self.gmean(scheme, category))

    def as_rows(self) -> List[Dict[str, object]]:
        """Flatten to row dictionaries (for rendering / CSV export)."""
        rows: List[Dict[str, object]] = []
        for scheme in self.schemes:
            row: Dict[str, object] = {"scheme": scheme}
            for benchmark in self.benchmarks:
                accuracy = self.accuracy(scheme, benchmark)
                row[benchmark] = accuracy
            row["Int GMean"] = self.gmean(scheme, "int")
            row["FP GMean"] = self.gmean(scheme, "fp")
            row["Tot GMean"] = self.gmean(scheme, None)
            rows.append(row)
        return rows

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a JSON-compatible dict that round-trips exactly.

        Cells are stored via :meth:`SimulationResult.to_dict` (integer
        counts, so no float precision is lost). Benchmarks a scheme
        could not be evaluated on (``TrainingUnavailable``) are written
        as explicit ``null`` cells, and :meth:`from_dict` restores them
        to *absent* cells — the in-memory representation of a blank
        figure point — so ``from_dict(m.to_dict()) == m`` always holds.
        """
        return {
            "benchmarks": list(self.benchmarks),
            "categories": dict(self.categories),
            "cells": {
                scheme: {
                    benchmark: (
                        row[benchmark].to_dict() if benchmark in row else None
                    )
                    for benchmark in list(self.benchmarks)
                    + [name for name in row if name not in self.benchmarks]
                }
                for scheme, row in self.cells.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ResultMatrix":
        """Reconstruct a matrix serialized by :meth:`to_dict`.

        ``null`` cells (blank figure points) are skipped, matching how a
        fresh run leaves unavailable cells absent.
        """
        matrix = cls(
            benchmarks=list(payload["benchmarks"]),
            categories=dict(payload["categories"]),
        )
        for scheme, row in payload.get("cells", {}).items():
            # Preserve scheme rows even when every cell is blank.
            matrix.cells.setdefault(scheme, {})
            for cell in row.values():
                if cell is not None:
                    matrix.add(scheme, SimulationResult.from_dict(cell))
        return matrix
