"""Simulation results and the paper's aggregation conventions.

Every figure in the paper reports per-benchmark prediction accuracy
plus three geometric means: "Int GMean" over the integer benchmarks,
"FP GMean" over the floating-point benchmarks, and "Tot GMean" over all
nine. :class:`ResultMatrix` reproduces exactly that layout for a set of
schemes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class SimulationResult:
    """The outcome of replaying one trace through one predictor."""

    predictor_name: str
    trace_name: str
    dataset: str
    conditional_branches: int
    correct_predictions: int
    context_switches: int = 0
    per_site_executions: Optional[Dict[int, int]] = None
    per_site_mispredictions: Optional[Dict[int, int]] = None
    total_instructions: int = 0

    @property
    def accuracy(self) -> float:
        """Fraction of conditional branches predicted correctly."""
        if self.conditional_branches == 0:
            return 0.0
        return self.correct_predictions / self.conditional_branches

    @property
    def mispredictions(self) -> int:
        return self.conditional_branches - self.correct_predictions

    @property
    def misprediction_rate(self) -> float:
        return 1.0 - self.accuracy if self.conditional_branches else 0.0

    @property
    def mpki(self) -> float:
        """Mispredictions per 1000 dynamic instructions.

        The architectural-impact view of accuracy: a benchmark with few
        branches per instruction can afford a worse predictor. Requires
        the trace to carry instruction counts (all producers in this
        repo do); 0.0 when unavailable.
        """
        if self.total_instructions <= 0:
            return 0.0
        return 1000.0 * self.mispredictions / self.total_instructions

    def worst_sites(self, count: int = 10) -> List[Tuple[int, int, int]]:
        """The ``count`` static branches with the most mispredictions.

        Returns:
            (pc, mispredictions, executions) tuples, most-missed first.
            Requires the simulation to have run with per-site tracking.
        """
        if self.per_site_mispredictions is None or self.per_site_executions is None:
            raise ValueError("simulation did not track per-site statistics")
        ranked = sorted(
            self.per_site_mispredictions.items(), key=lambda item: -item[1]
        )
        return [
            (pc, wrong, self.per_site_executions.get(pc, 0))
            for pc, wrong in ranked[:count]
        ]

    def __str__(self) -> str:
        return (
            f"{self.predictor_name} on {self.trace_name}: "
            f"{self.accuracy * 100:.2f}% "
            f"({self.correct_predictions}/{self.conditional_branches})"
        )


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; empty input yields 0.0 (matches 'no data' cells)."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class ResultMatrix:
    """Accuracy of many schemes over many benchmarks (one figure's data).

    Attributes:
        benchmarks: benchmark names, figure order.
        categories: benchmark -> "int" or "fp" (drives the GMean split).
        cells: scheme -> benchmark -> :class:`SimulationResult`. Missing
            cells (e.g. GSg on benchmarks without a training set) are
            simply absent, as in the paper's Figure 11.
    """

    benchmarks: List[str]
    categories: Mapping[str, str]
    cells: Dict[str, Dict[str, SimulationResult]] = field(default_factory=dict)

    def add(self, scheme: str, result: SimulationResult) -> None:
        self.cells.setdefault(scheme, {})[result.trace_name] = result

    @property
    def schemes(self) -> List[str]:
        return list(self.cells)

    def accuracy(self, scheme: str, benchmark: str) -> Optional[float]:
        result = self.cells.get(scheme, {}).get(benchmark)
        return result.accuracy if result is not None else None

    def row(self, scheme: str) -> Dict[str, float]:
        """benchmark -> accuracy for one scheme (missing cells omitted)."""
        return {
            benchmark: result.accuracy
            for benchmark, result in self.cells.get(scheme, {}).items()
        }

    def gmean(self, scheme: str, category: Optional[str] = None) -> float:
        """Geometric-mean accuracy for a scheme.

        Args:
            category: ``"int"``, ``"fp"`` or ``None`` for "Tot GMean".
        """
        values = [
            result.accuracy
            for benchmark, result in self.cells.get(scheme, {}).items()
            if category is None or self.categories.get(benchmark) == category
        ]
        return geometric_mean(values)

    def summary(self, scheme: str) -> Dict[str, float]:
        """The paper's three means for one scheme."""
        return {
            "Int GMean": self.gmean(scheme, "int"),
            "FP GMean": self.gmean(scheme, "fp"),
            "Tot GMean": self.gmean(scheme, None),
        }

    def best_scheme(self, category: Optional[str] = None) -> str:
        """The scheme with the highest (category) geometric mean."""
        if not self.cells:
            raise ValueError("empty result matrix")
        return max(self.schemes, key=lambda scheme: self.gmean(scheme, category))

    def as_rows(self) -> List[Dict[str, object]]:
        """Flatten to row dictionaries (for rendering / CSV export)."""
        rows: List[Dict[str, object]] = []
        for scheme in self.schemes:
            row: Dict[str, object] = {"scheme": scheme}
            for benchmark in self.benchmarks:
                accuracy = self.accuracy(scheme, benchmark)
                row[benchmark] = accuracy
            row["Int GMean"] = self.gmean(scheme, "int")
            row["FP GMean"] = self.gmean(scheme, "fp")
            row["Tot GMean"] = self.gmean(scheme, None)
            rows.append(row)
        return rows
