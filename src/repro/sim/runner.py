"""Experiment runner: (schemes x benchmarks) -> result matrix.

The unit of evaluation is a :class:`BenchmarkCase` — a named testing
trace, its int/fp category, and an optional training trace (Table 2 has
"NA" training sets for four benchmarks; schemes that need training are
simply not run there, matching the blank points in Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from ..predictors.base import BranchPredictor, TrainingUnavailable
from ..trace.events import Trace
from .engine import ContextSwitchConfig, simulate
from .results import ResultMatrix, SimulationResult

PredictorBuilder = Callable[[Optional[Trace]], BranchPredictor]
"""Builds a fresh predictor, given the benchmark's training trace (or
None). Raise :class:`TrainingUnavailable` to leave the cell blank."""


@dataclass(frozen=True)
class BenchmarkCase:
    """One benchmark of the evaluation suite.

    Attributes:
        name: benchmark name (e.g. ``"eqntott"``).
        category: ``"int"`` or ``"fp"`` — drives the GMean split.
        test_trace: the trace scored by the simulation.
        training_trace: profiling input for GSg/PSg/Profile; ``None``
            when Table 2 lists "NA".
    """

    name: str
    category: str
    test_trace: Trace
    training_trace: Optional[Trace] = None

    def __post_init__(self) -> None:
        if self.category not in ("int", "fp"):
            raise ValueError(f"category must be 'int' or 'fp', got {self.category!r}")


def run_case(
    builder: PredictorBuilder,
    case: BenchmarkCase,
    context_switches: Optional[ContextSwitchConfig] = None,
    track_per_site: bool = False,
) -> Optional[SimulationResult]:
    """Run one (scheme, benchmark) cell; None when training is missing."""
    try:
        predictor = builder(case.training_trace)
    except TrainingUnavailable:
        return None
    return simulate(
        predictor,
        case.test_trace,
        context_switches=context_switches,
        track_per_site=track_per_site,
    )


def run_matrix(
    builders: Mapping[str, PredictorBuilder],
    cases: Sequence[BenchmarkCase],
    context_switches: Optional[ContextSwitchConfig] = None,
) -> ResultMatrix:
    """Evaluate every scheme on every benchmark.

    Args:
        builders: scheme label -> predictor builder. A fresh predictor
            is built per benchmark so state never leaks between traces.
        cases: the benchmark suite, figure order.
        context_switches: when given, applied to every simulation.

    Returns:
        A :class:`ResultMatrix` with one cell per (scheme, benchmark)
        that could be evaluated.
    """
    matrix = ResultMatrix(
        benchmarks=[case.name for case in cases],
        categories={case.name: case.category for case in cases},
    )
    for label, builder in builders.items():
        for case in cases:
            result = run_case(builder, case, context_switches=context_switches)
            if result is not None:
                matrix.add(label, result)
    return matrix


def sweep_parameter(
    make_builder: Callable[[int], PredictorBuilder],
    values: Sequence[int],
    cases: Sequence[BenchmarkCase],
    label: Callable[[int], str] = str,
    context_switches: Optional[ContextSwitchConfig] = None,
) -> ResultMatrix:
    """Evaluate a family of schemes indexed by one integer parameter.

    Used for the history-length sweeps of Figures 6 and 7.
    """
    builders = {label(value): make_builder(value) for value in values}
    return run_matrix(builders, cases, context_switches=context_switches)
