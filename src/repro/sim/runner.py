"""Experiment runner: (schemes x benchmarks) -> result matrix.

The unit of evaluation is a :class:`BenchmarkCase` — a named testing
trace, its int/fp category, and an optional training trace (Table 2 has
"NA" training sets for four benchmarks; schemes that need training are
simply not run there, matching the blank points in Figure 11).

Execution of the cross product is delegated to
:mod:`repro.sim.parallel`, which adds worker-process fan-out, on-disk
result caching and run telemetry. The defaults (``n_workers=1``, no
cache) replay every cell serially in-process; any other configuration
is guaranteed to produce a bit-identical :class:`ResultMatrix`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping, Optional, Sequence

from ..predictors.base import BranchPredictor, TrainingUnavailable
from ..trace.cache import ResultCache
from ..trace.events import Trace
from .engine import ContextSwitchConfig, simulate
from .results import ResultMatrix, SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..trace.stream import TraceSource

__all__ = [
    "BenchmarkCase",
    "PredictorBuilder",
    "run_case",
    "run_matrix",
    "sweep_parameter",
]

PredictorBuilder = Callable[[Optional[Trace]], BranchPredictor]
"""Builds a fresh predictor, given the benchmark's training trace (or
None). Raise :class:`TrainingUnavailable` to leave the cell blank.

Any callable works; :class:`repro.sim.parallel.PredictorSpec` builders
additionally survive pickling (parallel execution in worker processes)
and carry a stable cache key (on-disk result caching)."""


@dataclass(frozen=True)
class BenchmarkCase:
    """One benchmark of the evaluation suite.

    Attributes:
        name: benchmark name (e.g. ``"eqntott"``).
        category: ``"int"`` or ``"fp"`` — drives the GMean split.
        test_trace: the trace scored by the simulation — any bounded
            :class:`repro.trace.stream.TraceSource` (an in-memory
            :class:`~repro.trace.events.Trace` or an mmap-backed
            streamed container).
        training_trace: profiling input for GSg/PSg/Profile; ``None``
            when Table 2 lists "NA".
    """

    name: str
    category: str
    test_trace: "TraceSource"
    training_trace: Optional[Trace] = None

    def __post_init__(self) -> None:
        if self.category not in ("int", "fp"):
            raise ValueError(f"category must be 'int' or 'fp', got {self.category!r}")


def run_case(
    builder: PredictorBuilder,
    case: BenchmarkCase,
    context_switches: Optional[ContextSwitchConfig] = None,
    track_per_site: bool = False,
    probe=None,
    backend: str = "auto",
    block_size: Optional[int] = None,
    shards: Optional[int] = None,
) -> Optional[SimulationResult]:
    """Run one (scheme, benchmark) cell; None when training is missing.

    Args:
        builder: predictor builder; called with the case's training
            trace (or ``None``).
        case: the benchmark to score.
        context_switches: the paper's context-switch model, when given.
        track_per_site: collect per-static-branch statistics too.
        probe: optional :class:`repro.obs.Probe` observing the run;
            never affects the returned result (probed runs always take
            the interpreted backend).
        backend: simulation backend (``"auto"`` / ``"python"`` /
            ``"vectorized"``, see :data:`repro.sim.engine.SIM_BACKENDS`);
            backends are bit-identical wherever both apply.
        block_size: stream the test trace in blocks of at most this
            many records (see :func:`repro.sim.engine.simulate`);
            results are bit-identical for every block size.
        shards: run the trace-sharded kernel driver with this many
            chunks (see :mod:`repro.sim.shard`); bit-identical at every
            shard count. Mutually exclusive with ``block_size``.

    Deterministic: a fresh predictor is built for every call, so
    repeated invocations with the same inputs return identical counts.
    """
    try:
        predictor = builder(case.training_trace)
    except TrainingUnavailable:
        return None
    return simulate(
        predictor,
        case.test_trace,
        context_switches=context_switches,
        track_per_site=track_per_site,
        probe=probe,
        backend=backend,
        block_size=block_size,
        shards=shards,
    )


def run_matrix(
    builders: Mapping[str, PredictorBuilder],
    cases: Sequence[BenchmarkCase],
    context_switches: Optional[ContextSwitchConfig] = None,
    n_workers: int = 1,
    result_cache: Optional[ResultCache] = None,
    progress=None,
    tick=None,
    backend: str = "auto",
    tracer=None,
    shards: Optional[int] = None,
) -> ResultMatrix:
    """Evaluate every scheme on every benchmark.

    Args:
        builders: scheme label -> predictor builder. A fresh predictor
            is built per benchmark so state never leaks between traces.
        cases: the benchmark suite, figure order.
        context_switches: when given, applied to every simulation.
        n_workers: worker processes to fan the cells out over; ``1``
            (the default) runs a plain serial loop in this process.
            Every value of ``n_workers`` yields a bit-identical matrix —
            cells are independent and reassembled in scheme-major order.
        result_cache: optional on-disk cell cache
            (:class:`repro.trace.cache.ResultCache`). Cells whose
            builders carry a ``cache_key`` (e.g.
            :class:`~repro.sim.parallel.PredictorSpec`) are served from
            the cache when their trace + scheme + context-switch hash
            matches a previous run; plain callables always recompute.
        progress: optional live-monitoring hook receiving one
            :class:`repro.obs.live.Heartbeat` per cell event (see
            :func:`repro.sim.parallel.execute_matrix`); telemetry only,
            never affects results.
        tick: optional periodic callback for ``--follow`` renderers.
        backend: simulation backend for every cell (``"auto"`` /
            ``"python"`` / ``"vectorized"``). ``"auto"`` (the default)
            takes the vectorized kernels where a predictor has one and
            silently falls back otherwise; results are bit-identical
            either way, so the cache is shared across backends.
        tracer: optional :class:`repro.obs.spans.SpanCollector`; when
            given the whole sweep is span-traced (sweep → cell → phase
            → block hierarchy, worker spans shipped back through the
            heartbeat queue — see
            :func:`repro.sim.parallel.execute_matrix`). Telemetry only,
            never affects results.
        shards: run every cell through the trace-sharded kernel driver
            with this many chunks (:mod:`repro.sim.shard`); results are
            bit-identical at every shard count, so the cache stays
            shared across shard settings too.

    Returns:
        A :class:`ResultMatrix` with one cell per (scheme, benchmark)
        that could be evaluated, and
        :attr:`~repro.sim.results.ResultMatrix.telemetry` describing
        how the run was satisfied (simulations vs cache hits, per-cell
        wall time).
    """
    from .parallel import execute_matrix  # deferred: parallel imports run_case

    return execute_matrix(
        builders,
        cases,
        context_switches=context_switches,
        n_workers=n_workers,
        result_cache=result_cache,
        progress=progress,
        tick=tick,
        backend=backend,
        tracer=tracer,
        shards=shards,
    )


def sweep_parameter(
    make_builder: Callable[[int], PredictorBuilder],
    values: Sequence[int],
    cases: Sequence[BenchmarkCase],
    label: Callable[[int], str] = str,
    context_switches: Optional[ContextSwitchConfig] = None,
    n_workers: int = 1,
    result_cache: Optional[ResultCache] = None,
    progress=None,
    tick=None,
    backend: str = "auto",
    tracer=None,
    shards: Optional[int] = None,
) -> ResultMatrix:
    """Evaluate a family of schemes indexed by one integer parameter.

    Used for the history-length sweeps of Figures 6 and 7. Accepts the
    same ``n_workers`` / ``result_cache`` / ``progress`` / ``backend`` /
    ``tracer`` / ``shards`` knobs as :func:`run_matrix`.
    """
    builders = {label(value): make_builder(value) for value in values}
    return run_matrix(
        builders,
        cases,
        context_switches=context_switches,
        n_workers=n_workers,
        result_cache=result_cache,
        progress=progress,
        tick=tick,
        backend=backend,
        tracer=tracer,
        shards=shards,
    )
