"""Trace-sharded parallel execution of the vectorized kernels.

The batch kernels in :mod:`repro.sim.kernels` exploit one global fact:
every pattern-table entry starts a trace in the automaton's initial
state, so a single whole-trace sort + segmented scan replays everything.
This module splits the conditional stream into ``shards`` contiguous
chunks and runs each chunk's sort + scan concurrently — *without*
knowing the table state a chunk starts from.

The trick is the same algebra the serial scan is built on. A pattern
entry's evolution over a chunk is a composition of per-outcome
transition functions, each packed into one byte with a 256x256
composition LUT (proven exhaustively by ``repro.check.kernels``). A
chunk therefore does not need the entry state to make progress:

* **Resolved records** sit after an *absorbing* run (a saturating
  constant code) inside their chunk — their state is independent of
  anything earlier, so the chunk predicts them outright, exactly like
  the serial scan's segment splitting.
* **Unresolved records** (those in the first absorption segment of
  their key within the chunk) get a *prefix code*: the composition of
  every transition between chunk entry and the record. Applying that
  code to the still-unknown entry state is deferred.
* Per distinct key the chunk also emits a **carry code**: the
  composition of the key's entire chunk — a function mapping any entry
  state to the exit state.

Reconciliation is then a prefix product over chunks in trace order:
chunk 0 enters with every key in the automaton's initial state; each
chunk's unresolved records resolve with one gather
(``pred4[apply[prefix_code, entry_state]]``) and the carry codes
advance the states handed to the next chunk. The result is
**bit-identical** to the serial interpreted engine — including warmup,
per-site tracking and context-switch epochs — at every shard count,
because both paths compute exact automaton states; the equivalence-pin
suite in ``tests/test_sim_shard.py`` enforces this.

First-level state needs no symbolic treatment at all: history
registers, BHT residency and flush epochs are pure functions of the
trace, so the parent computes each scheme's per-record pattern-table
*keys* once (the "plan") and only the dominant sort + scan work is
sharded. Stateless schemes (GSg/PSg/static) are pure per-record
functions and run whole-trace; tournaments shard both components and
then the chooser scan over the disagreement records.

Chunks run on a thread pool (NumPy releases the GIL in the sort/scan
hot paths); ``shards=1`` degenerates to the serial scan and is the
equivalence baseline the tests pin.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from ..core.perset import SAgPredictor, SAsPredictor
from ..core.twolevel import (
    GAgPredictor,
    GApPredictor,
    GsharePredictor,
    PAgPredictor,
    PApPredictor,
)
from ..predictors.btb import BTBPredictor
from ..predictors.extensions import GselectPredictor, TournamentPredictor
from ..trace.events import Trace
from .engine import ContextSwitchConfig
from .kernels import (
    CHOOSER_AUTOMATON,
    IDENTITY_CODE,
    IdealBHT,
    KernelUnavailable,
    _AutomatonOps,
    _global_history,
    _group_sort,
    _kernel_for,
    _ops_for,
    _pa_layout,
    _pa_patterns,
    _per_record_preds,
    _perset_patterns,
    _Run,
    _score_predictions,
    _start_indices,
)
from .results import SimulationResult

__all__ = ["shard_supports", "simulate_sharded"]


def shard_supports(predictor) -> bool:
    """Whether :func:`simulate_sharded` can replay ``predictor``.

    Identical to :func:`repro.sim.kernels.kernel_supports`: the shard
    driver covers exactly the kernel-supported schemes (anything else
    falls back to the interpreted loop under ``backend="auto"``).
    """
    return _kernel_for(predictor) is not None


# ----------------------------------------------------------------------
# Per-chunk symbolic scan
# ----------------------------------------------------------------------

class _ChunkScan:
    """One chunk's output: resolved predictions, deferred prefix codes
    for the unresolved records, and per-key carry codes."""

    __slots__ = ("pred", "pos", "code", "key_local", "keys", "carry", "seconds")

    def __init__(self, pred, pos, code, key_local, keys, carry, seconds) -> None:
        self.pred = pred
        self.pos = pos            # chunk-relative trace positions, unresolved
        self.code = code          # prefix code per unresolved record
        self.key_local = key_local  # index into ``keys`` per unresolved record
        self.keys = keys          # distinct keys touched, ascending
        self.carry = carry        # per-key whole-chunk composition code
        self.seconds = seconds


def _empty_chunk() -> _ChunkScan:
    empty_i = np.empty(0, dtype=np.int64)
    return _ChunkScan(
        np.empty(0, dtype=np.bool_), empty_i, np.empty(0, dtype=np.uint8),
        empty_i, empty_i, np.empty(0, dtype=np.uint8), 0.0,
    )


def _chunk_scan(keys: np.ndarray, out_u8: np.ndarray, ops: _AutomatonOps) -> _ChunkScan:
    """Scan one contiguous chunk with symbolic (unknown) entry states.

    Mirrors :func:`repro.sim.kernels._find_runs` — same run collapse,
    same absorption segmentation, same Hillis-Steele doubling over the
    composition LUT — but where ``_find_runs`` seeds every key group
    with the automaton's initial state, this pass treats each group's
    entry state as an unknown and ships composition codes instead.
    """
    started = time.perf_counter()
    n = keys.shape[0]
    if n == 0:
        return _empty_chunk()
    order, grp_new = _group_sort(keys)
    key_s = keys[order]
    out_s = out_u8[order]

    starts = grp_new.copy()
    starts[1:] |= out_s[1:] != out_s[:-1]
    first = np.flatnonzero(starts)
    nruns = first.shape[0]
    length = np.empty(nruns, dtype=np.int64)
    if nruns > 1:
        length[:-1] = np.diff(first)
    length[-1] = n - first[-1]
    out = out_s[first]
    lcap = np.minimum(length, 3)
    code = ops.pow_codes[out, lcap]

    grp_first = grp_new[first]
    prev_code = np.empty(nruns, dtype=np.uint8)
    prev_code[0] = IDENTITY_CODE
    prev_code[1:] = code[:-1]
    absorbed = ~grp_first & ops.is_const[prev_code]
    absorbed[0] = False
    seg_new = grp_first | absorbed
    seg_new[0] = True
    seg_start = _start_indices(seg_new)
    idx_in_seg = np.arange(nruns, dtype=np.int32) - seg_start

    # Exclusive segmented composition scan: H[i] maps a segment's entry
    # state to the state entering run i (cf. _find_runs for the active-
    # set discipline that keeps gathers on pre-iteration values).
    H = np.empty(nruns, dtype=np.uint8)
    H[0] = IDENTITY_CODE
    H[1:] = code[:-1]
    H[seg_new] = IDENTITY_CODE
    compose_flat = ops.compose_flat
    step = 1
    while True:
        active = np.flatnonzero(idx_in_seg >= step)
        if active.size == 0:
            break
        prior = H[active - step].astype(np.uint16)
        H[active] = compose_flat[(prior << 8) | H[active]]
        step <<= 1

    # A run is *resolved* when its segment opened at an absorption point
    # (state pinned by a constant code, independent of chunk entry);
    # runs in a key's leading segment depend on the unknown entry state.
    seg_is_group_entry = grp_first[seg_start]
    resolved_run = ~seg_is_group_entry
    init_run = np.where(absorbed, prev_code & 3, 0).astype(np.uint8)[seg_start]
    state0 = ops.apply[H, init_run]  # meaningful only where resolved_run

    run_id = np.cumsum(starts) - 1
    offset = np.minimum(np.arange(n) - first[run_id], 3)
    pow_rec = ops.pow_codes[out[run_id], offset]
    pred_s = np.empty(n, dtype=np.bool_)
    rr = resolved_run[run_id]
    pred_s[rr] = ops.pred4[ops.apply[pow_rec[rr], state0[run_id[rr]]]]
    ur = np.flatnonzero(~rr)
    rid = run_id[ur]
    rec_code = compose_flat[(H[rid].astype(np.uint16) << 8) | pow_rec[ur]]
    grp_id_run = np.cumsum(grp_first) - 1
    key_local = grp_id_run[rid].astype(np.int64)

    # Per-key carry: inclusive segmented composition of the run codes
    # with segments = key groups — a code mapping any entry state to the
    # key's chunk-exit state.
    Hg = code.copy()
    grp_start_run = _start_indices(grp_first)
    idx_in_grp = np.arange(nruns, dtype=np.int32) - grp_start_run
    step = 1
    while True:
        active = np.flatnonzero(idx_in_grp >= step)
        if active.size == 0:
            break
        prior = Hg[active - step].astype(np.uint16)
        Hg[active] = compose_flat[(prior << 8) | Hg[active]]
        step <<= 1
    grp_run_idx = np.flatnonzero(grp_first)
    grp_last = np.empty(grp_run_idx.shape[0], dtype=np.int64)
    grp_last[:-1] = grp_run_idx[1:] - 1
    grp_last[-1] = nruns - 1
    carry = Hg[grp_last]
    group_keys = key_s[first[grp_run_idx]]

    pred = np.empty(n, dtype=np.bool_)
    pred[order] = pred_s
    pos = order[ur]
    return _ChunkScan(
        pred, pos, rec_code, key_local, group_keys, carry,
        time.perf_counter() - started,
    )


# ----------------------------------------------------------------------
# Chunking + reconciliation
# ----------------------------------------------------------------------

def _chunk_bounds(n: int, shards: int) -> List[Tuple[int, int]]:
    """``shards`` near-equal contiguous [lo, hi) ranges covering ``n``."""
    edges = np.linspace(0, n, shards + 1).astype(np.int64)
    return [(int(edges[i]), int(edges[i + 1])) for i in range(shards)]


def _sharded_scan(
    keys: np.ndarray,
    out_u8: np.ndarray,
    ops: _AutomatonOps,
    shards: int,
    executor: Optional[ThreadPoolExecutor],
    recorder=None,
) -> np.ndarray:
    """Chunk-parallel scan: per-chunk symbolic passes, then a serial
    prefix-product reconciliation in trace order. Returns per-record
    predictions (trace order), bit-identical to the serial scan."""
    n = keys.shape[0]
    bounds = _chunk_bounds(n, shards)
    scan_start = time.perf_counter()
    if executor is not None:
        futures = [
            executor.submit(_chunk_scan, keys[lo:hi], out_u8[lo:hi], ops)
            for lo, hi in bounds
        ]
        chunks = [future.result() for future in futures]
    else:
        chunks = [_chunk_scan(keys[lo:hi], out_u8[lo:hi], ops) for lo, hi in bounds]
    scan_end = time.perf_counter()
    if recorder is not None:
        span = recorder.push(
            "shard_chunks", cat="shard", start=scan_start, shards=shards, records=n
        )
        for index, ((lo, hi), chunk) in enumerate(zip(bounds, chunks)):
            recorder.record(
                "shard_chunk", cat="shard",
                start=scan_start, end=scan_start + chunk.seconds,
                shard=index, records=hi - lo, unresolved=int(chunk.pos.shape[0]),
            )
        recorder.pop_through(span, end=scan_end)

    reconcile_id = (
        recorder.push("shard_reconcile", cat="shard", start=scan_end)
        if recorder is not None
        else 0
    )
    all_keys = np.unique(np.concatenate([c.keys for c in chunks]))
    states = np.full(all_keys.shape[0], ops.init, dtype=np.uint8)
    pred = np.empty(n, dtype=np.bool_)
    for (lo, _hi), chunk in zip(bounds, chunks):
        if chunk.pred.shape[0] == 0:
            continue
        pred[lo:lo + chunk.pred.shape[0]] = chunk.pred
        gid = np.searchsorted(all_keys, chunk.keys)
        entry = states[gid]
        if chunk.pos.shape[0]:
            pred[lo + chunk.pos] = ops.pred4[
                ops.apply[chunk.code, entry[chunk.key_local]]
            ]
        states[gid] = ops.apply[chunk.carry, entry]
    if recorder is not None:
        recorder.pop_through(reconcile_id, keys=int(all_keys.shape[0]))
    return pred


# ----------------------------------------------------------------------
# Per-scheme plans: trace-order pattern-table keys
# ----------------------------------------------------------------------

def _scan_plan(predictor, run: _Run):
    """``(keys, ops)`` for scan schemes — per-record pattern-table keys
    in trace order, grouped exactly as the serial kernel groups them —
    or None for schemes whose predictions are pure per-record functions
    (GSg/PSg/static) or need composition (tournament).

    First-level state is a pure function of the trace, so these reuse
    the batch kernels' own layout helpers verbatim: a plan's key array
    partitions records into the same automaton-entry groups, in the
    same chronological order, as the serial whole-trace sort.
    """
    kind = type(predictor)
    if kind is GAgPredictor:
        ghr = _global_history(run, predictor.history_bits, fill_taken=True)
        return ghr.astype(np.int64), _ops_for(predictor.automaton)
    if kind is GsharePredictor:
        k = predictor.history_bits
        ghr = _global_history(run, k, fill_taken=False)
        keys = (ghr ^ run.pc_c) & ((1 << k) - 1)
        return keys.astype(np.int64), _ops_for(predictor.automaton)
    if kind is GApPredictor:
        k = predictor.history_bits
        ghr = _global_history(run, k, fill_taken=True)
        _sites, ids = run.arrays.conditional_site_ids()
        return (ids.astype(np.int64) << k) | ghr, _ops_for(predictor.automaton)
    if kind is GselectPredictor:
        k = predictor.history_bits
        addr_mask = (1 << predictor.address_bits) - 1
        keys = ((run.pc_c & addr_mask) << k) | _global_history(run, k, fill_taken=True)
        return keys.astype(np.int64), _ops_for(predictor.pht.automaton)
    if kind is SAgPredictor:
        order1, _set_s, _out_s, patterns_s = _perset_patterns(
            run, predictor.num_sets, predictor.history_bits
        )
        keys = np.empty(run.n_c, dtype=np.int64)
        keys[order1] = patterns_s
        return keys, _ops_for(predictor.pht.automaton)
    if kind is SAsPredictor:
        k = predictor.history_bits
        order1, set_s, _out_s, patterns_s = _perset_patterns(
            run, predictor.num_sets, k
        )
        keys = np.empty(run.n_c, dtype=np.int64)
        keys[order1] = (set_s.astype(np.int64) << k) | patterns_s
        return keys, _ops_for(predictor.tables[0].automaton)
    if kind is PAgPredictor:
        layout = _pa_layout(run, predictor.bht)
        keys = np.empty(run.n_c, dtype=np.int64)
        keys[layout.order] = _pa_patterns(layout, predictor.history_bits)
        return keys, _ops_for(predictor.automaton)
    if kind is PApPredictor:
        k = predictor.history_bits
        bht = predictor.bht
        layout = _pa_layout(run, bht)
        patterns_s = _pa_patterns(layout, k)
        if isinstance(bht, IdealBHT):
            table_id = np.cumsum(layout.ep_new) - 1
        elif predictor.config.reset_pht_on_evict:
            table_id = np.cumsum(layout.blk_new | layout.evict) - 1
        else:
            table_id = np.cumsum(layout.blk_new) - 1
        keys = np.empty(run.n_c, dtype=np.int64)
        keys[layout.order] = (table_id << k) | patterns_s
        return keys, _ops_for(predictor.automaton)
    if kind is BTBPredictor:
        # Episodes are the automaton entries: globally numbered, each
        # starting from the initial state when first touched.
        layout = _pa_layout(run, predictor.bht)
        keys = np.empty(run.n_c, dtype=np.int64)
        keys[layout.order] = np.cumsum(layout.ep_new) - 1
        return keys, _ops_for(predictor.automaton)
    return None


def _sharded_preds(
    predictor,
    run: _Run,
    shards: int,
    executor: Optional[ThreadPoolExecutor],
    recorder=None,
) -> np.ndarray:
    """Per-record predictions (trace order) via the shard machinery."""
    if type(predictor) is TournamentPredictor:
        p1 = _sharded_preds(predictor.first, run, shards, executor, recorder)
        p2 = _sharded_preds(predictor.second, run, shards, executor, recorder)
        pred = p1.copy()
        d = np.flatnonzero(p1 != p2)
        if d.size:
            # Same arbitration as the serial kernel: choosers step only
            # on disagreement, keyed by pc, never flushed — shard the
            # chooser scan over the disagreement subsequence.
            second_correct = (p2[d] == run.out_bool[d]).view(np.uint8)
            keys = (run.pc_c[d] & predictor.chooser_mask).astype(np.int64)
            use_second = _sharded_scan(
                keys, second_correct, _ops_for(CHOOSER_AUTOMATON),
                shards, executor, recorder,
            )
            pred[d] = np.where(use_second, p2[d], p1[d])
        return pred
    plan_start = time.perf_counter()
    plan = _scan_plan(predictor, run)
    if plan is None:
        # Pure per-record schemes (GSg/PSg/static): predictions are a
        # function of the trace alone — nothing to reconcile.
        kernel = _kernel_for(predictor)
        if kernel is None:
            raise KernelUnavailable(
                "no vectorized kernel for "
                f"{getattr(predictor, 'name', type(predictor).__name__)}"
            )
        return _per_record_preds(kernel, run)
    keys, ops = plan
    if recorder is not None:
        recorder.record(
            "shard_plan", cat="shard", start=plan_start,
            end=time.perf_counter(),
            scheme=getattr(predictor, "name", type(predictor).__name__),
        )
    return _sharded_scan(keys, run.out_u8, ops, shards, executor, recorder)


# ----------------------------------------------------------------------
# Public driver
# ----------------------------------------------------------------------

def simulate_sharded(
    predictor,
    trace,
    shards: int,
    context_switches: Optional[ContextSwitchConfig] = None,
    track_per_site: bool = False,
    warmup_branches: int = 0,
    max_workers: Optional[int] = None,
) -> SimulationResult:
    """Replay ``trace`` through chunk-parallel kernels, bit-identically.

    Splits the conditional stream into ``shards`` contiguous chunks,
    scans each with symbolic starting table state on a thread pool, and
    reconciles via composition-LUT prefix products (module docstring).
    Every shard count — including one chunk per record — returns the
    same :class:`~repro.sim.results.SimulationResult` as the serial
    interpreted engine.

    Args:
        shards: number of chunks (>= 1). More chunks than conditional
            records is allowed; excess chunks are empty.
        max_workers: thread-pool width; defaults to
            ``min(shards, os.cpu_count())``. ``1`` scans chunks
            serially in the caller's thread.

    Raises:
        KernelUnavailable: no kernel covers ``predictor``, the trace
            breaks a kernel precondition, or a non-``Trace`` source
            cannot be materialised in memory.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if not isinstance(trace, Trace):
        materialize = getattr(trace, "materialize", None)
        if materialize is None:
            raise KernelUnavailable(
                "sharding splits an in-memory trace into chunks; this "
                f"source ({type(trace).__name__}) cannot be materialised "
                "(use block_size streaming or the interpreted loop)"
            )
        trace = materialize()
    if _kernel_for(predictor) is None:
        raise KernelUnavailable(
            "no vectorized kernel for "
            f"{getattr(predictor, 'name', type(predictor).__name__)}"
        )
    from ..obs.spans import get_recorder as _get_span_recorder

    recorder = _get_span_recorder()
    run = _Run(trace, context_switches, track_per_site, warmup_branches)
    run.aggregate = False  # reconciliation needs per-record predictions
    per_seen = per_wrong = None
    if run.n_c == 0:
        correct = 0
        if run.track_per_site:
            per_seen, per_wrong = {}, {}
    else:
        workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        workers = max(1, min(shards, workers))
        if workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as executor:
                pred = _sharded_preds(predictor, run, shards, executor, recorder)
        else:
            pred = _sharded_preds(predictor, run, shards, None, recorder)
        correct, per_seen, per_wrong = _score_predictions(run, pred)
    scored = max(run.n_c - run.warmup, 0)
    return SimulationResult(
        predictor_name=predictor.name,
        trace_name=trace.meta.name,
        dataset=trace.meta.dataset,
        conditional_branches=scored,
        correct_predictions=correct,
        context_switches=run.switches,
        per_site_executions=per_seen,
        per_site_mispredictions=per_wrong,
        total_instructions=trace.meta.total_instructions,
    )
