"""Branch-trace substrate: records, serialization, statistics, generators.

Two complementary representations live here: the in-memory
:class:`Trace` (columnar, random-access) and the out-of-core substrate
in :mod:`repro.trace.stream` (mmap-backed containers, record
generators) — both satisfy the :class:`~repro.trace.stream.TraceSource`
protocol the simulation engine consumes. See ``docs/traces.md`` for the
on-disk formats and the protocol contract.
"""

from .cache import ResultCache, TraceCache, default_cache
from .events import (
    BranchClass,
    BranchRecord,
    Trace,
    TraceArrays,
    TraceBlock,
    TraceBuilder,
    TraceMeta,
)
from .io import (
    TraceFormatError,
    TraceFormatWarning,
    dumps,
    load_trace,
    loads,
    read_binary,
    read_text,
    save_trace,
    trace_from_records,
    write_binary,
    write_text,
)
from .stats import BranchClassMix, TraceStats, compute_stats, per_site_bias
from .stream import (
    IndexedSource,
    RecordStreamSource,
    StreamedTrace,
    TraceSource,
    TraceWriter,
    content_digest,
    open_stream,
    open_trace_source,
    save_source,
)
from . import stream, synthetic, transforms

__all__ = [
    "BranchClass",
    "BranchClassMix",
    "BranchRecord",
    "IndexedSource",
    "RecordStreamSource",
    "ResultCache",
    "StreamedTrace",
    "Trace",
    "TraceArrays",
    "TraceBlock",
    "TraceBuilder",
    "TraceCache",
    "TraceFormatError",
    "TraceFormatWarning",
    "TraceMeta",
    "TraceSource",
    "TraceStats",
    "TraceWriter",
    "compute_stats",
    "content_digest",
    "default_cache",
    "dumps",
    "load_trace",
    "loads",
    "open_stream",
    "open_trace_source",
    "per_site_bias",
    "read_binary",
    "read_text",
    "save_source",
    "save_trace",
    "stream",
    "synthetic",
    "transforms",
    "trace_from_records",
    "write_binary",
    "write_text",
]
