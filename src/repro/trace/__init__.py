"""Branch-trace substrate: records, serialization, statistics, generators."""

from .cache import ResultCache, TraceCache, default_cache
from .events import BranchClass, BranchRecord, Trace, TraceArrays, TraceBuilder, TraceMeta
from .io import (
    TraceFormatError,
    TraceFormatWarning,
    dumps,
    load_trace,
    loads,
    read_binary,
    read_text,
    save_trace,
    trace_from_records,
    write_binary,
    write_text,
)
from .stats import BranchClassMix, TraceStats, compute_stats, per_site_bias
from . import synthetic, transforms

__all__ = [
    "BranchClass",
    "BranchClassMix",
    "BranchRecord",
    "ResultCache",
    "Trace",
    "TraceArrays",
    "TraceBuilder",
    "TraceCache",
    "TraceFormatError",
    "TraceFormatWarning",
    "TraceMeta",
    "TraceStats",
    "compute_stats",
    "default_cache",
    "dumps",
    "load_trace",
    "loads",
    "per_site_bias",
    "read_binary",
    "read_text",
    "save_trace",
    "synthetic",
    "transforms",
    "trace_from_records",
    "write_binary",
    "write_text",
]
