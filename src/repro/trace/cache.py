"""Trace and simulation-result caches.

Generating a workload trace can cost seconds; every figure of the paper
replays the same nine traces through many predictor configurations. The
:class:`TraceCache` memoizes traces in memory and, optionally, on disk
(binary trace format) keyed by ``(name, dataset, scale)``.

Replaying those traces costs far more than generating them, so the
module also provides a second on-disk namespace: :class:`ResultCache`
memoizes *simulation results* (as JSON payloads) keyed by a
content-hash of (trace bytes, scheme configuration, context-switch
configuration). Re-running a figure with a warm result cache recomputes
only the cells whose inputs changed; see :mod:`repro.sim.parallel` for
the layer that computes the keys and threads results through it.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from .events import Trace
from .io import load_trace, save_trace

__all__ = [
    "CacheKey",
    "ResultCache",
    "TraceCache",
    "default_cache",
]

CacheKey = Tuple[str, str, int]


class TraceCache:
    """Memoizes traces produced by zero-argument factories.

    Thread-safe; a given key is only ever generated once per process.
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None) -> None:
        """Args:
            directory: optional on-disk cache directory. When given,
                traces are persisted as ``<sha1(key)>.btb`` files and
                survive across processes.
        """
        self._directory = Path(directory) if directory is not None else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[CacheKey, Trace] = {}
        self._lock = threading.Lock()

    def get(self, name: str, dataset: str, scale: int, factory: Callable[[], Trace]) -> Trace:
        """Return the cached trace for the key, generating it if needed."""
        key = (name, dataset, scale)
        with self._lock:
            cached = self._memory.get(key)
        if cached is not None:
            return cached
        trace = self._load_from_disk(key)
        if trace is None:
            trace = factory()
            self._store_to_disk(key, trace)
        with self._lock:
            # Another thread may have raced us; keep the first value so
            # callers always observe one canonical object per key.
            return self._memory.setdefault(key, trace)

    def clear(self) -> None:
        """Drop all in-memory entries (disk entries are kept)."""
        with self._lock:
            self._memory.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def _path_for(self, key: CacheKey) -> Optional[Path]:
        if self._directory is None:
            return None
        digest = hashlib.sha1(repr(key).encode("utf-8")).hexdigest()
        return self._directory / f"{digest}.btb"

    def _load_from_disk(self, key: CacheKey) -> Optional[Trace]:
        path = self._path_for(key)
        if path is None or not path.exists():
            return None
        try:
            return load_trace(path)
        except (OSError, ValueError):
            return None

    def _store_to_disk(self, key: CacheKey, trace: Trace) -> None:
        path = self._path_for(key)
        if path is None:
            return
        try:
            save_trace(trace, path)
        except OSError:
            pass

    # -- streamed containers (content-addressed) -----------------------

    def store_streamed(self, source) -> Optional[Path]:
        """Persist a bounded :class:`~repro.trace.stream.TraceSource` as
        a ``.btrs`` container named by its content digest.

        The digest (see :func:`repro.trace.stream.content_digest`)
        equals :func:`repro.sim.parallel.trace_digest` of the
        materialized trace, so streamed and in-memory producers of the
        same records share one cache entry. Both hashing and writing
        stream block-wise — the source is never materialized — and an
        entry that already exists is returned without rewriting.

        Returns:
            The container path, or ``None`` for a memory-only cache.
        """
        if self._directory is None:
            return None
        from .stream import content_digest, save_source

        digest = content_digest(source)
        path = self._directory / f"{digest}.btrs"
        if not path.exists():
            save_source(source, path)
        return path

    def open_streamed(self, digest: str):
        """Open the streamed container stored under ``digest``.

        Returns:
            An mmap-backed :class:`~repro.trace.stream.StreamedTrace`
            (caller closes it), or ``None`` when absent or unreadable.
        """
        if self._directory is None:
            return None
        path = self._directory / f"{digest}.btrs"
        if not path.exists():
            return None
        from .stream import open_stream

        try:
            return open_stream(path)
        except (OSError, ValueError):
            return None


class ResultCache:
    """On-disk cache of simulation results (the ``results`` namespace).

    Entries live under ``<directory>/results/<sha256-key>.json`` and
    hold one JSON payload each — either a serialized
    ``SimulationResult`` dict or the explicit ``null`` sentinel for a
    cell that could not be evaluated (``TrainingUnavailable``), so warm
    reruns skip even the blank cells without rebuilding predictors.

    Keys are opaque hex strings computed by the caller (see
    :func:`repro.sim.parallel.result_cache_key`): the cache itself is a
    dumb content-addressed store and never invalidates — a changed
    trace, scheme or context-switch configuration simply hashes to a
    new key. Stale entries are only removed by :meth:`clear`.

    The cache also keeps per-instance hit/miss/store counters, which
    the run telemetry reports. Thread-safe; multi-process safe via
    atomic ``os.replace`` writes.
    """

    #: Payload marker distinguishing "cached as unavailable" from "absent".
    UNAVAILABLE = {"unavailable": True}

    def __init__(self, directory: Union[str, Path]) -> None:
        """Args:
        directory: cache root; entries go in a ``results/`` subdir
            (so a :class:`TraceCache` may share the same root).
        """
        self.directory = Path(directory) / "results"
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def load(self, key: str) -> Tuple[bool, Optional[Dict[str, Any]]]:
        """Look up ``key``.

        Returns:
            ``(hit, payload)`` — ``payload`` is the stored result dict,
            or ``None`` when the hit is a cached "unavailable" cell.
            A corrupt entry counts as a miss and is ignored.
        """
        path = self._path_for(key)
        try:
            text = path.read_text()
            payload = json.loads(text)
        except (OSError, ValueError):
            with self._lock:
                self.misses += 1
            return False, None
        with self._lock:
            self.hits += 1
        if payload == self.UNAVAILABLE:
            return True, None
        return True, payload

    def store(self, key: str, payload: Optional[Dict[str, Any]]) -> None:
        """Persist ``payload`` (or the unavailable sentinel) under ``key``.

        Writes to a temp file then renames, so concurrent writers (the
        parallel runner's workers race only on identical content) never
        expose a torn entry. I/O errors are swallowed: a result cache
        is an accelerator, never a correctness dependency.
        """
        path = self._path_for(key)
        text = json.dumps(self.UNAVAILABLE if payload is None else payload, sort_keys=True)
        tmp = path.with_suffix(f".tmp-{threading.get_ident()}")
        try:
            # flush + fsync before the rename so a crash can never
            # publish a truncated entry (found by
            # res/replace-without-fsync; write_text cannot fsync).
            with tmp.open("w") as stream:
                stream.write(text)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp, path)
        except OSError:
            return
        with self._lock:
            self.stores += 1

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def _path_for(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            # Defensive: keys are sha256 hexdigests; anything else would
            # let a malformed key escape the namespace directory.
            key = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.directory / f"{key}.json"


_default_cache = TraceCache()


def default_cache() -> TraceCache:
    """The process-wide in-memory trace cache."""
    return _default_cache
