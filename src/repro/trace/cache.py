"""Trace cache.

Generating a workload trace can cost seconds; every figure of the paper
replays the same nine traces through many predictor configurations. The
cache memoizes traces in memory and, optionally, on disk (binary trace
format) keyed by ``(name, dataset, scale)``.
"""

from __future__ import annotations

import hashlib
import threading
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from .events import Trace
from .io import load_trace, save_trace

CacheKey = Tuple[str, str, int]


class TraceCache:
    """Memoizes traces produced by zero-argument factories.

    Thread-safe; a given key is only ever generated once per process.
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None) -> None:
        """Args:
            directory: optional on-disk cache directory. When given,
                traces are persisted as ``<sha1(key)>.btb`` files and
                survive across processes.
        """
        self._directory = Path(directory) if directory is not None else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[CacheKey, Trace] = {}
        self._lock = threading.Lock()

    def get(self, name: str, dataset: str, scale: int, factory: Callable[[], Trace]) -> Trace:
        """Return the cached trace for the key, generating it if needed."""
        key = (name, dataset, scale)
        with self._lock:
            cached = self._memory.get(key)
        if cached is not None:
            return cached
        trace = self._load_from_disk(key)
        if trace is None:
            trace = factory()
            self._store_to_disk(key, trace)
        with self._lock:
            # Another thread may have raced us; keep the first value so
            # callers always observe one canonical object per key.
            return self._memory.setdefault(key, trace)

    def clear(self) -> None:
        """Drop all in-memory entries (disk entries are kept)."""
        with self._lock:
            self._memory.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def _path_for(self, key: CacheKey) -> Optional[Path]:
        if self._directory is None:
            return None
        digest = hashlib.sha1(repr(key).encode("utf-8")).hexdigest()
        return self._directory / f"{digest}.btb"

    def _load_from_disk(self, key: CacheKey) -> Optional[Trace]:
        path = self._path_for(key)
        if path is None or not path.exists():
            return None
        try:
            return load_trace(path)
        except (OSError, ValueError):
            return None

    def _store_to_disk(self, key: CacheKey, trace: Trace) -> None:
        path = self._path_for(key)
        if path is None:
            return
        try:
            save_trace(trace, path)
        except OSError:
            pass


_default_cache = TraceCache()


def default_cache() -> TraceCache:
    """The process-wide in-memory trace cache."""
    return _default_cache
