"""``repro-trace`` — generate, inspect and convert branch traces.

Subcommands::

    repro-trace gen eqntott out.btb [--dataset testing] [--scale 1]
    repro-trace gen-isa matmul out.btb [--param n=8]
    repro-trace stats out.btb
    repro-trace head out.btb [--count 20]
    repro-trace convert out.btb out.btr
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .io import load_trace, save_trace
from .stats import compute_stats


def _cmd_gen(args: argparse.Namespace) -> int:
    from ..workloads.suite import get_workload

    workload = get_workload(args.benchmark)
    trace = workload.generate(args.dataset, scale=args.scale)
    save_trace(trace, args.output)
    print(f"wrote {len(trace)} records to {args.output}")
    return 0


def _cmd_gen_isa(args: argparse.Namespace) -> int:
    from ..isa.programs import program_trace

    params = {}
    for item in args.param or []:
        key, _, value = item.partition("=")
        if not value:
            print(f"bad --param {item!r}; expected key=value", file=sys.stderr)
            return 2
        params[key] = int(value)
    _state, trace = program_trace(args.program, **params)
    save_trace(trace, args.output)
    print(f"wrote {len(trace)} records to {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    stats = compute_stats(trace)
    mix = stats.class_mix()
    print(f"name                : {stats.name}")
    print(f"dataset             : {stats.dataset}")
    print(f"dynamic branches    : {stats.dynamic_branches}")
    print(f"  conditional       : {stats.dynamic_conditional} ({mix.conditional * 100:.1f}%)")
    print(f"  unconditional     : {mix.unconditional * 100:.1f}%")
    print(f"  call / return     : {mix.call * 100:.1f}% / {mix.ret * 100:.1f}%")
    print(f"static cond. sites  : {stats.static_conditional_sites}")
    print(f"taken rate          : {stats.taken_rate * 100:.1f}%")
    print(f"total instructions  : {stats.total_instructions}")
    print(f"branch fraction     : {stats.branch_fraction * 100:.2f}%")
    print(f"traps               : {stats.trap_count}")
    return 0


def _cmd_head(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    for record in trace.head(args.count):
        direction = "T" if record.taken else "N"
        trap = " TRAP" if record.trap else ""
        print(
            f"{record.pc:#010x} {record.branch_class.short_name:7s} {direction} "
            f"target={record.target:#x} instret={record.instret}{trap}"
        )
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    trace = load_trace(args.source)
    save_trace(trace, args.destination)
    print(f"converted {len(trace)} records: {args.source} -> {args.destination}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace", description="Generate, inspect and convert branch traces."
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    gen = subparsers.add_parser("gen", help="generate a SPEC-analog workload trace")
    gen.add_argument("benchmark")
    gen.add_argument("output", type=Path)
    gen.add_argument("--dataset", default="testing")
    gen.add_argument("--scale", type=int, default=1)
    gen.set_defaults(handler=_cmd_gen)

    gen_isa = subparsers.add_parser("gen-isa", help="trace an assembly kernel")
    gen_isa.add_argument("program")
    gen_isa.add_argument("output", type=Path)
    gen_isa.add_argument("--param", action="append", metavar="key=value")
    gen_isa.set_defaults(handler=_cmd_gen_isa)

    stats = subparsers.add_parser("stats", help="summarise a trace file")
    stats.add_argument("trace", type=Path)
    stats.set_defaults(handler=_cmd_stats)

    head = subparsers.add_parser("head", help="print the first records")
    head.add_argument("trace", type=Path)
    head.add_argument("--count", type=int, default=20)
    head.set_defaults(handler=_cmd_head)

    convert = subparsers.add_parser("convert", help="convert text <-> binary")
    convert.add_argument("source", type=Path)
    convert.add_argument("destination", type=Path)
    convert.set_defaults(handler=_cmd_convert)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
