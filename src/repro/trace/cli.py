"""``repro-trace`` — generate, inspect and convert branch traces.

Subcommands::

    repro-trace gen eqntott out.btb [--dataset testing] [--scale 1]
    repro-trace gen-isa matmul out.btb [--param n=8]
    repro-trace gen-synth biased out.btrs --count 10000000 --taken-prob 0.85
    repro-trace stats out.btrs
    repro-trace head out.btrs [--count 20]
    repro-trace inspect out.btrs
    repro-trace convert out.btb out.btrs

``stats``, ``head``, ``inspect`` and ``convert`` open their input with
:func:`repro.trace.stream.open_trace_source`, so ``.btrs`` containers
are processed block-wise in bounded memory — a multi-gigabyte container
converts or summarises without ever being materialized. Output formats
are chosen by suffix (``.btr`` text, ``.btrs`` streamed container,
anything else binary ``.btb``); see ``docs/traces.md``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .io import save_trace
from .stats import compute_stats
from .stream import DEFAULT_BLOCK_SIZE, open_trace_source, save_source


def _cmd_gen(args: argparse.Namespace) -> int:
    from ..workloads.suite import get_workload

    workload = get_workload(args.benchmark)
    trace = workload.generate(args.dataset, scale=args.scale)
    save_trace(trace, args.output)
    print(f"wrote {len(trace)} records to {args.output}")
    return 0


def _cmd_gen_isa(args: argparse.Namespace) -> int:
    from ..isa.programs import program_trace

    params = {}
    for item in args.param or []:
        key, _, value = item.partition("=")
        if not value:
            print(f"bad --param {item!r}; expected key=value", file=sys.stderr)
            return 2
        params[key] = int(value)
    _state, trace = program_trace(args.program, **params)
    save_trace(trace, args.output)
    print(f"wrote {len(trace)} records to {args.output}")
    return 0


def _cmd_gen_synth(args: argparse.Namespace) -> int:
    from .stream import RecordStreamSource
    from .synthetic import biased_records, loop_records, markov_records, periodic_records

    if args.kind == "loop":
        factory = lambda: loop_records(args.trip_count)  # noqa: E731
    elif args.kind == "periodic":
        pattern = [c in "tT1" for c in args.pattern]
        if not pattern or any(c not in "tTnN01" for c in args.pattern):
            print(f"bad --pattern {args.pattern!r}; use e.g. TTNT", file=sys.stderr)
            return 2
        factory = lambda: periodic_records(pattern)  # noqa: E731
    elif args.kind == "biased":
        factory = lambda: biased_records(args.taken_prob, seed=args.seed)  # noqa: E731
    else:  # markov
        factory = lambda: markov_records(  # noqa: E731
            args.p_stay_taken, args.p_stay_not_taken, seed=args.seed
        )
    # The *_records generators retire work_per_branch + 1 = 5
    # instructions per conditional branch.
    source = RecordStreamSource(
        factory, name=f"synth-{args.kind}", dataset="synthetic",
    ).limit(args.count, total_instructions=args.count * 5)
    save_source(source, args.output, block_size=args.block_size or DEFAULT_BLOCK_SIZE)
    print(f"wrote {args.count} records to {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    trace = open_trace_source(args.trace)
    stats = compute_stats(trace)
    mix = stats.class_mix()
    print(f"name                : {stats.name}")
    print(f"dataset             : {stats.dataset}")
    print(f"dynamic branches    : {stats.dynamic_branches}")
    print(f"  conditional       : {stats.dynamic_conditional} ({mix.conditional * 100:.1f}%)")
    print(f"  unconditional     : {mix.unconditional * 100:.1f}%")
    print(f"  call / return     : {mix.call * 100:.1f}% / {mix.ret * 100:.1f}%")
    print(f"static cond. sites  : {stats.static_conditional_sites}")
    print(f"taken rate          : {stats.taken_rate * 100:.1f}%")
    print(f"total instructions  : {stats.total_instructions}")
    print(f"branch fraction     : {stats.branch_fraction * 100:.2f}%")
    print(f"traps               : {stats.trap_count}")
    return 0


def _cmd_head(args: argparse.Namespace) -> int:
    trace = open_trace_source(args.trace)
    for record in trace.head(args.count):
        direction = "T" if record.taken else "N"
        trap = " TRAP" if record.trap else ""
        print(
            f"{record.pc:#010x} {record.branch_class.short_name:7s} {direction} "
            f"target={record.target:#x} instret={record.instret}{trap}"
        )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from .stream import StreamedTrace

    source = open_trace_source(args.trace)
    size = Path(args.trace).stat().st_size
    if isinstance(source, StreamedTrace):
        print("format              : BTRS streamed container (v1)")
        print(f"data offset         : {source.data_offset}")
    else:
        print("format              : in-memory (btb/btr)")
    meta = source.meta
    print(f"name                : {meta.name}")
    print(f"dataset             : {meta.dataset}")
    print(f"source              : {meta.source}")
    print(f"records             : {source.num_records}")
    print(f"total instructions  : {meta.total_instructions}")
    print(f"file size           : {size} bytes")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    source = open_trace_source(args.source)
    save_source(source, args.destination, block_size=args.block_size or DEFAULT_BLOCK_SIZE)
    print(
        f"converted {source.num_records} records: "
        f"{args.source} -> {args.destination}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace", description="Generate, inspect and convert branch traces."
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    gen = subparsers.add_parser("gen", help="generate a SPEC-analog workload trace")
    gen.add_argument("benchmark")
    gen.add_argument("output", type=Path)
    gen.add_argument("--dataset", default="testing")
    gen.add_argument("--scale", type=int, default=1)
    gen.set_defaults(handler=_cmd_gen)

    gen_isa = subparsers.add_parser("gen-isa", help="trace an assembly kernel")
    gen_isa.add_argument("program")
    gen_isa.add_argument("output", type=Path)
    gen_isa.add_argument("--param", action="append", metavar="key=value")
    gen_isa.set_defaults(handler=_cmd_gen_isa)

    gen_synth = subparsers.add_parser(
        "gen-synth",
        help="stream a synthetic trace of any length to disk (bounded memory)",
    )
    gen_synth.add_argument("kind", choices=["loop", "periodic", "biased", "markov"])
    gen_synth.add_argument("output", type=Path,
                           help="output file; suffix picks the format (.btrs recommended)")
    gen_synth.add_argument("--count", type=int, default=1_000_000,
                           help="number of branch records (default 1e6)")
    gen_synth.add_argument("--trip-count", type=int, default=4,
                           help="loop: iterations per loop exit")
    gen_synth.add_argument("--pattern", default="TTNT",
                           help="periodic: direction pattern, e.g. TTNT")
    gen_synth.add_argument("--taken-prob", type=float, default=0.7,
                           help="biased: P(taken)")
    gen_synth.add_argument("--p-stay-taken", type=float, default=0.9,
                           help="markov: P(taken -> taken)")
    gen_synth.add_argument("--p-stay-not-taken", type=float, default=0.9,
                           help="markov: P(not-taken -> not-taken)")
    gen_synth.add_argument("--seed", type=int, default=0)
    gen_synth.add_argument("--block-size", type=int, default=None,
                           help="records buffered per write batch")
    gen_synth.set_defaults(handler=_cmd_gen_synth)

    stats = subparsers.add_parser("stats", help="summarise a trace file")
    stats.add_argument("trace", type=Path)
    stats.set_defaults(handler=_cmd_stats)

    head = subparsers.add_parser("head", help="print the first records")
    head.add_argument("trace", type=Path)
    head.add_argument("--count", type=int, default=20)
    head.set_defaults(handler=_cmd_head)

    inspect = subparsers.add_parser(
        "inspect", help="print container header and identity metadata"
    )
    inspect.add_argument("trace", type=Path)
    inspect.set_defaults(handler=_cmd_inspect)

    convert = subparsers.add_parser(
        "convert",
        help="convert between formats (suffix-driven; streams block-wise)",
    )
    convert.add_argument("source", type=Path)
    convert.add_argument("destination", type=Path)
    convert.add_argument("--block-size", type=int, default=None,
                         help="records copied per block (bounds peak memory)")
    convert.set_defaults(handler=_cmd_convert)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
